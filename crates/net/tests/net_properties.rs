//! Property tests of the network and quorum models, on the in-tree
//! `diablo-testkit` harness.

use diablo_testkit::gen::{u64s, usizes};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};

use diablo_net::{
    bandwidth_mbps, rtt_ms, DeploymentConfig, DeploymentKind, InstanceType, NetworkModel,
    QuorumModel, Region,
};
use diablo_sim::DetRng;

fn region(idx: usize) -> Region {
    Region::ALL[idx % Region::COUNT]
}

/// The Table 3 accessors are symmetric for every pair.
#[test]
fn matrices_are_symmetric() {
    Property::new("matrices_are_symmetric").check(
        &(usizes(0..=9), usizes(0..=9)),
        |&(a, b)| {
            let (a, b) = (region(a), region(b));
            prop_assert_eq!(rtt_ms(a, b), rtt_ms(b, a));
            prop_assert_eq!(bandwidth_mbps(a, b), bandwidth_mbps(b, a));
            Ok(())
        },
    );
}

/// Message delay is monotone in payload size.
#[test]
fn delay_monotone_in_bytes() {
    Property::new("delay_monotone_in_bytes").check(
        &(
            usizes(0..=9),
            usizes(0..=9),
            u64s(0..=99_999),
            u64s(1..=999_999),
        ),
        |&(a, b, small, extra)| {
            let net = NetworkModel::deterministic();
            let mut rng = DetRng::new(0);
            let d_small = net.delay(&mut rng, region(a), region(b), small);
            let d_large = net.delay(&mut rng, region(a), region(b), small + extra);
            prop_assert!(
                d_large >= d_small,
                "{:?} < {:?} despite {extra} extra bytes",
                d_large,
                d_small
            );
            Ok(())
        },
    );
}

/// Quorum collection is never slower than full collection, and both grow
/// with the payload.
#[test]
fn quorum_bounds() {
    Property::new("quorum_bounds").check(
        &(usizes(4..=39), usizes(0..=39), u64s(0..=1_999_999)),
        |&(nodes, leader, bytes)| {
            let cfg = DeploymentConfig::spread(DeploymentKind::Devnet, nodes, InstanceType::C5Xlarge);
            let model = QuorumModel::new(&cfg, &NetworkModel::deterministic());
            let leader = leader % nodes;
            prop_assert!(model.broadcast_quorum(leader, bytes) <= model.broadcast_all(leader, bytes));
            prop_assert!(
                model.broadcast_all(leader, bytes + 1_000_000) >= model.broadcast_all(leader, bytes)
            );
            // A three-phase commit is at least as slow as one linear phase.
            prop_assert!(model.hotstuff_commit(leader, bytes) >= model.linear_phase(leader, bytes));
            // IBFT adds two all-to-all rounds on top of the pre-prepare.
            prop_assert!(model.ibft_commit(leader, bytes) >= model.broadcast_quorum(leader, bytes));
            Ok(())
        },
    );
}

/// Deployment partitioning invariants hold for any size.
#[test]
fn deployment_invariants() {
    Property::new("deployment_invariants").check(&usizes(1..=299), |&nodes| {
        let cfg = DeploymentConfig::spread(DeploymentKind::Community, nodes, InstanceType::C5Xlarge);
        prop_assert_eq!(cfg.node_count(), nodes);
        prop_assert!(cfg.region_count() <= Region::COUNT.min(nodes));
        // BFT math: n ≥ 3f + 1 and quorum = 2f + 1 ≤ n.
        let f = cfg.byzantine_f();
        prop_assert!(nodes > 3 * f);
        prop_assert!(cfg.quorum() <= nodes);
        prop_assert_eq!(cfg.quorum(), 2 * f + 1);
        Ok(())
    });
}

/// Jittered delays are deterministic per seed and never faster than the
/// deterministic base.
#[test]
fn jitter_determinism_and_bias() {
    Property::new("jitter_determinism_and_bias").check(
        &(usizes(0..=9), usizes(0..=9), u64s(0..=999)),
        |&(a, b, seed)| {
            let net = NetworkModel { jitter: 0.1 };
            let base =
                NetworkModel::deterministic().delay(&mut DetRng::new(0), region(a), region(b), 512);
            let d1 = net.delay(&mut DetRng::new(seed), region(a), region(b), 512);
            let d2 = net.delay(&mut DetRng::new(seed), region(a), region(b), 512);
            prop_assert_eq!(d1, d2);
            prop_assert!(d1 >= base);
            Ok(())
        },
    );
}
