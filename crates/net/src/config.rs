//! The five deployment configurations of the paper's Table 3 (left side).
//!
//! | name       | nodes | machine     | regions |
//! |------------|-------|-------------|---------|
//! | datacenter | 10    | c5.9xlarge  | Ohio    |
//! | testnet    | 10    | c5.xlarge   | Ohio    |
//! | devnet     | 10    | c5.xlarge   | all 10  |
//! | community  | 200   | c5.xlarge   | all 10  |
//! | consortium | 200   | c5.2xlarge  | all 10  |

use core::fmt;

use crate::machine::{InstanceType, MachineSpec};
use crate::region::Region;

/// Which of the paper's five deployment scenarios a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentKind {
    /// 10 large machines in one availability zone (peak performance).
    Datacenter,
    /// 10 small machines in one availability zone (developer testnet).
    Testnet,
    /// 10 small machines spread over all regions (beta-test devnet).
    Devnet,
    /// 200 small machines spread over all regions (~one per jurisdiction).
    Community,
    /// 200 modern machines spread over all regions (R3-style consortium).
    Consortium,
}

impl DeploymentKind {
    /// All five scenarios, in the paper's order.
    pub const ALL: [DeploymentKind; 5] = [
        DeploymentKind::Datacenter,
        DeploymentKind::Testnet,
        DeploymentKind::Devnet,
        DeploymentKind::Community,
        DeploymentKind::Consortium,
    ];

    /// The paper's name for this configuration.
    pub const fn name(self) -> &'static str {
        match self {
            DeploymentKind::Datacenter => "datacenter",
            DeploymentKind::Testnet => "testnet",
            DeploymentKind::Devnet => "devnet",
            DeploymentKind::Community => "community",
            DeploymentKind::Consortium => "consortium",
        }
    }

    /// Parses a configuration name.
    pub fn parse(s: &str) -> Option<DeploymentKind> {
        DeploymentKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s.trim())
    }
}

impl fmt::Display for DeploymentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One blockchain node's placement: where it runs and on what hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSite {
    /// AWS region hosting the node.
    pub region: Region,
    /// Machine class of the node.
    pub machine: MachineSpec,
}

/// A concrete deployment: an ordered list of node sites.
///
/// Diablo Secondaries are collocated with blockchain nodes (§5.3), so the
/// same site list also places the load-generating clients.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    kind: DeploymentKind,
    sites: Vec<NodeSite>,
}

impl DeploymentConfig {
    /// Builds one of the paper's five standard configurations.
    pub fn standard(kind: DeploymentKind) -> Self {
        match kind {
            DeploymentKind::Datacenter => {
                Self::single_region(kind, 10, Region::Ohio, InstanceType::C59xlarge)
            }
            DeploymentKind::Testnet => {
                Self::single_region(kind, 10, Region::Ohio, InstanceType::C5Xlarge)
            }
            DeploymentKind::Devnet => Self::spread(kind, 10, InstanceType::C5Xlarge),
            DeploymentKind::Community => Self::spread(kind, 200, InstanceType::C5Xlarge),
            DeploymentKind::Consortium => Self::spread(kind, 200, InstanceType::C52xlarge),
        }
    }

    /// A custom configuration with every node in one region.
    pub fn single_region(
        kind: DeploymentKind,
        nodes: usize,
        region: Region,
        instance: InstanceType,
    ) -> Self {
        let machine = MachineSpec::new(instance);
        DeploymentConfig {
            kind,
            sites: vec![NodeSite { region, machine }; nodes],
        }
    }

    /// A configuration from an explicit site list (custom setup files).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn from_sites(kind: DeploymentKind, sites: Vec<NodeSite>) -> Self {
        assert!(!sites.is_empty(), "a deployment needs at least one node");
        DeploymentConfig { kind, sites }
    }

    /// A custom configuration with nodes spread equally (round-robin)
    /// over all ten regions, as the paper does.
    pub fn spread(kind: DeploymentKind, nodes: usize, instance: InstanceType) -> Self {
        let machine = MachineSpec::new(instance);
        let sites = (0..nodes)
            .map(|i| NodeSite {
                region: Region::ALL[i % Region::COUNT],
                machine,
            })
            .collect();
        DeploymentConfig { kind, sites }
    }

    /// Which scenario this deployment models.
    pub fn kind(&self) -> DeploymentKind {
        self.kind
    }

    /// The node sites, in node-id order.
    pub fn sites(&self) -> &[NodeSite] {
        &self.sites
    }

    /// Number of blockchain nodes.
    pub fn node_count(&self) -> usize {
        self.sites.len()
    }

    /// The machine class (uniform across a standard deployment).
    pub fn machine(&self) -> MachineSpec {
        self.sites
            .first()
            .map(|s| s.machine)
            .unwrap_or(MachineSpec::new(InstanceType::C5Xlarge))
    }

    /// Number of distinct regions in use.
    pub fn region_count(&self) -> usize {
        let mut seen = [false; Region::COUNT];
        for site in &self.sites {
            seen[site.region.index()] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Whether all nodes share a single availability zone.
    pub fn is_local(&self) -> bool {
        self.region_count() <= 1
    }

    /// Byzantine fault threshold `f` for `n = 3f + 1` nodes.
    pub fn byzantine_f(&self) -> usize {
        self.node_count().saturating_sub(1) / 3
    }

    /// BFT quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.byzantine_f() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_configs_match_table3() {
        let dc = DeploymentConfig::standard(DeploymentKind::Datacenter);
        assert_eq!(dc.node_count(), 10);
        assert_eq!(dc.machine().vcpus(), 36);
        assert!(dc.is_local());

        let tn = DeploymentConfig::standard(DeploymentKind::Testnet);
        assert_eq!(tn.node_count(), 10);
        assert_eq!(tn.machine().vcpus(), 4);
        assert!(tn.is_local());

        let dn = DeploymentConfig::standard(DeploymentKind::Devnet);
        assert_eq!(dn.node_count(), 10);
        assert_eq!(dn.region_count(), 10);

        let cm = DeploymentConfig::standard(DeploymentKind::Community);
        assert_eq!(cm.node_count(), 200);
        assert_eq!(cm.machine().memory_gib(), 8);
        assert_eq!(cm.region_count(), 10);

        let cs = DeploymentConfig::standard(DeploymentKind::Consortium);
        assert_eq!(cs.node_count(), 200);
        assert_eq!(cs.machine().vcpus(), 8);
        assert_eq!(cs.region_count(), 10);
    }

    #[test]
    fn spread_is_balanced() {
        let cfg = DeploymentConfig::spread(DeploymentKind::Community, 200, InstanceType::C5Xlarge);
        let mut per_region = [0usize; Region::COUNT];
        for site in cfg.sites() {
            per_region[site.region.index()] += 1;
        }
        assert!(per_region.iter().all(|&n| n == 20));
    }

    #[test]
    fn quorum_math() {
        let cfg = DeploymentConfig::standard(DeploymentKind::Datacenter);
        assert_eq!(cfg.byzantine_f(), 3); // n=10 -> f=3
        assert_eq!(cfg.quorum(), 7);
        let big = DeploymentConfig::standard(DeploymentKind::Consortium);
        assert_eq!(big.byzantine_f(), 66); // n=200 -> f=66
        assert_eq!(big.quorum(), 133);
    }

    #[test]
    fn kind_parse_roundtrip() {
        for k in DeploymentKind::ALL {
            assert_eq!(DeploymentKind::parse(k.name()), Some(k));
        }
        assert_eq!(DeploymentKind::parse("mainnet"), None);
    }
}
