//! Network measurement probes.
//!
//! The paper measured its Table 3 matrix "with iperf3 on machines from
//! the devnet configuration". This module reproduces that measurement
//! *methodology* against the simulated network: ping-style RTT probes
//! (many small round trips, report the mean) and iperf-style bandwidth
//! probes (a timed bulk transfer). Measured values land on the encoded
//! matrix up to jitter — a consistency check between the model and its
//! data, used by the `table3` binary and the tests below.

use diablo_sim::DetRng;

use crate::model::NetworkModel;
use crate::region::Region;

/// Result of one pairwise probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Measured mean round-trip time, ms.
    pub rtt_ms: f64,
    /// Measured bulk bandwidth, Mbps.
    pub bandwidth_mbps: f64,
}

/// Ping-style RTT probe: `count` empty round trips, mean of the samples.
pub fn measure_rtt(
    net: &NetworkModel,
    rng: &mut DetRng,
    from: Region,
    to: Region,
    count: usize,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..count.max(1) {
        let out = net.delay(rng, from, to, 64);
        let back = net.delay(rng, to, from, 64);
        total += (out + back).as_secs_f64();
    }
    total / count.max(1) as f64 * 1e3
}

/// iperf3-style bandwidth probe: transfer `bytes` in one stream and
/// divide by the serialization time (propagation subtracted, as iperf's
/// steady-state window does).
pub fn measure_bandwidth(
    net: &NetworkModel,
    rng: &mut DetRng,
    from: Region,
    to: Region,
    bytes: u64,
) -> f64 {
    let total = net.delay(rng, from, to, bytes);
    let propagation = net.delay(rng, from, to, 0);
    let transfer = total.as_secs_f64() - propagation.as_secs_f64();
    if transfer <= 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 * 8.0 / transfer / 1e6
}

/// Probes one region pair with defaults matching the paper's set-up.
pub fn probe_pair(net: &NetworkModel, rng: &mut DetRng, a: Region, b: Region) -> ProbeResult {
    ProbeResult {
        rtt_ms: measure_rtt(net, rng, a, b, 20),
        bandwidth_mbps: measure_bandwidth(net, rng, a, b, 8 * 1024 * 1024),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{bandwidth_mbps, rtt_ms};

    #[test]
    fn rtt_probe_recovers_the_matrix() {
        let net = NetworkModel::deterministic();
        let mut rng = DetRng::new(1);
        for (a, b) in [
            (Region::Ohio, Region::Oregon),
            (Region::Tokyo, Region::CapeTown),
            (Region::Milan, Region::Stockholm),
        ] {
            let measured = measure_rtt(&net, &mut rng, a, b, 10);
            let truth = rtt_ms(a, b);
            assert!(
                (measured - truth).abs() / truth < 0.02,
                "{a}-{b}: measured {measured}, matrix {truth}"
            );
        }
    }

    #[test]
    fn bandwidth_probe_recovers_the_matrix() {
        let net = NetworkModel::deterministic();
        let mut rng = DetRng::new(2);
        for (a, b) in [
            (Region::Ohio, Region::Oregon),
            (Region::CapeTown, Region::Tokyo),
        ] {
            let measured = measure_bandwidth(&net, &mut rng, a, b, 16 * 1024 * 1024);
            let truth = bandwidth_mbps(a, b);
            assert!(
                (measured - truth).abs() / truth < 0.05,
                "{a}-{b}: measured {measured}, matrix {truth}"
            );
        }
    }

    #[test]
    fn jitter_biases_rtt_upward_only() {
        let jittery = NetworkModel { jitter: 0.2 };
        let mut rng = DetRng::new(3);
        let measured = measure_rtt(&jittery, &mut rng, Region::Ohio, Region::Sydney, 200);
        let truth = rtt_ms(Region::Ohio, Region::Sydney);
        assert!(measured > truth, "queueing jitter only adds delay");
        assert!(
            measured < truth * 1.6,
            "but not unboundedly: {measured} vs {truth}"
        );
    }

    #[test]
    fn probe_pair_is_deterministic_per_seed() {
        let net = NetworkModel::default();
        let a = probe_pair(&net, &mut DetRng::new(9), Region::Mumbai, Region::Bahrain);
        let b = probe_pair(&net, &mut DetRng::new(9), Region::Mumbai, Region::Bahrain);
        assert_eq!(a, b);
    }
}
