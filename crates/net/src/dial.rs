//! Wall-clock TCP dialing with retry.
//!
//! Live mode connects real processes over real sockets, so unlike the
//! simulated submission path a connection attempt can genuinely fail in
//! two distinct ways: the peer is *not reachable yet* (connection
//! refused while the Primary is still binding, reset, timed out) — a
//! transient condition worth retrying with backoff — or the address
//! itself is *nonsense* (unparseable host:port, failed resolution),
//! which no amount of retrying fixes. [`dial`] encodes exactly that
//! split; `diablo-core` maps the two kinds onto its `ConnectorError`
//! transience classification.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Retry schedule of a [`dial`] call.
///
/// Mirrors the simulated `RetryPolicy` of `diablo-chains` (the CLI's
/// `--retry=ATTEMPTSxBACKOFF_MS/TIMEOUT_MS` grammar): `attempts` tries
/// in total, a backoff that doubles between tries, and a hard wall-clock
/// deadline over the whole dial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DialPolicy {
    /// Maximum connection attempts, first try included (1 = never
    /// retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles on every further
    /// attempt.
    pub backoff: Duration,
    /// Hard deadline over the whole dial, including backoff sleeps.
    pub deadline: Duration,
}

impl Default for DialPolicy {
    fn default() -> Self {
        DialPolicy {
            attempts: 3,
            backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
        }
    }
}

/// Why a [`dial`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DialErrorKind {
    /// The address cannot resolve to a socket address at all; retrying
    /// is pointless and [`dial`] fails on the first attempt.
    BadAddress,
    /// Every attempt failed to connect (refused, reset, timed out);
    /// the peer may come up later.
    Unreachable,
}

/// A failed [`dial`], with the attempt count actually spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialError {
    /// Transient-vs-fatal classification.
    pub kind: DialErrorKind,
    /// The address as given by the caller.
    pub addr: String,
    /// The last underlying error.
    pub reason: String,
    /// Connection attempts actually made (1 for a bad address: the
    /// failure is detected before any connect).
    pub attempts: u32,
}

impl std::fmt::Display for DialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            DialErrorKind::BadAddress => {
                write!(f, "bad address `{}`: {}", self.addr, self.reason)
            }
            DialErrorKind::Unreachable => write!(
                f,
                "`{}` unreachable after {} attempt(s): {}",
                self.addr, self.attempts, self.reason
            ),
        }
    }
}

impl std::error::Error for DialError {}

/// Connects to `addr`, retrying transient failures per `policy`.
///
/// An unresolvable address fails fast on the first attempt with
/// [`DialErrorKind::BadAddress`]; connect failures are retried with
/// doubling backoff until the attempt or deadline budget runs out, then
/// reported as [`DialErrorKind::Unreachable`].
pub fn dial(addr: &str, policy: &DialPolicy) -> Result<TcpStream, DialError> {
    let bad = |reason: String| DialError {
        kind: DialErrorKind::BadAddress,
        addr: addr.to_string(),
        reason,
        attempts: 1,
    };
    let targets: Vec<SocketAddr> = match addr.to_socket_addrs() {
        Ok(it) => it.collect(),
        Err(e) => return Err(bad(e.to_string())),
    };
    if targets.is_empty() {
        return Err(bad("resolved to no socket address".to_string()));
    }

    let started = Instant::now();
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.backoff;
    let mut last = String::new();
    let mut made = 0u32;
    for attempt in 0..attempts {
        if attempt > 0 {
            // Respect the overall deadline across backoff sleeps too: a
            // retry that cannot start before the deadline is abandoned.
            let remaining = policy.deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(backoff.min(remaining));
            backoff = backoff.saturating_mul(2);
            if started.elapsed() >= policy.deadline {
                break;
            }
        }
        made += 1;
        let per_try = policy
            .deadline
            .saturating_sub(started.elapsed())
            .max(Duration::from_millis(1));
        match TcpStream::connect_timeout(&targets[0], per_try) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
    }
    Err(DialError {
        kind: DialErrorKind::Unreachable,
        addr: addr.to_string(),
        reason: last,
        attempts: made,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn fast(attempts: u32) -> DialPolicy {
        DialPolicy {
            attempts,
            backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(5),
        }
    }

    #[test]
    fn dial_reaches_a_listening_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        assert!(dial(&addr, &fast(1)).is_ok());
    }

    #[test]
    fn bad_address_fails_fast_without_retrying() {
        let err = dial("not an address", &fast(5)).unwrap_err();
        assert_eq!(err.kind, DialErrorKind::BadAddress);
        assert_eq!(err.attempts, 1, "no connect attempts for a bad address");
    }

    #[test]
    fn refusal_is_retried_per_policy() {
        // Bind-then-drop guarantees a port nobody listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = dial(&format!("127.0.0.1:{port}"), &fast(3)).unwrap_err();
        assert_eq!(err.kind, DialErrorKind::Unreachable);
        assert_eq!(err.attempts, 3, "every allowed attempt was spent");
    }

    #[test]
    fn retry_succeeds_once_the_peer_binds() {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let listener = TcpListener::bind(("127.0.0.1", port)).unwrap();
            let _ = listener.accept();
        });
        let policy = DialPolicy {
            attempts: 50,
            backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(10),
        };
        assert!(dial(&addr, &policy).is_ok(), "late-binding peer reached");
        binder.join().unwrap();
    }

    #[test]
    fn deadline_caps_the_attempt_budget() {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = DialPolicy {
            attempts: 1_000,
            backoff: Duration::from_millis(20),
            deadline: Duration::from_millis(60),
        };
        let err = dial(&format!("127.0.0.1:{port}"), &policy).unwrap_err();
        assert_eq!(err.kind, DialErrorKind::Unreachable);
        assert!(err.attempts < 1_000, "deadline stopped the retry loop");
    }
}
