//! Analytic quorum-latency model for consensus protocols.
//!
//! Simulating every vote of a 200-node BFT protocol means O(n²) events
//! per block; the commit latency of a phase, however, is exactly an order
//! statistic over point-to-point delays. This module computes those order
//! statistics from the Table 3 delay matrix:
//!
//! - *leader-based linear* protocols (HotStuff): a phase is leader → all,
//!   then all → leader votes; the phase completes when the leader holds a
//!   quorum of votes, i.e. at the `q`-th smallest of
//!   `d(L, i) + d(i, L)`.
//! - *leader-based all-to-all* protocols (IBFT/PBFT): after the leader's
//!   pre-prepare, every node broadcasts; node `i` completes the phase at
//!   the `q`-th smallest of `arrive_j + d(j, i)` over senders `j`.
//! - *gossip* protocols (Algorand, Avalanche, Solana): diffusion over a
//!   fanout-`k` overlay reaches all nodes in ~`log_k n` hops of the
//!   median one-way delay.
//!
//! All figures use jitter-mean delays; the chain simulations add the
//! stochastic component per block.

use diablo_sim::SimDuration;

use crate::config::DeploymentConfig;
use crate::model::NetworkModel;

/// Precomputed pairwise mean one-way delays (seconds) for a deployment.
#[derive(Debug, Clone)]
pub struct QuorumModel {
    n: usize,
    quorum: usize,
    /// `delay[i][j]` = mean one-way delay i → j for a vote-sized message.
    delay: Vec<Vec<f64>>,
}

/// Size of a consensus vote/ack message in bytes.
const VOTE_BYTES: u64 = 256;

impl QuorumModel {
    /// Builds the model for a deployment under a network model.
    pub fn new(config: &DeploymentConfig, net: &NetworkModel) -> Self {
        let sites = config.sites();
        let n = sites.len();
        let mut delay = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    delay[i][j] = net
                        .mean_delay(sites[i].region, sites[j].region, VOTE_BYTES)
                        .as_secs_f64();
                }
            }
        }
        // The pairwise link profile of the deployment, captured once at
        // model build: the distribution every phase latency below is an
        // order statistic of.
        for row in &delay {
            for &d in row {
                if d > 0.0 {
                    diablo_telemetry::record!("net.link.delay_us", (d * 1e6) as u64);
                }
            }
        }
        QuorumModel {
            n,
            quorum: config.quorum(),
            delay,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// BFT quorum size (2f + 1).
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Mean one-way vote delay from node `i` to node `j`, in seconds.
    pub fn delay_secs(&self, i: usize, j: usize) -> f64 {
        self.delay[i][j]
    }

    /// Extra one-way delay for a payload of `bytes` from `i` to `j`
    /// relative to a vote-sized message (serialization only).
    fn payload_extra(&self, _i: usize, _j: usize, bytes: u64) -> f64 {
        // Serialization time beyond the vote baseline, at a conservative
        // 100 Mbps WAN floor; propagation is already in `delay`.
        (bytes.saturating_sub(VOTE_BYTES)) as f64 * 8.0 / 100e6
    }

    /// The `k`-th smallest value of a slice (1-indexed); `k` is clamped
    /// to the slice length.
    fn kth_smallest(mut values: Vec<f64>, k: usize) -> f64 {
        assert!(!values.is_empty(), "kth_smallest needs values");
        let k = k.clamp(1, values.len());
        values.sort_by(|a, b| a.partial_cmp(b).expect("delays are not NaN"));
        values[k - 1]
    }

    /// Time for a leader broadcast of `bytes` to reach all nodes.
    pub fn broadcast_all(&self, leader: usize, bytes: u64) -> SimDuration {
        let worst = (0..self.n)
            .map(|i| {
                if i == leader {
                    0.0
                } else {
                    self.delay[leader][i] + self.payload_extra(leader, i, bytes)
                }
            })
            .fold(0.0, f64::max);
        diablo_telemetry::counter!(
            "net.bytes.proposals",
            bytes * self.n.saturating_sub(1) as u64
        );
        SimDuration::from_secs_f64(worst)
    }

    /// Time for a leader broadcast of `bytes` to reach a quorum of nodes.
    pub fn broadcast_quorum(&self, leader: usize, bytes: u64) -> SimDuration {
        let arrivals: Vec<f64> = (0..self.n)
            .map(|i| {
                if i == leader {
                    0.0
                } else {
                    self.delay[leader][i] + self.payload_extra(leader, i, bytes)
                }
            })
            .collect();
        diablo_telemetry::counter!(
            "net.bytes.proposals",
            bytes * self.n.saturating_sub(1) as u64
        );
        SimDuration::from_secs_f64(Self::kth_smallest(arrivals, self.quorum))
    }

    /// One linear (HotStuff-style) phase: leader sends `bytes`, nodes
    /// reply with votes, phase ends when the leader holds a quorum.
    pub fn linear_phase(&self, leader: usize, bytes: u64) -> SimDuration {
        let round_trips: Vec<f64> = (0..self.n)
            .map(|i| {
                if i == leader {
                    0.0
                } else {
                    self.delay[leader][i]
                        + self.payload_extra(leader, i, bytes)
                        + self.delay[i][leader]
                }
            })
            .collect();
        let peers = self.n.saturating_sub(1) as u64;
        diablo_telemetry::counter!("net.bytes.proposals", bytes * peers);
        diablo_telemetry::counter!("net.bytes.votes", VOTE_BYTES * peers);
        let phase = SimDuration::from_secs_f64(Self::kth_smallest(round_trips, self.quorum));
        diablo_telemetry::record_duration!("net.phase.linear_us", phase);
        phase
    }

    /// HotStuff commit latency for a proposal of `bytes`: the three-chain
    /// rule needs three linear phases (prepare, pre-commit, commit); only
    /// the first carries the block payload.
    pub fn hotstuff_commit(&self, leader: usize, bytes: u64) -> SimDuration {
        self.linear_phase(leader, bytes)
            + self.linear_phase(leader, VOTE_BYTES)
            + self.linear_phase(leader, VOTE_BYTES)
    }

    /// IBFT/PBFT commit latency for a proposal of `bytes`: pre-prepare
    /// (leader → all) followed by two all-to-all phases (prepare,
    /// commit). Completion is measured at the leader (the node the
    /// collocated Diablo Secondary polls).
    pub fn ibft_commit(&self, leader: usize, bytes: u64) -> SimDuration {
        // Pre-prepare arrival times.
        let arrive: Vec<f64> = (0..self.n)
            .map(|i| {
                if i == leader {
                    0.0
                } else {
                    self.delay[leader][i] + self.payload_extra(leader, i, bytes)
                }
            })
            .collect();
        // Prepare: node j broadcasts at arrive[j]; node i is "prepared"
        // once it holds a quorum of prepares.
        let prepared = self.all_to_all_round(&arrive);
        // Commit: node j broadcasts commit at prepared[j]; the block is
        // committed at node i once it holds a quorum of commits.
        let committed = self.all_to_all_round(&prepared);
        let n = self.n as u64;
        diablo_telemetry::counter!("net.bytes.proposals", bytes * n.saturating_sub(1));
        // Two all-to-all vote rounds: every node broadcasts to every
        // other node in each.
        diablo_telemetry::counter!(
            "net.bytes.votes",
            2 * VOTE_BYTES * n * n.saturating_sub(1)
        );
        let d = SimDuration::from_secs_f64(committed[leader]);
        diablo_telemetry::record_duration!("net.phase.ibft_commit_us", d);
        d
    }

    /// One all-to-all round: every node `j` broadcasts at `start[j]`;
    /// returns for each node `i` the time it holds a quorum of messages.
    fn all_to_all_round(&self, start: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let arrivals: Vec<f64> = (0..self.n).map(|j| start[j] + self.delay[j][i]).collect();
                Self::kth_smallest(arrivals, self.quorum)
            })
            .collect()
    }

    /// Gossip diffusion time from `origin` to (almost) all nodes over a
    /// fanout-`k` overlay: `ceil(log_k n)` hops of the per-hop delay,
    /// where a hop costs the `p75` one-way delay from the origin's view
    /// of the network plus per-hop payload serialization.
    pub fn gossip_all(&self, origin: usize, fanout: usize, bytes: u64) -> SimDuration {
        if self.n <= 1 {
            return SimDuration::ZERO;
        }
        let fanout = fanout.max(2) as f64;
        let hops = (self.n as f64).ln() / fanout.ln();
        let hops = hops.ceil().max(1.0);
        let mut delays: Vec<f64> = (0..self.n)
            .filter(|&i| i != origin)
            .map(|i| self.delay[origin][i])
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).expect("delays are not NaN"));
        let p75 = delays[(delays.len() * 3) / 4];
        let per_hop = p75 + self.payload_extra(origin, origin, bytes);
        // Diffusion delivers the payload to every other node once.
        diablo_telemetry::counter!(
            "net.bytes.gossip",
            bytes * self.n.saturating_sub(1) as u64
        );
        let d = SimDuration::from_secs_f64(hops * per_hop);
        diablo_telemetry::record_duration!("net.phase.gossip_us", d);
        d
    }

    /// Median one-way vote delay from a node's point of view, in seconds.
    pub fn median_delay_from(&self, origin: usize) -> f64 {
        let mut delays: Vec<f64> = (0..self.n)
            .filter(|&i| i != origin)
            .map(|i| self.delay[origin][i])
            .collect();
        if delays.is_empty() {
            return 0.0;
        }
        delays.sort_by(|a, b| a.partial_cmp(b).expect("delays are not NaN"));
        delays[delays.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeploymentConfig, DeploymentKind};
    use crate::machine::InstanceType;
    use crate::region::Region;

    fn local(n: usize) -> QuorumModel {
        let cfg = DeploymentConfig::single_region(
            DeploymentKind::Datacenter,
            n,
            Region::Ohio,
            InstanceType::C59xlarge,
        );
        QuorumModel::new(&cfg, &NetworkModel::deterministic())
    }

    fn geo(n: usize) -> QuorumModel {
        let cfg = DeploymentConfig::spread(DeploymentKind::Devnet, n, InstanceType::C5Xlarge);
        QuorumModel::new(&cfg, &NetworkModel::deterministic())
    }

    #[test]
    fn local_phases_are_milliseconds() {
        let m = local(10);
        assert!(m.linear_phase(0, 1024) < SimDuration::from_millis(3));
        assert!(m.ibft_commit(0, 1024) < SimDuration::from_millis(5));
        assert!(m.hotstuff_commit(0, 1024) < SimDuration::from_millis(6));
    }

    #[test]
    fn geo_phases_are_hundreds_of_milliseconds() {
        let m = geo(10);
        let phase = m.linear_phase(0, 1024);
        assert!(phase > SimDuration::from_millis(100), "phase was {phase}");
        assert!(phase < SimDuration::from_secs(1));
        // HotStuff needs three phases, so it is strictly slower.
        assert!(m.hotstuff_commit(0, 1024) > phase * 2);
    }

    #[test]
    fn quorum_is_faster_than_all() {
        let m = geo(10);
        assert!(m.broadcast_quorum(0, 4096) <= m.broadcast_all(0, 4096));
    }

    #[test]
    fn bigger_payload_is_slower() {
        let m = geo(10);
        assert!(m.broadcast_all(0, 1_000_000) > m.broadcast_all(0, 1_000));
        assert!(m.ibft_commit(0, 1_000_000) > m.ibft_commit(0, 1_000));
    }

    #[test]
    fn ibft_commit_depends_on_leader_placement() {
        let m = geo(10);
        let all: Vec<f64> = (0..10)
            .map(|l| m.ibft_commit(l, 10_000).as_secs_f64())
            .collect();
        let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = all.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "leader placement should matter: {all:?}");
    }

    #[test]
    fn gossip_scales_logarithmically() {
        let small = geo(10).gossip_all(0, 8, 1024).as_secs_f64();
        let large = {
            let cfg =
                DeploymentConfig::spread(DeploymentKind::Community, 200, InstanceType::C5Xlarge);
            QuorumModel::new(&cfg, &NetworkModel::deterministic())
                .gossip_all(0, 8, 1024)
                .as_secs_f64()
        };
        // 200 nodes need at most one more hop tier than 10 at fanout 8.
        assert!(large <= small * 3.0, "small {small} large {large}");
        assert!(large >= small, "more nodes cannot be faster");
    }

    #[test]
    fn single_node_deployment_is_instant() {
        let m = local(1);
        assert_eq!(m.broadcast_all(0, 1024), SimDuration::ZERO);
        assert_eq!(m.gossip_all(0, 8, 1024), SimDuration::ZERO);
    }

    #[test]
    fn kth_smallest_selects_correctly() {
        let v = vec![5.0, 1.0, 3.0];
        assert_eq!(QuorumModel::kth_smallest(v.clone(), 1), 1.0);
        assert_eq!(QuorumModel::kth_smallest(v.clone(), 2), 3.0);
        assert_eq!(QuorumModel::kth_smallest(v.clone(), 3), 5.0);
        // Clamped above.
        assert_eq!(QuorumModel::kth_smallest(v, 10), 5.0);
    }
}
