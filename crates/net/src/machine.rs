//! Machine classes used by the paper's deployments (§5.1).
//!
//! The evaluation uses three AWS instance types. Besides the raw vCPU and
//! memory figures of Table 3, the machine model exposes derived
//! throughput figures (signature verifications per second, VM gas per
//! second, transaction admissions per second) that the blockchain node
//! simulations in `diablo-chains` consume. The per-core base rates are
//! calibration constants chosen so the end-to-end experiments reproduce
//! the paper's observed numbers (see EXPERIMENTS.md).

use core::fmt;

/// AWS instance types used in the paper's five configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// c5.xlarge: 4 vCPUs, 8 GiB (testnet, devnet, community).
    C5Xlarge,
    /// c5.2xlarge: 8 vCPUs, 16 GiB (consortium).
    C52xlarge,
    /// c5.9xlarge: 36 vCPUs, 72 GiB (datacenter).
    C59xlarge,
}

impl InstanceType {
    /// Number of virtual CPUs.
    pub const fn vcpus(self) -> u32 {
        match self {
            InstanceType::C5Xlarge => 4,
            InstanceType::C52xlarge => 8,
            InstanceType::C59xlarge => 36,
        }
    }

    /// Memory in GiB.
    pub const fn memory_gib(self) -> u32 {
        match self {
            InstanceType::C5Xlarge => 8,
            InstanceType::C52xlarge => 16,
            InstanceType::C59xlarge => 72,
        }
    }

    /// The AWS product name.
    pub const fn name(self) -> &'static str {
        match self {
            InstanceType::C5Xlarge => "c5.xlarge",
            InstanceType::C52xlarge => "c5.2xlarge",
            InstanceType::C59xlarge => "c5.9xlarge",
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A machine participating in a deployment: its instance type plus the
/// derived capacity model used by the node simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineSpec {
    /// The AWS instance type.
    pub instance: InstanceType,
}

/// Per-core ECDSA (secp256k1) signature verifications per second.
///
/// Calibration constant; c5 instances verify on the order of a few
/// thousand ECDSA signatures per core-second.
const ECDSA_VERIFY_PER_CORE_PER_SEC: f64 = 2_500.0;

/// Per-core Ed25519 verifications per second (batchable, faster).
const ED25519_VERIFY_PER_CORE_PER_SEC: f64 = 8_000.0;

/// Per-core EVM-style gas executed per second.
///
/// Go-ethereum executes on the order of a few hundred Mgas/s per core on
/// modern hardware for compute-heavy contracts; we use a conservative
/// figure for c5-class cores.
const GAS_PER_CORE_PER_SEC: f64 = 40_000_000.0;

impl MachineSpec {
    /// Machine of the given instance type.
    pub const fn new(instance: InstanceType) -> Self {
        MachineSpec { instance }
    }

    /// Number of virtual CPUs.
    pub const fn vcpus(self) -> u32 {
        self.instance.vcpus()
    }

    /// Memory in GiB.
    pub const fn memory_gib(self) -> u32 {
        self.instance.memory_gib()
    }

    /// ECDSA signature verifications per second on this machine,
    /// assuming all cores verify in parallel.
    pub fn ecdsa_verify_rate(self) -> f64 {
        self.vcpus() as f64 * ECDSA_VERIFY_PER_CORE_PER_SEC
    }

    /// Ed25519 signature verifications per second on this machine.
    pub fn ed25519_verify_rate(self) -> f64 {
        self.vcpus() as f64 * ED25519_VERIFY_PER_CORE_PER_SEC
    }

    /// VM gas units executed per second (single execution thread, as in
    /// geth's serial EVM execution).
    pub fn serial_gas_rate(self) -> f64 {
        GAS_PER_CORE_PER_SEC
    }

    /// VM gas units executed per second when the chain executes
    /// transactions in parallel across cores (Solana's Sealevel model).
    pub fn parallel_gas_rate(self) -> f64 {
        self.vcpus() as f64 * GAS_PER_CORE_PER_SEC
    }

    /// Approximate number of transactions the mempool can hold before
    /// memory pressure forces drops (scaled by machine memory; one
    /// transaction with metadata ≈ 1 KiB, and the node can devote about
    /// an eighth of its memory to the pool).
    pub fn mempool_capacity(self) -> usize {
        (self.memory_gib() as usize) * 1024 * 1024 / 8
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vCPUs, {} GiB)",
            self.instance.name(),
            self.vcpus(),
            self.memory_gib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_machine_figures() {
        assert_eq!(InstanceType::C5Xlarge.vcpus(), 4);
        assert_eq!(InstanceType::C5Xlarge.memory_gib(), 8);
        assert_eq!(InstanceType::C52xlarge.vcpus(), 8);
        assert_eq!(InstanceType::C52xlarge.memory_gib(), 16);
        assert_eq!(InstanceType::C59xlarge.vcpus(), 36);
        assert_eq!(InstanceType::C59xlarge.memory_gib(), 72);
    }

    #[test]
    fn rates_scale_with_cores() {
        let small = MachineSpec::new(InstanceType::C5Xlarge);
        let big = MachineSpec::new(InstanceType::C59xlarge);
        assert!(big.ecdsa_verify_rate() > small.ecdsa_verify_rate() * 8.0);
        assert!(big.parallel_gas_rate() > small.parallel_gas_rate() * 8.0);
        // Serial execution does not benefit from extra cores.
        assert_eq!(big.serial_gas_rate(), small.serial_gas_rate());
    }

    #[test]
    fn ed25519_faster_than_ecdsa() {
        let m = MachineSpec::new(InstanceType::C52xlarge);
        assert!(m.ed25519_verify_rate() > m.ecdsa_verify_rate());
    }

    #[test]
    fn mempool_capacity_scales_with_memory() {
        let small = MachineSpec::new(InstanceType::C5Xlarge);
        let big = MachineSpec::new(InstanceType::C59xlarge);
        assert_eq!(big.mempool_capacity(), small.mempool_capacity() * 9);
    }

    #[test]
    fn display_mentions_name_and_cores() {
        let s = format!("{}", MachineSpec::new(InstanceType::C52xlarge));
        assert!(s.contains("c5.2xlarge") && s.contains("8 vCPUs"));
    }
}
