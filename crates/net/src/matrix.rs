//! The measured inter-region network matrices of the paper's Table 3.
//!
//! The paper reports, for each ordered pair of the ten AWS regions, the
//! bandwidth (upper-right triangle, in Mbps) and the round-trip time
//! (lower-left triangle, in ms) measured with `iperf3` on machines of the
//! devnet configuration. We store the table verbatim and expose
//! symmetric accessors: `rtt_ms(a, b)` reads the lower triangle entry for
//! the unordered pair `{a, b}`, `bandwidth_mbps(a, b)` the upper one.

use crate::region::Region;

/// Table 3 verbatim: entry `[i][j]` with `i > j` is the RTT in ms between
/// regions `i` and `j`; entry `[i][j]` with `i < j` is the bandwidth in
/// Mbps. The diagonal is unused (same region ⇒ intra-datacenter model).
const TABLE3: [[f64; 10]; 10] = [
    // Cape Town
    [0.0, 26.1, 36.0, 20.8, 59.8, 67.1, 33.6, 27.1, 43.6, 35.9],
    // Tokyo
    [354.0, 0.0, 89.3, 112.1, 42.1, 48.1, 66.8, 39.3, 85.8, 108.8],
    // Mumbai
    [
        272.0, 127.2, 0.0, 75.9, 81.3, 103.2, 336.3, 30.8, 53.3, 48.5,
    ],
    // Sydney
    [410.4, 102.3, 146.8, 0.0, 32.0, 42.4, 59.6, 31.2, 57.0, 80.8],
    // Stockholm
    [
        179.7, 241.2, 138.9, 295.7, 0.0, 404.6, 81.8, 48.2, 94.7, 67.6,
    ],
    // Milan
    [
        162.4, 214.8, 110.8, 238.8, 30.2, 0.0, 105.7, 49.4, 104.9, 70.1,
    ],
    // Bahrain
    [
        287.0, 164.3, 36.4, 179.2, 137.9, 108.2, 0.0, 29.9, 49.4, 38.7,
    ],
    // Sao Paulo
    [
        340.5, 256.6, 305.6, 310.5, 214.9, 211.9, 320.0, 0.0, 92.3, 60.5,
    ],
    // Ohio
    [
        237.0, 131.8, 197.3, 187.9, 120.0, 109.2, 212.7, 121.9, 0.0, 105.0,
    ],
    // Oregon
    [
        276.6, 96.7, 215.8, 139.7, 162.0, 157.8, 251.4, 178.3, 55.2, 0.0,
    ],
];

/// Round-trip time inside a single AWS availability zone, in ms
/// (the paper quotes 1 ms for c5 instances in one datacenter).
pub const INTRA_DC_RTT_MS: f64 = 1.0;

/// Bandwidth inside a single AWS availability zone, in Mbps
/// (the paper quotes 10 Gbps for the datacenter configuration).
pub const INTRA_DC_BANDWIDTH_MBPS: f64 = 10_000.0;

/// Round-trip time in milliseconds between two regions.
///
/// Same-region pairs use the intra-datacenter constant.
pub fn rtt_ms(a: Region, b: Region) -> f64 {
    if a == b {
        return INTRA_DC_RTT_MS;
    }
    let (hi, lo) = if a.index() > b.index() {
        (a, b)
    } else {
        (b, a)
    };
    TABLE3[hi.index()][lo.index()]
}

/// Bandwidth in Mbps between two regions.
///
/// Same-region pairs use the intra-datacenter constant.
pub fn bandwidth_mbps(a: Region, b: Region) -> f64 {
    if a == b {
        return INTRA_DC_BANDWIDTH_MBPS;
    }
    let (lo, hi) = if a.index() < b.index() {
        (a, b)
    } else {
        (b, a)
    };
    TABLE3[lo.index()][hi.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_is_symmetric_and_matches_paper_samples() {
        // Spot-check against the printed Table 3.
        assert_eq!(rtt_ms(Region::Tokyo, Region::CapeTown), 354.0);
        assert_eq!(rtt_ms(Region::CapeTown, Region::Tokyo), 354.0);
        assert_eq!(rtt_ms(Region::Sydney, Region::CapeTown), 410.4);
        assert_eq!(rtt_ms(Region::Oregon, Region::Ohio), 55.2);
        assert_eq!(rtt_ms(Region::Milan, Region::Stockholm), 30.2);
    }

    #[test]
    fn bandwidth_is_symmetric_and_matches_paper_samples() {
        assert_eq!(bandwidth_mbps(Region::CapeTown, Region::Tokyo), 26.1);
        assert_eq!(bandwidth_mbps(Region::Tokyo, Region::CapeTown), 26.1);
        assert_eq!(bandwidth_mbps(Region::Stockholm, Region::Milan), 404.6);
        assert_eq!(bandwidth_mbps(Region::Ohio, Region::Oregon), 105.0);
        assert_eq!(bandwidth_mbps(Region::Mumbai, Region::Bahrain), 336.3);
    }

    #[test]
    fn same_region_uses_datacenter_constants() {
        assert_eq!(rtt_ms(Region::Ohio, Region::Ohio), INTRA_DC_RTT_MS);
        assert_eq!(
            bandwidth_mbps(Region::Ohio, Region::Ohio),
            INTRA_DC_BANDWIDTH_MBPS
        );
    }

    #[test]
    fn all_pairs_are_positive() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert!(rtt_ms(a, b) > 0.0, "rtt {a} {b}");
                assert!(bandwidth_mbps(a, b) > 0.0, "bw {a} {b}");
            }
        }
    }

    #[test]
    fn wan_rtts_exceed_lan() {
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(rtt_ms(a, b) > INTRA_DC_RTT_MS);
                }
            }
        }
    }
}
