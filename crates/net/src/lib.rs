//! Geo-distributed network model for the Diablo benchmark suite.
//!
//! Encodes the paper's Table 3: the ten AWS regions used in the
//! evaluation, the measured inter-region round-trip times and bandwidths,
//! the machine classes (c5.xlarge, c5.2xlarge, c5.9xlarge) and the five
//! deployment configurations (datacenter, testnet, devnet, community,
//! consortium). On top of the raw matrices it provides a message delay
//! model and an analytic quorum-latency model used by the consensus
//! simulations in `diablo-chains`.

#![warn(missing_docs)]

pub mod config;
pub mod dial;
pub mod machine;
pub mod matrix;
pub mod model;
pub mod probe;
pub mod quorum;
pub mod region;

pub use config::{DeploymentConfig, DeploymentKind, NodeSite};
pub use dial::{dial, DialError, DialErrorKind, DialPolicy};
pub use machine::{InstanceType, MachineSpec};
pub use matrix::{bandwidth_mbps, rtt_ms, INTRA_DC_BANDWIDTH_MBPS, INTRA_DC_RTT_MS};
pub use model::NetworkModel;
pub use probe::{measure_bandwidth, measure_rtt, probe_pair, ProbeResult};
pub use quorum::QuorumModel;
pub use region::Region;
