//! The ten AWS regions of the paper's evaluation (§5.1).

use core::fmt;

/// An AWS region used in the paper's geo-distributed deployments.
///
/// The discriminants index into the round-trip-time and bandwidth
/// matrices of [`crate::matrix`], in the same row/column order as the
/// paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Region {
    /// af-south-1 (Cape Town).
    CapeTown = 0,
    /// ap-northeast-1 (Tokyo).
    Tokyo = 1,
    /// ap-south-1 (Mumbai).
    Mumbai = 2,
    /// ap-southeast-2 (Sydney).
    Sydney = 3,
    /// eu-north-1 (Stockholm).
    Stockholm = 4,
    /// eu-south-1 (Milan).
    Milan = 5,
    /// me-south-1 (Bahrain).
    Bahrain = 6,
    /// sa-east-1 (São Paulo).
    SaoPaulo = 7,
    /// us-east-2 (Ohio).
    Ohio = 8,
    /// us-west-2 (Oregon).
    Oregon = 9,
}

impl Region {
    /// All ten regions, in Table 3 order.
    pub const ALL: [Region; 10] = [
        Region::CapeTown,
        Region::Tokyo,
        Region::Mumbai,
        Region::Sydney,
        Region::Stockholm,
        Region::Milan,
        Region::Bahrain,
        Region::SaoPaulo,
        Region::Ohio,
        Region::Oregon,
    ];

    /// Number of regions.
    pub const COUNT: usize = 10;

    /// The row/column index of this region in the Table 3 matrices.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds a region from a matrix index.
    pub fn from_index(index: usize) -> Option<Region> {
        Region::ALL.get(index).copied()
    }

    /// The human-readable city name used in the paper.
    pub const fn city(self) -> &'static str {
        match self {
            Region::CapeTown => "Cape Town",
            Region::Tokyo => "Tokyo",
            Region::Mumbai => "Mumbai",
            Region::Sydney => "Sydney",
            Region::Stockholm => "Stockholm",
            Region::Milan => "Milan",
            Region::Bahrain => "Bahrain",
            Region::SaoPaulo => "Sao Paulo",
            Region::Ohio => "Ohio",
            Region::Oregon => "Oregon",
        }
    }

    /// The AWS availability-zone tag used in Diablo workload
    /// specifications (e.g. `us-east-2` for Ohio, cf. the paper's §4
    /// example configuration).
    pub const fn aws_zone(self) -> &'static str {
        match self {
            Region::CapeTown => "af-south-1",
            Region::Tokyo => "ap-northeast-1",
            Region::Mumbai => "ap-south-1",
            Region::Sydney => "ap-southeast-2",
            Region::Stockholm => "eu-north-1",
            Region::Milan => "eu-south-1",
            Region::Bahrain => "me-south-1",
            Region::SaoPaulo => "sa-east-1",
            Region::Ohio => "us-east-2",
            Region::Oregon => "us-west-2",
        }
    }

    /// Parses a region from either its city name or its AWS zone tag.
    pub fn parse(s: &str) -> Option<Region> {
        let needle = s.trim();
        Region::ALL
            .iter()
            .copied()
            .find(|r| r.city().eq_ignore_ascii_case(needle) || r.aws_zone() == needle)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.city())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Region::from_index(i), Some(*r));
        }
        assert_eq!(Region::from_index(10), None);
    }

    #[test]
    fn parse_city_and_zone() {
        assert_eq!(Region::parse("Ohio"), Some(Region::Ohio));
        assert_eq!(Region::parse("us-east-2"), Some(Region::Ohio));
        assert_eq!(Region::parse("sao paulo"), Some(Region::SaoPaulo));
        assert_eq!(Region::parse("atlantis"), None);
    }

    #[test]
    fn display_matches_city() {
        assert_eq!(format!("{}", Region::Tokyo), "Tokyo");
    }
}
