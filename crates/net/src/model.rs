//! Point-to-point message delay model.
//!
//! One-way delay between two sites is half the measured round-trip time,
//! plus serialization time of the payload at the pair's bandwidth, plus a
//! small log-normal-ish jitter. The jitter is drawn from the caller's
//! deterministic RNG so simulations stay reproducible.

use diablo_sim::{DetRng, SimDuration};

use crate::matrix::{bandwidth_mbps, rtt_ms};
use crate::region::Region;

/// Network delay model over the Table 3 matrices.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Relative jitter applied to the propagation delay (e.g. 0.05 for
    /// ±5 % typical variation).
    pub jitter: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel { jitter: 0.05 }
    }
}

impl NetworkModel {
    /// A model without jitter (useful for analytic tests).
    pub const fn deterministic() -> Self {
        NetworkModel { jitter: 0.0 }
    }

    /// One-way propagation delay (no payload) between two regions,
    /// without jitter.
    pub fn propagation(&self, from: Region, to: Region) -> SimDuration {
        SimDuration::from_secs_f64(rtt_ms(from, to) / 2.0 / 1e3)
    }

    /// Serialization delay of `bytes` at the pair's bandwidth.
    pub fn transmission(&self, from: Region, to: Region, bytes: u64) -> SimDuration {
        let bits = bytes as f64 * 8.0;
        let rate = bandwidth_mbps(from, to) * 1e6;
        SimDuration::from_secs_f64(bits / rate)
    }

    /// Total one-way delay of a `bytes`-sized message, with jitter drawn
    /// from `rng`.
    pub fn delay(&self, rng: &mut DetRng, from: Region, to: Region, bytes: u64) -> SimDuration {
        let base = self.propagation(from, to) + self.transmission(from, to, bytes);
        if self.jitter == 0.0 {
            return base;
        }
        // Multiplicative jitter, biased upwards (queueing only adds).
        let j = 1.0 + self.jitter * rng.exponential(1.0);
        SimDuration::from_secs_f64(base.as_secs_f64() * j)
    }

    /// Expected (jitter-mean) one-way delay of a `bytes`-sized message.
    ///
    /// The jitter term in [`NetworkModel::delay`] is an exponential with
    /// mean 1, so the expectation is `base * (1 + jitter)`.
    pub fn mean_delay(&self, from: Region, to: Region, bytes: u64) -> SimDuration {
        let base = self.propagation(from, to) + self.transmission(from, to, bytes);
        SimDuration::from_secs_f64(base.as_secs_f64() * (1.0 + self.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_is_half_rtt() {
        let m = NetworkModel::deterministic();
        let d = m.propagation(Region::Tokyo, Region::CapeTown);
        assert_eq!(d.as_micros(), 177_000); // 354 ms / 2
    }

    #[test]
    fn transmission_scales_with_size() {
        let m = NetworkModel::deterministic();
        let one = m.transmission(Region::Ohio, Region::Oregon, 1_000_000);
        let two = m.transmission(Region::Ohio, Region::Oregon, 2_000_000);
        // Doubling the payload doubles the delay (up to µs rounding).
        assert!((two.as_micros() as i64 - one.as_micros() as i64 * 2).abs() <= 1);
        // 1 MB at 105 Mbps ~ 76 ms.
        let secs = one.as_secs_f64();
        assert!((secs - 8e6 / 105e6).abs() < 1e-6, "got {secs}");
    }

    #[test]
    fn deterministic_model_has_no_jitter() {
        let m = NetworkModel::deterministic();
        let mut rng = DetRng::new(1);
        let a = m.delay(&mut rng, Region::Milan, Region::Sydney, 512);
        let b = m.delay(&mut rng, Region::Milan, Region::Sydney, 512);
        assert_eq!(a, b);
        assert_eq!(a, m.mean_delay(Region::Milan, Region::Sydney, 512));
    }

    #[test]
    fn jitter_only_increases_delay() {
        let m = NetworkModel { jitter: 0.1 };
        let base = NetworkModel::deterministic().delay(
            &mut DetRng::new(0),
            Region::Ohio,
            Region::Tokyo,
            256,
        );
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let d = m.delay(&mut rng, Region::Ohio, Region::Tokyo, 256);
            assert!(d >= base);
        }
    }

    #[test]
    fn mean_delay_matches_empirical_mean() {
        let m = NetworkModel { jitter: 0.2 };
        let mut rng = DetRng::new(3);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| {
                m.delay(&mut rng, Region::Ohio, Region::Milan, 1024)
                    .as_secs_f64()
            })
            .sum();
        let mean = sum / n as f64;
        let expected = m
            .mean_delay(Region::Ohio, Region::Milan, 1024)
            .as_secs_f64();
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn local_messages_are_fast() {
        let m = NetworkModel::deterministic();
        let d = m.delay(&mut DetRng::new(0), Region::Ohio, Region::Ohio, 1024);
        assert!(d < SimDuration::from_millis(2));
    }
}
