//! Per-chain adapters.
//!
//! The paper implements the four-function abstraction once per chain
//! ("between 1,000 and 1,200 LOC of Go", §4), because each chain has its
//! own client interface and quirks: Algorand's blocking submission API
//! that Diablo replaced with block polling, Avalanche's signature-scheme
//! detour (RSA4096 → Ed25519 → ECDSA), Ethereum's online re-signing for
//! the London fee, Solana's recent-blockhash refetching. Here each
//! adapter configures the shared simulated backend with the same
//! chain-specific behaviours (which live in `diablo_chains::params`) and
//! documents the corresponding quirk.

use diablo_chains::Chain;

use crate::abstraction::SimConnector;

/// A registered adapter: the chain plus the client-side integration
/// notes from §5.2.
#[derive(Debug, Clone, Copy)]
pub struct Adapter {
    /// The chain this adapter drives.
    pub chain: Chain,
    /// How clients detect commits on this chain.
    pub commit_detection: &'static str,
    /// Chain-specific client workaround Diablo needed (§5.2).
    pub quirk: &'static str,
}

/// All six adapters, in the paper's presentation order.
pub const ADAPTERS: [Adapter; 6] = [
    Adapter {
        chain: Chain::Algorand,
        commit_detection: "poll every appended block",
        quirk: "the blocking submission API was too slow under load; Diablo polls every \
                appended block instead, which significantly improved Algorand's numbers",
    },
    Adapter {
        chain: Chain::Avalanche,
        commit_detection: "web-socket streaming head (shared with Ethereum and Quorum)",
        quirk: "RSA4096 signing was too slow at experiment scale and Ed25519 did not work; \
                the adapter signs with ECDSA; London fees apply",
    },
    Adapter {
        chain: Chain::Diem,
        commit_detection: "client API with sequence numbers",
        quirk: "nodes accept at most 100 in-flight transactions per signer; the account \
                setup tools fail past 130 accounts on large deployments",
    },
    Adapter {
        chain: Chain::Ethereum,
        commit_detection: "web-socket streaming head",
        quirk: "the London fee changes every block; the adapter re-signs transactions \
                online to track it, and underpriced transactions linger",
    },
    Adapter {
        chain: Chain::Quorum,
        commit_detection: "web-socket streaming head",
        quirk: "runs IBFT exclusively (Clique is vulnerable to message delays and Raft \
                only tolerates crashes); no London fee market",
    },
    Adapter {
        chain: Chain::Solana,
        commit_detection: "web-socket subscription at the chosen commitment level",
        quirk: "transactions must sign a blockhash less than 120 s old; the adapter \
                refetches the last blockhash periodically because DApp workloads outlive it",
    },
];

/// Looks up an adapter by chain name (case-insensitive).
pub fn lookup(name: &str) -> Option<Adapter> {
    let chain = Chain::parse(name)?;
    ADAPTERS.iter().copied().find(|a| a.chain == chain)
}

/// Creates the connector for a chain.
pub fn connector(chain: Chain) -> SimConnector {
    SimConnector::new(chain.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::Connector;

    #[test]
    fn every_chain_has_an_adapter() {
        for chain in Chain::ALL {
            let a = lookup(chain.name()).unwrap_or_else(|| panic!("{chain} missing"));
            assert_eq!(a.chain, chain);
            assert!(!a.quirk.is_empty());
        }
        assert!(lookup("tezos").is_none());
    }

    #[test]
    fn connector_reports_chain_name() {
        let c = connector(Chain::Solana);
        assert_eq!(c.name(), "Solana");
    }

    #[test]
    fn quirks_quote_section_5_2() {
        assert!(lookup("algorand").unwrap().quirk.contains("poll"));
        assert!(lookup("solana").unwrap().quirk.contains("blockhash"));
        assert!(lookup("diem").unwrap().quirk.contains("130"));
        assert!(lookup("quorum").unwrap().quirk.contains("IBFT"));
    }
}
