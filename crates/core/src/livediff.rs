//! `live-diff`: fidelity comparison of a live (wall-clock) run against
//! the deterministic simulation of the same resolved configuration.
//!
//! A live run (`--live`) pays real costs — thread-pool signature
//! verification, socket latency, scheduler jitter — where the
//! simulation charges modeled ones. Both runs record the *same*
//! telemetry keys, so the per-phase latency histograms align by name
//! exactly like `trace-diff` aligns transactions by id. The diff
//! reports, per pipeline phase, the live-vs-simulated median cost, and
//! collapses the whole comparison into one **fidelity score**:
//!
//! ```text
//! fidelity = exp(−mean(|ln(live/sim)|))
//! ```
//!
//! over every matched phase median plus the throughput and mean-latency
//! ratios. A perfect match scores 1.0; each factor-of-e disagreement
//! (in either direction) costs one e-fold. Ratios are ε-guarded so the
//! score is always finite, even over empty histograms.

use std::collections::BTreeMap;

use crate::json::{parse, Json};
use crate::report::{phase_of, Report};
use crate::tracediff::StageDiff;

/// One run's comparable shape: the scalar stats plus every per-phase
/// time histogram, keyed by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Average committed throughput, tx/s.
    pub throughput: f64,
    /// Average commit latency, seconds.
    pub latency: f64,
    /// `metric name → (phase, observation count, p50 µs)` for every
    /// `*_us` histogram belonging to a pipeline phase.
    pub phases: BTreeMap<String, (&'static str, u64, u64)>,
}

/// The live-vs-simulated delta of one phase metric.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Pipeline phase (mempool, consensus, execution, network, storage).
    pub phase: &'static str,
    /// The histogram name both runs recorded.
    pub metric: String,
    /// Observations in the live run.
    pub live_count: u64,
    /// Observations in the simulated run.
    pub sim_count: u64,
    /// Live median, µs.
    pub live_p50_us: u64,
    /// Simulated median, µs.
    pub sim_p50_us: u64,
    /// ε-guarded `live/sim` median ratio (1.0 = perfect agreement).
    pub ratio: f64,
}

/// The full fidelity report of a live run against its simulation twin.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveDiff {
    /// Per-metric deltas, in phase order then name order.
    pub phases: Vec<PhaseDelta>,
    /// Live average throughput, tx/s.
    pub live_throughput: f64,
    /// Simulated average throughput, tx/s.
    pub sim_throughput: f64,
    /// Live average commit latency, seconds.
    pub live_latency: f64,
    /// Simulated average commit latency, seconds.
    pub sim_latency: f64,
    /// Per-stage lifecycle deltas when both runs traced transactions
    /// (the `trace-diff` machinery over the two runs' trace sets);
    /// empty when tracing was off.
    pub trace_stages: Vec<StageDiff>,
    /// The collapsed fidelity score in `(0, 1]`; always finite.
    pub fidelity: f64,
}

/// Extracts the comparable shape of an in-memory report.
pub fn summarize(report: &Report) -> RunSummary {
    let mut phases = BTreeMap::new();
    for (name, h) in &report.telemetry.histograms {
        if !name.ends_with("_us") {
            continue;
        }
        if let Some((_, phase)) = phase_of(name) {
            phases.insert(name.clone(), (phase, h.count, h.quantile(0.50)));
        }
    }
    RunSummary {
        throughput: report.result.avg_throughput(),
        latency: report.result.avg_latency_secs(),
        phases,
    }
}

/// Extracts the comparable shape of a results JSON file (the
/// `live-diff` subcommand's input): the `stats` section plus the
/// summarized `telemetry.histograms`.
pub fn summarize_json(text: &str) -> Result<RunSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let stats = doc
        .get("stats")
        .ok_or("not a results file: no stats section")?;
    let number = |key: &str| stats.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mut summary = RunSummary {
        throughput: number("avgThroughput"),
        latency: number("avgLatency"),
        phases: BTreeMap::new(),
    };
    if let Some(Json::Object(histograms)) = doc
        .get("telemetry")
        .and_then(|t| t.get("histograms"))
    {
        for (name, h) in histograms {
            if !name.ends_with("_us") {
                continue;
            }
            if let Some((_, phase)) = phase_of(name) {
                let field = |key: &str| h.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                summary
                    .phases
                    .insert(name.clone(), (phase, field("count"), field("p50")));
            }
        }
    }
    Ok(summary)
}

/// The ε-guarded ratio of two nonnegative quantities: finite and
/// positive even when either side is zero.
fn guarded_ratio(live: f64, sim: f64, epsilon: f64) -> f64 {
    (live + epsilon) / (sim + epsilon)
}

/// Diffs a live run's summary against its simulation twin's.
pub fn diff(live: &RunSummary, sim: &RunSummary) -> LiveDiff {
    diff_with_traces(live, sim, Vec::new())
}

/// [`diff`], attaching per-stage trace deltas computed by the caller
/// (`tracediff::diff` over the two runs' trace sets).
pub fn diff_with_traces(
    live: &RunSummary,
    sim: &RunSummary,
    trace_stages: Vec<StageDiff>,
) -> LiveDiff {
    let mut phases = Vec::new();
    let mut log_errors: Vec<f64> = Vec::new();
    for (metric, &(phase, live_count, live_p50)) in &live.phases {
        let Some(&(_, sim_count, sim_p50)) = sim.phases.get(metric) else {
            continue; // live-only metrics (live.* keys) have no twin
        };
        // One µs of slack: empty or sub-µs histograms compare as equal
        // instead of blowing the ratio up.
        let ratio = guarded_ratio(live_p50 as f64, sim_p50 as f64, 1.0);
        log_errors.push(ratio.ln().abs());
        phases.push(PhaseDelta {
            phase,
            metric: metric.clone(),
            live_count,
            sim_count,
            live_p50_us: live_p50,
            sim_p50_us: sim_p50,
            ratio,
        });
    }
    // Phase order (mempool → consensus → execution → network → storage),
    // then metric name, matching the report's phase-breakdown table.
    phases.sort_by_key(|d| {
        (
            phase_of(&d.metric).map(|(rank, _)| rank).unwrap_or(usize::MAX),
            d.metric.clone(),
        )
    });

    let throughput_ratio = guarded_ratio(live.throughput, sim.throughput, 1e-3);
    let latency_ratio = guarded_ratio(live.latency, sim.latency, 1e-3);
    log_errors.push(throughput_ratio.ln().abs());
    log_errors.push(latency_ratio.ln().abs());
    let mean_log_error = log_errors.iter().sum::<f64>() / log_errors.len() as f64;
    let fidelity = (-mean_log_error).exp();

    LiveDiff {
        phases,
        live_throughput: live.throughput,
        sim_throughput: sim.throughput,
        live_latency: live.latency,
        sim_latency: sim.latency,
        trace_stages,
        fidelity: if fidelity.is_finite() { fidelity } else { 0.0 },
    }
}

/// Parses and diffs two results JSON files (the `live-diff`
/// subcommand).
pub fn diff_texts(live: &str, sim: &str) -> Result<LiveDiff, String> {
    Ok(diff(&summarize_json(live)?, &summarize_json(sim)?))
}

/// Renders a diff as the `live-diff` subcommand's report.
pub fn render(d: &LiveDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "live-diff: fidelity {:.4} (1.0 = the live run matches its simulation twin)",
        d.fidelity
    );
    let _ = writeln!(
        out,
        "throughput: live {:.1} tx/s vs sim {:.1} tx/s; \
         latency: live {:.2} s vs sim {:.2} s",
        d.live_throughput, d.sim_throughput, d.live_latency, d.sim_latency
    );
    if d.phases.is_empty() {
        let _ = writeln!(out, "(no per-phase telemetry in common)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<10} {:<34} {:>12} {:>12} {:>8}",
        "phase", "metric", "live p50", "sim p50", "ratio"
    );
    for p in &d.phases {
        let _ = writeln!(
            out,
            "{:<10} {:<34} {:>12} {:>12} {:>8.3}",
            p.phase, p.metric, p.live_p50_us, p.sim_p50_us, p.ratio
        );
    }
    if !d.trace_stages.is_empty() {
        let _ = writeln!(out, "per-stage lifecycle deltas (live − sim, aligned by tx id):");
        for s in &d.trace_stages {
            let _ = writeln!(
                out,
                "  {:<12} {:>8} txs  mean {:>+10.1} µs  p50 {:>+8} µs",
                s.stage, s.matched, s.mean_us, s.p50_us
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(entries: &[(&str, u64)], throughput: f64, latency: f64) -> RunSummary {
        let mut phases = BTreeMap::new();
        for &(name, p50) in entries {
            let (_, phase) = phase_of(name).expect("test metric must belong to a phase");
            phases.insert(name.to_string(), (phase, 10, p50));
        }
        RunSummary {
            throughput,
            latency,
            phases,
        }
    }

    #[test]
    fn identical_runs_score_perfect_fidelity() {
        let s = summary(
            &[("exec.sigverify_us", 800), ("consensus.ibft.round_us", 4_000)],
            100.0,
            1.5,
        );
        let d = diff(&s, &s);
        assert!((d.fidelity - 1.0).abs() < 1e-9, "{}", d.fidelity);
        assert_eq!(d.phases.len(), 2);
        assert!(d.phases.iter().all(|p| (p.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn disagreement_lowers_fidelity_symmetrically() {
        let sim = summary(&[("exec.sigverify_us", 1_000)], 100.0, 1.0);
        let fast = summary(&[("exec.sigverify_us", 500)], 100.0, 1.0);
        let slow = summary(&[("exec.sigverify_us", 2_000)], 100.0, 1.0);
        let d_fast = diff(&fast, &sim);
        let d_slow = diff(&slow, &sim);
        assert!(d_fast.fidelity < 1.0);
        // Half and double are the same size of error on the log scale.
        assert!((d_fast.fidelity - d_slow.fidelity).abs() < 1e-3);
    }

    #[test]
    fn fidelity_is_finite_even_with_nothing_in_common() {
        let d = diff(
            &RunSummary::default(),
            &summary(&[("mempool.admit_us", 50)], 10.0, 0.5),
        );
        assert!(d.fidelity.is_finite());
        assert!(d.fidelity > 0.0 && d.fidelity <= 1.0);
        assert!(d.phases.is_empty());
    }

    #[test]
    fn phases_sort_in_pipeline_order() {
        let s = summary(
            &[
                ("store.persist_us", 10),
                ("mempool.admit_us", 10),
                ("exec.block_us", 10),
            ],
            1.0,
            1.0,
        );
        let d = diff(&s, &s);
        let order: Vec<&str> = d.phases.iter().map(|p| p.phase).collect();
        assert_eq!(order, vec!["mempool", "execution", "storage"]);
    }

    #[test]
    fn json_roundtrip_matches_in_memory_summary() {
        let text = r#"{"chain":"Quorum","workload":"w","duration":10.0,
            "stats":{"sent":100,"committed":90,"commitRatio":0.9,
                     "avgThroughput":9.0,"avgLatency":1.25,
                     "medianLatency":1.0,"maxLatency":2.0},
            "txs":[],
            "telemetry":{"counters":{},"gauges":{},
                "histograms":{
                    "exec.sigverify_us":{"count":12,"sum":9600,"min":700,
                        "max":900,"p50":800,"p95":880,"p99":899},
                    "mempool.take_batch.txs":{"count":5,"sum":50,"min":10,
                        "max":10,"p50":10,"p95":10,"p99":10}},
                "spans":{}}}"#;
        let s = summarize_json(text).unwrap();
        assert_eq!(s.throughput, 9.0);
        assert_eq!(s.latency, 1.25);
        assert_eq!(
            s.phases.get("exec.sigverify_us"),
            Some(&("execution", 12, 800))
        );
        // Non-time histograms are excluded, like the phase breakdown.
        assert!(!s.phases.contains_key("mempool.take_batch.txs"));
    }

    #[test]
    fn render_mentions_fidelity_and_every_phase_row() {
        let sim = summary(&[("exec.sigverify_us", 1_000)], 100.0, 1.0);
        let live = summary(&[("exec.sigverify_us", 1_100)], 95.0, 1.1);
        let text = render(&diff(&live, &sim));
        assert!(text.contains("fidelity"), "{text}");
        assert!(text.contains("exec.sigverify_us"), "{text}");
        assert!(text.contains("throughput: live 95.0"), "{text}");
    }
}
