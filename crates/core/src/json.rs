//! A minimal JSON reader for Diablo result files.
//!
//! The workspace carries no JSON dependency: `crate::output` writes the
//! results format, and this module reads it back — enabling post-mortem
//! tooling (the `diablo compare` subcommand, regression checks against
//! archived runs) on nothing but the standard library. It parses the
//! complete JSON grammar except for exotic number forms beyond `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys; result files never rely on order).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value at an object key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte `{}`", *c as char))),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    raw.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| err(start, format!("bad number `{raw}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Consume one multi-byte UTF-8 scalar. Validate at most
                // 4 bytes — validating the whole remaining input here
                // made parsing quadratic on large single-line files.
                let chunk = &bytes[*pos..(*pos + 4).min(bytes.len())];
                let c = match std::str::from_utf8(chunk) {
                    Ok(s) => s.chars().next().expect("non-empty"),
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&chunk[..e.valid_up_to()])
                            .expect("validated prefix")
                            .chars()
                            .next()
                            .expect("non-empty")
                    }
                    Err(_) => return Err(err(*pos, "bad utf-8")),
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// The statistics block of a results file, read back.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultStats {
    /// Chain name.
    pub chain: String,
    /// Workload name.
    pub workload: String,
    /// Transactions sent.
    pub sent: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Average throughput, TPS.
    pub avg_throughput: f64,
    /// Average latency, seconds.
    pub avg_latency: f64,
    /// Reason the chain could not run, if any.
    pub unable: Option<String>,
}

/// Reads the stats block of a `results.json` produced by
/// [`crate::output::results_json`].
pub fn read_result_stats(text: &str) -> Result<ResultStats, JsonError> {
    let root = parse(text)?;
    let field = |k: &str| root.get(k).cloned().unwrap_or(Json::Null);
    let stats = field("stats");
    let num = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    Ok(ResultStats {
        chain: field("chain").as_str().unwrap_or("?").to_string(),
        workload: field("workload").as_str().unwrap_or("?").to_string(),
        sent: num("sent") as u64,
        committed: num("committed") as u64,
        avg_throughput: num("avgThroughput"),
        avg_latency: num("avgLatency"),
        unable: field("unable").as_str().map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Number(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::String("A".into()));
    }

    #[test]
    fn collections() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1], Json::Number(2.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn errors_have_positions() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn roundtrips_the_writer() {
        use diablo_chains::{Chain, RunResult, TxRecord, TxStatus};
        use diablo_sim::{SimDuration, SimTime};
        let submitted = SimTime::from_millis(100);
        let result = RunResult {
            chain: Chain::Algorand,
            workload: "native-10".into(),
            workload_secs: 30.0,
            records: vec![
                TxRecord {
                    submitted,
                    decided: Some(submitted + SimDuration::from_millis(530)),
                    status: TxStatus::Committed,
                },
                TxRecord {
                    submitted,
                    decided: None,
                    status: TxStatus::Pending,
                },
            ],
            unable_reason: None,
            blocks: Vec::new(),
            storage: None,
            trace: None,
        };
        let text = crate::output::results_json(&result);
        let stats = read_result_stats(&text).unwrap();
        assert_eq!(stats.chain, "Algorand");
        assert_eq!(stats.workload, "native-10");
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.committed, 1);
        assert!(stats.unable.is_none());
        // The full tx array parses too.
        let root = parse(&text).unwrap();
        assert_eq!(root.get("txs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn unable_results_roundtrip() {
        use diablo_chains::{Chain, RunResult};
        let r = RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into());
        let stats = read_result_stats(&crate::output::results_json(&r)).unwrap();
        assert_eq!(stats.unable.as_deref(), Some("budget exceeded"));
    }
}
