//! The Primary role (§4).
//!
//! The Primary coordinates an experiment: it parses the benchmark and
//! blockchain configuration, deploys the declared resources, dispatches
//! workload shares to the Secondaries, launches the benchmark,
//! aggregates per-transaction results and reports statistics.
//!
//! [`run_local`] executes the whole pipeline in-process, planning client
//! shares on parallel worker threads (the common path for the benchmark
//! harness); `crate::wire` adds the distributed Primary/Secondary mode
//! over TCP.

use diablo_chains::{ChainHarness, PlannedTx, RunConfig, RunOverlay};
use diablo_net::DeploymentKind;

use crate::adapters;
use crate::report::Report;
use crate::secondary::{declare_resources, plan_range};
use crate::spec::BenchmarkSpec;
use diablo_chains::Chain;

/// Options of a benchmark run.
///
/// The run knobs are a [`RunOverlay`]: the *invocation's* layer of the
/// configuration, applied on top of the spec's own sections (and the
/// defaults below them) by the one resolution rule,
/// `RunConfig::layered(&[&spec.overlay(), &options.run])`. An unset
/// field defers to the spec; a set field wins; faults are additive.
#[derive(Debug, Clone)]
pub struct BenchmarkOptions {
    /// The invocation's run settings (the CLI's flags land here).
    pub run: RunOverlay,
    /// Number of Secondaries to dispatch across.
    pub secondaries: usize,
}

impl Default for BenchmarkOptions {
    fn default() -> Self {
        BenchmarkOptions {
            run: RunOverlay::none(),
            secondaries: 2,
        }
    }
}

impl BenchmarkOptions {
    /// Resolves the effective configuration of a run under `spec`:
    /// `defaults ← spec ← this invocation`.
    pub fn resolve(&self, spec: &BenchmarkSpec) -> RunConfig {
        RunConfig::layered(&[&spec.overlay(), &self.run])
    }
}

/// Drops from `plan` every transaction a killed Secondary would have
/// submitted from its death on: Secondary `si` owns the client range
/// `ranges[si]`, and a dead worker submits nothing after its kill
/// instant. Returns the indices of the Secondaries that die.
pub(crate) fn apply_secondary_kills(
    faults: &diablo_chains::FaultPlan,
    ranges: &[(u32, u32)],
    plans: &mut [Vec<PlannedTx>],
) -> Vec<usize> {
    let mut lost = Vec::new();
    for (si, plan) in plans.iter_mut().enumerate().take(ranges.len()) {
        if let Some(at) = faults.kill_of_secondary(si) {
            let before = plan.len();
            plan.retain(|tx| tx.at < at);
            diablo_telemetry::counter!("secondary.killed_txs", (before - plan.len()) as u64);
            lost.push(si);
        }
    }
    lost
}

/// Splits `clients` into exactly `parts` contiguous ranges.
///
/// When there are fewer clients than parts, the trailing ranges are
/// empty — every Secondary still gets an assignment (and an empty plan)
/// rather than a refused connection.
pub(crate) fn partition_clients(clients: u32, parts: usize) -> Vec<(u32, u32)> {
    let parts = parts.max(1);
    let base = clients / parts as u32;
    let extra = clients % parts as u32;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts as u32 {
        let len = base + u32::from(p < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Runs a benchmark spec end-to-end against a simulated chain.
///
/// Returns the aggregated [`Report`]; chains unable to run the spec's
/// DApp produce a report whose result carries the reason (the X marks
/// of Figure 5).
pub fn run_local(
    chain: Chain,
    deployment: DeploymentKind,
    spec_text: &str,
    workload_name: &str,
    options: &BenchmarkOptions,
) -> Result<Report, String> {
    let setup = crate::setup::Setup {
        chain,
        config: diablo_net::DeploymentConfig::standard(deployment),
    };
    run_with_setup(&setup, spec_text, workload_name, options)
}

/// Runs a benchmark against an explicitly described deployment (the
/// paper's two-file invocation: setup + workload).
pub fn run_with_setup(
    setup: &crate::setup::Setup,
    spec_text: &str,
    workload_name: &str,
    options: &BenchmarkOptions,
) -> Result<Report, String> {
    let chain = setup.chain;
    let spec = BenchmarkSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let clients = spec.client_count();

    // One telemetry scope per run: the report's snapshot covers exactly
    // this benchmark, and consecutive runs in one process don't bleed
    // into each other.
    diablo_telemetry::reset();

    // Validate resources once on a scratch connector; this also resolves
    // the DApp the simulated backend will deploy.
    let mut scratch = adapters::connector(chain);
    declare_resources(&spec, &mut scratch).map_err(|e| e.to_string())?;
    let dapp = scratch.sole_dapp();
    if dapp.is_none() && scratch.contract_count() > 1 {
        return Err("the simulated backend deploys one DApp per benchmark".to_string());
    }

    // Dispatch planning to the Secondaries (worker threads).
    let ranges = partition_clients(clients, options.secondaries);
    let plans: Vec<Result<Vec<PlannedTx>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&range| {
                let spec = &spec;
                scope.spawn(move || {
                    let mut conn = adapters::connector(chain);
                    declare_resources(spec, &mut conn).map_err(|e| e.to_string())?;
                    plan_range(spec, range, &mut conn).map_err(|e| e.to_string())?;
                    Ok(conn.take_plan())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("planner thread panicked"))
            .collect()
    });
    let mut plans: Vec<Vec<PlannedTx>> = plans.into_iter().collect::<Result<_, _>>()?;

    // The one layered resolution: defaults ← the spec's sections ← the
    // invocation's overlay (CLI flags). The fault schedule is additive
    // — the CLI's chaos flags pile onto the spec's `fault:` section —
    // and every other knob is won by the topmost layer that sets it.
    let run = options.resolve(&spec);
    let faults = run.faults.clone();
    let lost_secondaries = apply_secondary_kills(&faults, &ranges, &mut plans);

    let mut merged: Vec<PlannedTx> = plans.into_iter().flatten().collect();
    merged.sort_by_key(|t| t.at);

    let secondaries = ranges.len();
    let result = match ChainHarness::with_config(chain, setup.config.clone(), dapp, run) {
        Ok(harness) => harness.run(merged, workload_name, spec.duration_secs() as f64),
        Err(reason) => diablo_chains::RunResult::unable(
            chain,
            workload_name,
            spec.duration_secs() as f64,
            reason,
        ),
    };
    Ok(Report {
        result,
        secondaries,
        clients,
        telemetry: diablo_telemetry::snapshot(),
        faults,
        lost_secondaries,
        live_diff: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_TRANSFER_SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 200 } }
workloads:
  - number: 4
    client:
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: *acc
          load:
            0: 50
            20: 0
"#;

    #[test]
    fn partitioning_covers_all_clients() {
        assert_eq!(partition_clients(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        // Fewer clients than parts: trailing assignments are empty, but
        // every Secondary gets one.
        assert_eq!(
            partition_clients(2, 5),
            vec![(0, 1), (1, 2), (2, 2), (2, 2), (2, 2)]
        );
        assert_eq!(partition_clients(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
    }

    #[test]
    fn local_run_produces_a_report() {
        let report = run_local(
            Chain::Quorum,
            DeploymentKind::Testnet,
            SMALL_TRANSFER_SPEC,
            "native-200",
            &BenchmarkOptions::default(),
        )
        .unwrap();
        assert!(report.able());
        // 4 clients × 50 TPS × 20 s.
        assert_eq!(report.result.submitted(), 4 * 50 * 20);
        assert!(
            report.result.commit_ratio() > 0.9,
            "{}",
            report.result.summary()
        );
        assert_eq!(report.clients, 4);
        assert_eq!(report.secondaries, 2);
    }

    #[test]
    fn secondary_count_does_not_change_the_load() {
        let mut totals = Vec::new();
        for secondaries in [1, 2, 4] {
            let report = run_local(
                Chain::Diem,
                DeploymentKind::Testnet,
                SMALL_TRANSFER_SPEC,
                "native-200",
                &BenchmarkOptions {
                    secondaries,
                    ..Default::default()
                },
            )
            .unwrap();
            totals.push(report.result.submitted());
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }

    #[test]
    fn dota_spec_on_unable_chain_reports_reason() {
        // The paper's dota spec invokes a DApp every chain *can* run;
        // use the uber contract instead to exercise the unable path.
        let spec = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !invoke
            from: { sample: !account { number: 10 } }
            contract: { sample: !contract { name: "uber" } }
            function: "checkDistance(1, 1)"
          load:
            0: 5
            5: 0
"#;
        let report = run_local(
            Chain::Solana,
            DeploymentKind::Testnet,
            spec,
            "uber-tiny",
            &BenchmarkOptions::default(),
        )
        .unwrap();
        assert!(!report.able());
        assert!(report
            .result
            .unable_reason
            .as_deref()
            .unwrap()
            .contains("budget exceeded"));
    }

    #[test]
    fn spec_function_selection_reaches_the_chain() {
        // Single-stock NASDAQ stream: every transaction buys Apple.
        let spec = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !invoke
            from: { sample: !account { number: 50 } }
            contract: { sample: !contract { name: "nasdaq" } }
            function: "buyApple"
          load:
            0: 50
            10: 0
"#;
        let report = run_local(
            Chain::Quorum,
            DeploymentKind::Testnet,
            spec,
            "apple-only",
            &BenchmarkOptions {
                run: RunOverlay {
                    exec_mode: Some(diablo_chains::ExecMode::Exact),
                    ..RunOverlay::none()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.able());
        assert!(
            report.result.commit_ratio() > 0.9,
            "{}",
            report.result.summary()
        );
    }

    #[test]
    fn unknown_function_is_rejected_at_encode_time() {
        let spec = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !invoke
            from: { sample: !account { number: 10 } }
            contract: { sample: !contract { name: "dota" } }
            function: "teleport(9)"
          load:
            0: 5
            5: 0
"#;
        let err = run_local(
            Chain::Quorum,
            DeploymentKind::Testnet,
            spec,
            "bad-fn",
            &BenchmarkOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("no function `teleport`"), "{err}");
    }

    #[test]
    fn bad_spec_is_an_error() {
        let err = run_local(
            Chain::Quorum,
            DeploymentKind::Testnet,
            "nonsense: true\n",
            "x",
            &BenchmarkOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("workloads"));
    }
}
