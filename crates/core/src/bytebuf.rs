//! In-tree byte buffer and cursor for the wire protocol.
//!
//! [`ByteBuf`] is an append-only little-endian encoder over a `Vec<u8>`;
//! [`ByteReader`] is the matching bounds-checked decoder over a byte
//! slice. Together they replace the external `bytes` crate for the
//! framing in [`crate::wire`], keeping the workspace free of external
//! dependencies. Every read is fallible — a truncated frame yields an
//! `Err`, never a panic — which the wire fuzz properties rely on.

use std::ops::Deref;

/// A growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        ByteBuf::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteBuf {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    pub fn put_i32_le(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Overwrites 4 already-written bytes at `offset` with a
    /// little-endian `u32` — patches a length prefix reserved before the
    /// body was encoded, so framing needs no second buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `offset + 4` bytes have been written.
    pub fn set_u32_le(&mut self, offset: usize, v: u32) {
        self.data[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for ByteBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A bounds-checked cursor over a byte slice with little-endian get
/// methods. Every accessor returns `Err` on underflow.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wraps a slice for reading.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() < n {
            return Err(format!(
                "truncated frame: wanted {n} bytes, {} remain",
                self.data.len()
            ));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32_le(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = ByteBuf::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i32_le(-42);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 1 + 4 + 8 + 4 + 3);

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i32_le().unwrap(), -42);
        assert_eq!(r.take(3).unwrap(), b"abc");
        assert!(r.is_empty());
    }

    #[test]
    fn reads_fail_cleanly_on_underflow() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32_le().is_err());
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u8().unwrap(), 2);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn set_patches_in_place() {
        let mut buf = ByteBuf::new();
        buf.put_u32_le(0); // reserved length prefix
        buf.put_slice(b"body");
        buf.set_u32_le(0, buf.len() as u32 - 4);
        assert_eq!(buf.as_slice(), &[4, 0, 0, 0, b'b', b'o', b'd', b'y']);
    }

    #[test]
    fn endianness_is_little() {
        let mut buf = ByteBuf::new();
        buf.put_u32_le(1);
        assert_eq!(buf.as_slice(), &[1, 0, 0, 0]);
    }
}
