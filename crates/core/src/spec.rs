//! The Diablo benchmark specification (§4, "Workload specification").
//!
//! A benchmark configuration declares *resources* (accounts, contracts),
//! *clients* (how many, where, which endpoints they see) and *behaviors*
//! (which interaction each client issues, at which rate over time). The
//! on-disk format is the paper's YAML dialect; [`BenchmarkSpec::parse`]
//! resolves it into typed form.

use std::fmt;

use diablo_chains::{Concurrency, FaultPlan, PruneMode, RunOverlay, SigVerify, StorageConfig};
use diablo_workloads::Workload;

use crate::yaml::{self, Value};

/// A parsed benchmark specification.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// The workload groups (the `workloads:` list).
    pub workloads: Vec<WorkloadGroup>,
    /// Faults injected during the run (the optional `fault:` section;
    /// empty when absent).
    pub fault: FaultPlan,
    /// Block-commit concurrency requested by the optional `execution:`
    /// section (`None` when absent; the CLI's `--threads`/`--optimistic`
    /// flags override it — see `run_with_setup`).
    pub execution: Option<Concurrency>,
    /// Signature-verification cost curve requested by the optional
    /// `sigverify:` section (`None` when absent = the chain's standard
    /// curve; an explicit `BenchmarkOptions::sig_verify` overrides it).
    pub sig_verify: Option<SigVerify>,
    /// Append-only state store requested by the optional `storage:`
    /// section (`None` when absent = the staged commit pipeline is off;
    /// an explicit `BenchmarkOptions::storage` overrides it).
    pub storage: Option<StorageConfig>,
}

/// One entry of the `workloads:` list: `number` identical clients.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGroup {
    /// Number of clients (worker threads) with this behavior.
    pub number: u32,
    /// Location patterns restricting where the clients run
    /// (AWS zone tags, e.g. `us-east-2`; empty = anywhere).
    pub location: Vec<String>,
    /// Endpoint patterns the clients may submit to (regex-ish strings;
    /// `.*` = all nodes).
    pub view: Vec<String>,
    /// The behaviors each client executes.
    pub behaviors: Vec<Behavior>,
}

/// One `interaction` + `load` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Behavior {
    /// What each transaction does.
    pub interaction: InteractionSpec,
    /// Piecewise-constant load `(start_second, tps)`, terminated by a
    /// breakpoint with rate 0 that marks the end of the behavior.
    pub load: Vec<(u64, f64)>,
}

/// The interaction a behavior issues (the paper's `transfer_X` and
/// `invoke_D_Xs` interaction types).
#[derive(Debug, Clone, PartialEq)]
pub enum InteractionSpec {
    /// Native transfers between accounts of the declared pool.
    Transfer {
        /// Size of the signing account pool.
        accounts: u32,
        /// Coins moved per transfer.
        amount: u64,
    },
    /// DApp invocations.
    Invoke {
        /// Size of the signing account pool.
        accounts: u32,
        /// The contract name (a DApp name, e.g. `dota`).
        contract: String,
        /// Function name parsed from `"update(1, 1)"`.
        function: String,
        /// Literal arguments parsed from the call string.
        args: Vec<i64>,
    },
}

/// A specification error.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "benchmark specification: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<yaml::ParseError> for SpecError {
    fn from(e: yaml::ParseError) -> Self {
        SpecError(format!("{e}"))
    }
}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

impl BenchmarkSpec {
    /// The spec's contribution to the layered run configuration: its
    /// `fault:`, `execution:`, `sigverify:` and `storage:` sections as
    /// one overlay — the middle layer of `defaults ← spec ← CLI`.
    pub fn overlay(&self) -> RunOverlay {
        RunOverlay {
            concurrency: self.execution,
            faults: self.fault.clone(),
            sig_verify: self.sig_verify,
            storage: self.storage,
            ..RunOverlay::none()
        }
    }

    /// Parses a benchmark configuration file.
    pub fn parse(text: &str) -> Result<BenchmarkSpec, SpecError> {
        let root = yaml::parse(text)?;
        let workloads = root
            .get("workloads")
            .ok_or_else(|| err("missing `workloads` section"))?
            .as_list()
            .ok_or_else(|| err("`workloads` must be a list"))?;
        let workloads = workloads
            .iter()
            .map(parse_group)
            .collect::<Result<Vec<_>, _>>()?;
        if workloads.is_empty() {
            return Err(err("`workloads` is empty"));
        }
        let fault = match root.get("fault") {
            Some(section) => parse_faults(section)?,
            None => FaultPlan::none(),
        };
        let execution = match root.get("execution") {
            Some(section) => Some(parse_execution(section)?),
            None => None,
        };
        let sig_verify = match root.get("sigverify") {
            Some(section) => Some(parse_sigverify(section)?),
            None => None,
        };
        let storage = match root.get("storage") {
            Some(section) => Some(parse_storage(section)?),
            None => None,
        };
        Ok(BenchmarkSpec {
            workloads,
            fault,
            execution,
            sig_verify,
            storage,
        })
    }

    /// Total number of clients across all groups.
    pub fn client_count(&self) -> u32 {
        self.workloads.iter().map(|w| w.number).sum()
    }

    /// The experiment duration: the latest load end over all behaviors.
    pub fn duration_secs(&self) -> u64 {
        self.workloads
            .iter()
            .flat_map(|w| &w.behaviors)
            .filter_map(|b| b.load.last().map(|&(t, _)| t))
            .max()
            .unwrap_or(0)
    }

    /// Expected total submitted transactions across all clients.
    pub fn total_txs(&self) -> u64 {
        self.workloads
            .iter()
            .flat_map(|w| w.behaviors.iter().map(move |b| (w.number, b)))
            .map(|(n, b)| n as u64 * b.to_workload("").total_txs())
            .sum()
    }
}

impl Behavior {
    /// Converts the load curve into a per-client workload.
    ///
    /// # Panics
    ///
    /// Panics if the load list is malformed (validated at parse time).
    pub fn to_workload(&self, name: &str) -> Workload {
        let (end, _) = *self.load.last().expect("validated non-empty");
        let points = self.load[..self.load.len() - 1].to_vec();
        Workload::piecewise(name, &points, end)
    }
}

fn parse_group(v: &Value) -> Result<WorkloadGroup, SpecError> {
    let number = v
        .get("number")
        .and_then(Value::as_u64)
        .ok_or_else(|| err("workload needs a `number` of clients"))? as u32;
    if number == 0 {
        return Err(err("workload `number` must be positive"));
    }
    let client = v
        .get("client")
        .ok_or_else(|| err("workload needs a `client` section"))?;
    let location = parse_sample_strings(client.get("location"), "location")?;
    let view = parse_sample_strings(client.get("view"), "endpoint")?;
    let behaviors = client
        .get("behavior")
        .ok_or_else(|| err("client needs a `behavior` list"))?
        .as_list()
        .ok_or_else(|| err("`behavior` must be a list"))?
        .iter()
        .map(parse_behavior)
        .collect::<Result<Vec<_>, _>>()?;
    if behaviors.is_empty() {
        return Err(err("`behavior` is empty"));
    }
    Ok(WorkloadGroup {
        number,
        location,
        view,
        behaviors,
    })
}

/// Parses `{ sample: !location [ "us-east-2" ] }`-style declarations.
fn parse_sample_strings(v: Option<&Value>, expected_tag: &str) -> Result<Vec<String>, SpecError> {
    let Some(v) = v else { return Ok(Vec::new()) };
    let sample = v.get("sample").unwrap_or(v);
    let (tag, inner) = sample
        .tagged()
        .ok_or_else(|| err(format!("expected a !{expected_tag} sample")))?;
    if tag != expected_tag {
        return Err(err(format!("expected tag !{expected_tag}, found !{tag}")));
    }
    let items = inner
        .as_list()
        .ok_or_else(|| err(format!("!{expected_tag} takes a list")))?;
    items
        .iter()
        .map(|i| {
            i.as_str()
                .map(str::to_string)
                .ok_or_else(|| err("sample items must be strings"))
        })
        .collect()
}

/// Parses an `!account { number: N }` sample into the pool size.
fn parse_accounts(v: Option<&Value>) -> Result<u32, SpecError> {
    let Some(v) = v else {
        return Ok(crate::DEFAULT_ACCOUNTS);
    };
    let sample = v.get("sample").unwrap_or(v);
    let (tag, inner) = sample
        .tagged()
        .ok_or_else(|| err("expected an !account sample"))?;
    if tag != "account" {
        return Err(err(format!("expected tag !account, found !{tag}")));
    }
    inner
        .get("number")
        .and_then(Value::as_u64)
        .map(|n| n as u32)
        .ok_or_else(|| err("!account needs a `number`"))
}

/// Parses a `!contract { name: "dota" }` sample into the contract name.
fn parse_contract(v: Option<&Value>) -> Result<String, SpecError> {
    let v = v.ok_or_else(|| err("!invoke needs a `contract`"))?;
    let sample = v.get("sample").unwrap_or(v);
    let (tag, inner) = sample
        .tagged()
        .ok_or_else(|| err("expected a !contract sample"))?;
    if tag != "contract" {
        return Err(err(format!("expected tag !contract, found !{tag}")));
    }
    inner
        .get("name")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| err("!contract needs a `name`"))
}

fn parse_behavior(v: &Value) -> Result<Behavior, SpecError> {
    let (tag, inner) = v
        .get("interaction")
        .ok_or_else(|| err("behavior needs an `interaction`"))?
        .tagged()
        .ok_or_else(|| err("interaction must be tagged (!invoke or !transfer)"))?;
    let interaction = match tag {
        "invoke" => {
            let accounts = parse_accounts(inner.get("from"))?;
            let contract = parse_contract(inner.get("contract"))?;
            let call = inner
                .get("function")
                .and_then(Value::as_str)
                .ok_or_else(|| err("!invoke needs a `function`"))?;
            let (function, args) = parse_call(call)?;
            InteractionSpec::Invoke {
                accounts,
                contract,
                function,
                args,
            }
        }
        "transfer" => {
            let accounts = parse_accounts(inner.get("from"))?;
            let amount = inner.get("amount").and_then(Value::as_u64).unwrap_or(1);
            InteractionSpec::Transfer { accounts, amount }
        }
        other => return Err(err(format!("unknown interaction type !{other}"))),
    };
    let load_map = v
        .get("load")
        .ok_or_else(|| err("behavior needs a `load`"))?
        .as_map()
        .ok_or_else(|| err("`load` must map seconds to rates"))?;
    let mut load = Vec::with_capacity(load_map.len());
    for (k, rate) in load_map {
        let t: u64 = k.parse().map_err(|_| err(format!("bad load time `{k}`")))?;
        let r = rate
            .as_f64()
            .ok_or_else(|| err(format!("bad load rate for `{k}`")))?;
        if r < 0.0 {
            return Err(err("load rates must be non-negative"));
        }
        load.push((t, r));
    }
    if load.len() < 2 {
        return Err(err("load needs at least a start and an end breakpoint"));
    }
    if !load.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(err("load times must increase"));
    }
    if load[0].0 != 0 {
        return Err(err("load must start at second 0"));
    }
    if load.last().expect("non-empty").1 != 0.0 {
        return Err(err("load must end with a `t: 0` breakpoint"));
    }
    Ok(Behavior { interaction, load })
}

/// Parses the `fault:` section: each key is a directive kind (`crash`,
/// `partition`, `loss`, `corrupt`, `slowdown`, `kill-secondary`,
/// `retry`), each value one directive string or a list of them (see
/// `diablo_chains::chaos` for the grammar):
///
/// ```yaml
/// fault:
///   crash: "3@30..60"
///   partition: "0-6/7-9@70..100"
///   loss: [ "5%@10..40", "10%@50..60,link=0-3" ]
///   retry: "3x500/10000"
/// ```
fn parse_faults(section: &Value) -> Result<FaultPlan, SpecError> {
    let map = section
        .as_map()
        .ok_or_else(|| err("`fault` must map directive kinds to directives"))?;
    let mut builder = FaultPlan::builder();
    for (key, value) in map {
        let directives: Vec<&str> = match value.as_list() {
            Some(items) => items
                .iter()
                .map(|i| i.as_str().ok_or_else(|| err("fault directives must be strings")))
                .collect::<Result<_, _>>()?,
            None => vec![value
                .as_str()
                .ok_or_else(|| err("fault directives must be strings"))?],
        };
        for directive in directives {
            builder =
                diablo_chains::chaos::apply_directive(builder, key, directive).map_err(err)?;
        }
    }
    Ok(builder.build())
}

/// Parses the `execution:` section: how the simulated chain executes
/// committed blocks. Both keys are optional; mode names follow
/// [`Concurrency::from_mode`] and `threads` defaults to 4 for the
/// parallel modes:
///
/// ```yaml
/// execution:
///   mode: optimistic   # serial | parallel | optimistic
///   threads: 8
/// ```
fn parse_execution(section: &Value) -> Result<Concurrency, SpecError> {
    let map = section
        .as_map()
        .ok_or_else(|| err("`execution` must be a map of `mode` and `threads`"))?;
    for (key, _) in map {
        if key != "mode" && key != "threads" {
            return Err(err(format!("unknown `execution` key `{key}`")));
        }
    }
    let threads = match section.get("threads") {
        Some(v) => v
            .as_u64()
            .filter(|&n| n >= 1)
            .ok_or_else(|| err("`execution.threads` must be a positive integer"))?
            as usize,
        None => 4,
    };
    let mode = match section.get("mode") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| err("`execution.mode` must be a string"))?,
        None => "parallel",
    };
    Concurrency::from_mode(mode, threads)
        .ok_or_else(|| err(format!("unknown `execution.mode` `{mode}`")))
}

/// Parses the `sigverify:` section: the batched signature-verification
/// cost curve applied in place of the chain's standard one. `per_tx_us`
/// is required (`0` disables verification modeling); the batching keys
/// are optional and default to no amortization:
///
/// ```yaml
/// sigverify:
///   per_tx_us: 55      # single-signature cost, µs per core pool
///   batch_fixed_us: 30 # per-block fixed cost
///   batch_knee: 128    # batch size reaching half the max speedup
///   max_speedup: 2.0   # asymptotic amortization factor
/// ```
fn parse_sigverify(section: &Value) -> Result<SigVerify, SpecError> {
    let map = section
        .as_map()
        .ok_or_else(|| err("`sigverify` must be a map of cost-curve keys"))?;
    for (key, _) in map {
        if !matches!(
            key.as_str(),
            "per_tx_us" | "batch_fixed_us" | "batch_knee" | "max_speedup"
        ) {
            return Err(err(format!("unknown `sigverify` key `{key}`")));
        }
    }
    let field = |key: &str, default: f64| -> Result<f64, SpecError> {
        match section.get(key) {
            Some(v) => v
                .as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| err(format!("`sigverify.{key}` must be a non-negative number"))),
            None => Ok(default),
        }
    };
    let per_tx_us = match section.get("per_tx_us") {
        Some(_) => field("per_tx_us", 0.0)?,
        None => return Err(err("`sigverify` needs a `per_tx_us`")),
    };
    let max_speedup = field("max_speedup", 1.0)?;
    if max_speedup < 1.0 {
        return Err(err("`sigverify.max_speedup` must be at least 1"));
    }
    Ok(SigVerify {
        per_tx_us,
        batch_fixed_us: field("batch_fixed_us", 0.0)?,
        batch_knee: field("batch_knee", 1.0)?,
        max_speedup,
    })
}

/// Parses the `storage:` section: the staged commit pipeline's
/// append-only state store. All keys are optional; prune modes follow
/// [`PruneMode::parse`] (`full`, `distance=N`, `before=N`):
///
/// ```yaml
/// storage:
///   prune: distance=128  # full | distance=N | before=N
///   segment_blocks: 64   # blocks per static-file segment
///   hot_pages: 64        # decoded-page cap of the flat tables
/// ```
fn parse_storage(section: &Value) -> Result<StorageConfig, SpecError> {
    let map = section
        .as_map()
        .ok_or_else(|| err("`storage` must be a map of store keys"))?;
    for (key, _) in map {
        if !matches!(key.as_str(), "prune" | "segment_blocks" | "hot_pages") {
            return Err(err(format!("unknown `storage` key `{key}`")));
        }
    }
    let defaults = StorageConfig::default();
    let prune = match section.get("prune") {
        Some(v) => {
            let text = v
                .as_str()
                .ok_or_else(|| err("`storage.prune` must be a string"))?;
            PruneMode::parse(text).map_err(|e| err(format!("bad `storage.prune` mode: {e}")))?
        }
        None => defaults.prune,
    };
    let segment_blocks = match section.get("segment_blocks") {
        Some(v) => v
            .as_u64()
            .filter(|&n| n >= 1)
            .ok_or_else(|| err("`storage.segment_blocks` must be a positive integer"))?,
        None => defaults.segment_blocks,
    };
    let hot_pages = match section.get("hot_pages") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| err("`storage.hot_pages` must be a non-negative integer"))?
            as usize,
        None => defaults.hot_pages,
    };
    Ok(StorageConfig {
        prune,
        segment_blocks,
        hot_pages,
    })
}

/// Parses `"update(1, 1)"` into `("update", [1, 1])`.
fn parse_call(call: &str) -> Result<(String, Vec<i64>), SpecError> {
    let call = call.trim();
    let Some(open) = call.find('(') else {
        return Ok((call.to_string(), Vec::new()));
    };
    if !call.ends_with(')') {
        return Err(err(format!("unbalanced call `{call}`")));
    }
    let name = call[..open].trim().to_string();
    if name.is_empty() {
        return Err(err(format!("missing function name in `{call}`")));
    }
    let inside = call[open + 1..call.len() - 1].trim();
    if inside.is_empty() {
        return Ok((name, Vec::new()));
    }
    let args = inside
        .split(',')
        .map(|a| {
            a.trim()
                .parse::<i64>()
                .map_err(|_| err(format!("bad argument `{a}`")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((name, args))
}

/// The paper's gaming-DApp configuration from §4, usable as a template.
pub const PAPER_DOTA_SPEC: &str = r#"
let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_parses() {
        let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap();
        assert_eq!(spec.client_count(), 3);
        assert_eq!(spec.duration_secs(), 120);
        let group = &spec.workloads[0];
        assert_eq!(group.location, vec!["us-east-2"]);
        assert_eq!(group.view, vec![".*"]);
        let behavior = &group.behaviors[0];
        match &behavior.interaction {
            InteractionSpec::Invoke {
                accounts,
                contract,
                function,
                args,
            } => {
                assert_eq!(*accounts, 2000);
                assert_eq!(contract, "dota");
                assert_eq!(function, "update");
                assert_eq!(args, &vec![1, 1]);
            }
            other => panic!("wrong interaction {other:?}"),
        }
        assert_eq!(behavior.load, vec![(0, 4432.0), (50, 4438.0), (120, 0.0)]);
    }

    #[test]
    fn paper_spec_load_matches_section4_text() {
        // "each client sends 4432 TPS for the first 50 seconds then 4438
        // TPS for the next 70 seconds, after which the benchmark ends."
        let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap();
        let w = spec.workloads[0].behaviors[0].to_workload("dota-client");
        assert_eq!(w.duration_secs(), 120);
        assert_eq!(w.rate_at(0), 4432.0);
        assert_eq!(w.rate_at(119), 4438.0);
        assert_eq!(w.total_txs(), 4432 * 50 + 4438 * 70);
        assert_eq!(spec.total_txs(), 3 * (4432 * 50 + 4438 * 70));
    }

    #[test]
    fn transfer_spec() {
        let text = r#"
workloads:
  - number: 2
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 100 } }
            amount: 5
          load:
            0: 500
            120: 0
"#;
        let spec = BenchmarkSpec::parse(text).unwrap();
        match &spec.workloads[0].behaviors[0].interaction {
            InteractionSpec::Transfer { accounts, amount } => {
                assert_eq!(*accounts, 100);
                assert_eq!(*amount, 5);
            }
            other => panic!("wrong interaction {other:?}"),
        }
    }

    #[test]
    fn call_parsing() {
        assert_eq!(
            parse_call("update(1, 1)").unwrap(),
            ("update".into(), vec![1, 1])
        );
        assert_eq!(parse_call("add()").unwrap(), ("add".into(), vec![]));
        assert_eq!(
            parse_call("checkStock").unwrap(),
            ("checkStock".into(), vec![])
        );
        assert_eq!(
            parse_call("checkDistance(4000, 7000)").unwrap(),
            ("checkDistance".into(), vec![4000, 7000])
        );
        assert!(parse_call("broken(1").is_err());
        assert!(parse_call("f(x)").is_err());
    }

    #[test]
    fn load_validation() {
        let bad_end = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 100
            60: 50
"#;
        let e = BenchmarkSpec::parse(bad_end).unwrap_err();
        assert!(e.0.contains("end with"), "{e}");

        let bad_order = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 100
            50: 60
            40: 0
"#;
        let e = BenchmarkSpec::parse(bad_order).unwrap_err();
        assert!(e.0.contains("increase"), "{e}");
    }

    #[test]
    fn missing_sections_error() {
        assert!(BenchmarkSpec::parse("other: 1\n").is_err());
        let e = BenchmarkSpec::parse("workloads:\n  - number: 1\n").unwrap_err();
        assert!(e.0.contains("client"), "{e}");
    }

    #[test]
    fn fault_section_parses() {
        use diablo_sim::SimTime;
        let text = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 10
            60: 0
fault:
  crash: "3@30..50"
  partition: "0-6/7-9@10..20"
  loss: [ "5%@10..40" ]
  retry: "3x500/10000"
"#;
        let spec = BenchmarkSpec::parse(text).unwrap();
        let t = SimTime::from_secs;
        let expected = FaultPlan::builder()
            .crash_many(3, t(30))
            .recover_many(3, t(50))
            .partition(&[0, 1, 2, 3, 4, 5, 6], &[7, 8, 9], t(10), t(20))
            .loss(0.05, t(10), t(40))
            .retry(diablo_chains::RetryPolicy::default())
            .build();
        assert_eq!(spec.fault, expected);
        // Absent section means no faults.
        assert!(BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap().fault.is_empty());
        // Malformed directives surface as spec errors.
        let bad = text.replace("3@30..50", "what");
        let e = BenchmarkSpec::parse(&bad).unwrap_err();
        assert!(e.0.contains("fault directive"), "{e}");
    }

    #[test]
    fn execution_section_parses() {
        let base = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 10
            60: 0
"#;
        // Absent section → no override.
        assert_eq!(BenchmarkSpec::parse(base).unwrap().execution, None);

        let with = |section: &str| format!("{base}execution:\n{section}");
        let parse = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap().execution;
        assert_eq!(
            parse("  mode: optimistic\n  threads: 8\n"),
            Some(Concurrency::Optimistic(8))
        );
        assert_eq!(parse("  mode: serial\n"), Some(Concurrency::Serial));
        // `threads` alone implies the static parallel scheduler; `mode`
        // alone defaults to 4 workers.
        assert_eq!(parse("  threads: 2\n"), Some(Concurrency::Parallel(2)));
        assert_eq!(
            parse("  mode: optimistic\n"),
            Some(Concurrency::Optimistic(4))
        );

        let bad = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap_err();
        assert!(bad("  mode: speculative\n").0.contains("execution.mode"));
        assert!(bad("  threads: 0\n").0.contains("threads"));
        assert!(bad("  workers: 3\n").0.contains("unknown `execution` key"));
    }

    #[test]
    fn sigverify_section_parses() {
        let base = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 10
            60: 0
"#;
        // Absent section → chain's standard curve.
        assert_eq!(BenchmarkSpec::parse(base).unwrap().sig_verify, None);

        let with = |section: &str| format!("{base}sigverify:\n{section}");
        let parse = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap().sig_verify;
        assert_eq!(
            parse("  per_tx_us: 55\n  batch_fixed_us: 30\n  batch_knee: 128\n  max_speedup: 2.0\n"),
            Some(SigVerify {
                per_tx_us: 55.0,
                batch_fixed_us: 30.0,
                batch_knee: 128.0,
                max_speedup: 2.0,
            })
        );
        // Batching keys default to no amortization; `per_tx_us: 0`
        // disables verification modeling outright.
        assert_eq!(
            parse("  per_tx_us: 85\n"),
            Some(SigVerify {
                per_tx_us: 85.0,
                batch_fixed_us: 0.0,
                batch_knee: 1.0,
                max_speedup: 1.0,
            })
        );
        assert_eq!(parse("  per_tx_us: 0\n"), Some(SigVerify::DISABLED));

        let bad = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap_err();
        assert!(bad("  batch_knee: 4\n").0.contains("per_tx_us"));
        assert!(bad("  per_tx_us: -3\n").0.contains("non-negative"));
        assert!(bad("  per_tx_us: 55\n  max_speedup: 0.5\n").0.contains("at least 1"));
        assert!(bad("  per_tx_us: 55\n  knee: 4\n").0.contains("unknown `sigverify` key"));
    }

    #[test]
    fn storage_section_parses() {
        let base = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 10
            60: 0
"#;
        // Absent section → the staged commit pipeline stays off.
        assert_eq!(BenchmarkSpec::parse(base).unwrap().storage, None);

        let with = |section: &str| format!("{base}storage:\n{section}");
        let parse = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap().storage;
        assert_eq!(
            parse("  prune: distance=128\n  segment_blocks: 8\n  hot_pages: 16\n"),
            Some(StorageConfig {
                prune: PruneMode::Distance(128),
                segment_blocks: 8,
                hot_pages: 16,
            })
        );
        // Keys default from `StorageConfig::default()`; an empty map
        // turns the store on with the archive configuration.
        assert_eq!(parse("  prune: before=40\n"), Some(StorageConfig {
            prune: PruneMode::Before(40),
            ..StorageConfig::default()
        }));
        assert_eq!(parse("  hot_pages: 0\n"), Some(StorageConfig {
            hot_pages: 0,
            ..StorageConfig::default()
        }));

        let bad = |section: &str| BenchmarkSpec::parse(&with(section)).unwrap_err();
        assert!(bad("  prune: sometimes\n").0.contains("storage.prune"));
        assert!(bad("  segment_blocks: 0\n").0.contains("segment_blocks"));
        assert!(bad("  pages: 3\n").0.contains("unknown `storage` key"));
    }

    #[test]
    fn unknown_interaction_errors() {
        let text = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !teleport
            from: { sample: !account { number: 10 } }
          load:
            0: 10
            10: 0
"#;
        let e = BenchmarkSpec::parse(text).unwrap_err();
        assert!(e.0.contains("unknown interaction"), "{e}");
    }
}
