//! Benchmark reports: the aggregation the Primary performs (§4).

use std::fmt::Write as _;

use diablo_chains::{FaultPlan, RunResult, TxStatus};
use diablo_sim::{SimTime, Summary};
use diablo_telemetry::TelemetrySnapshot;

/// The aggregated outcome of one benchmark run.
#[derive(Debug)]
pub struct Report {
    /// The underlying per-transaction results.
    pub result: RunResult,
    /// How many Secondaries produced the load.
    pub secondaries: usize,
    /// How many clients (worker threads) were emulated.
    pub clients: u32,
    /// The merged telemetry snapshot of the run: the Primary's own
    /// recorder plus every Secondary's (empty when telemetry is
    /// compiled out).
    pub telemetry: TelemetrySnapshot,
    /// The effective fault schedule of the run (spec `fault:` section
    /// merged with the invocation's chaos flags); empty when the run
    /// was fault-free.
    pub faults: FaultPlan,
    /// Indices of Secondaries that died mid-benchmark (their plans were
    /// truncated, or — in distributed mode — their results never
    /// arrived and the aggregation is partial).
    pub lost_secondaries: Vec<usize>,
    /// The live run's fidelity diff against its simulation twin
    /// (`--live`, see [`crate::livediff`]); `None` for pure
    /// simulations.
    pub live_diff: Option<crate::livediff::LiveDiff>,
}

/// The pipeline phase a telemetry metric belongs to, by name prefix;
/// `None` for metrics outside the five per-phase groups.
pub(crate) fn phase_of(name: &str) -> Option<(usize, &'static str)> {
    if name.starts_with("mempool.") {
        Some((0, "mempool"))
    } else if name.starts_with("consensus.") {
        Some((1, "consensus"))
    } else if name.starts_with("exec.") || name.starts_with("vm.") || name.starts_with("parallel.")
    {
        Some((2, "execution"))
    } else if name.starts_with("net.") {
        Some((3, "network"))
    } else if name.starts_with("store.") {
        Some((4, "storage"))
    } else {
        None
    }
}

impl Report {
    /// Whether the chain could run the benchmark at all.
    pub fn able(&self) -> bool {
        self.result.able()
    }

    /// The statistics block the Diablo primary prints to standard
    /// output (`--stat`), in the style of the paper's artifact appendix:
    /// transactions sent / committed / aborted / pending, average load,
    /// average throughput, latency average / median / tail, and — when
    /// the run recorded telemetry — the per-phase latency breakdown.
    pub fn stats_text(&self) -> String {
        if let Some(reason) = &self.result.unable_reason {
            return format!(
                "benchmark {} on {}: unable to run ({reason})\n",
                self.result.workload, self.result.chain
            );
        }
        let r = &self.result;
        let sent = r.submitted();
        let committed = r.committed();
        let dropped = r.count_status(TxStatus::DroppedPoolFull)
            + r.count_status(TxStatus::DroppedPerSender)
            + r.count_status(TxStatus::DroppedExpired);
        let failed = r.count_status(TxStatus::Failed);
        let rejected = r.count_status(TxStatus::Rejected);
        let pending = r.count_status(TxStatus::Pending);
        let mut latencies = Summary::new();
        for rec in &r.records {
            if let Some(l) = rec.latency_secs() {
                latencies.record(l);
            }
        }
        let tail = latencies.percentiles();
        let mut out = format!(
            "benchmark {} on {} ({} secondaries, {} clients)\n\
             {sent} transactions sent, {committed} committed, {dropped} dropped, \
             {failed} aborted, {rejected} rejected, {pending} pending\n\
             average load: {:.1} tx/s\n\
             average throughput: {:.1} tx/s\n\
             average latency: {:.1} s, median latency: {:.1} s\n\
             latency p95: {:.2} s, p99: {:.2} s\n",
            r.workload,
            r.chain,
            self.secondaries,
            self.clients,
            r.avg_load(),
            r.avg_throughput(),
            r.avg_latency_secs(),
            r.median_latency_secs(),
            tail.p95(),
            tail.p99(),
        );
        if let Some(storage) = &r.storage {
            let _ = writeln!(
                out,
                "state store ({}): root {}…, {} blocks / {} txs persisted, \
                 {} resident ({} pruned), {} B resident",
                storage.mode,
                &storage.root_hex[..16],
                storage.blocks,
                storage.txs,
                storage.resident_blocks,
                storage.pruned_blocks,
                storage.resident_bytes,
            );
        }
        out.push_str(&self.fault_summary());
        out.push_str(&self.phase_breakdown());
        if let Some(diff) = &self.live_diff {
            out.push_str(&crate::livediff::render(diff));
        }
        out
    }

    /// The fault-period vs healthy-period latency split printed under
    /// `--stat` when the run injected faults: committed transactions
    /// are bucketed by whether their submission instant fell inside any
    /// active fault window ([`FaultPlan::active_windows`]). Empty for
    /// fault-free runs with no lost Secondaries.
    pub fn fault_summary(&self) -> String {
        let mut out = String::new();
        if !self.lost_secondaries.is_empty() {
            let ids: Vec<String> = self
                .lost_secondaries
                .iter()
                .map(|s| s.to_string())
                .collect();
            let _ = writeln!(
                out,
                "warning: secondaries [{}] died mid-benchmark; results are partial",
                ids.join(", ")
            );
        }
        if self.faults.is_empty() {
            return out;
        }
        let r = &self.result;
        // The horizon closes every open-ended window (permanent crash,
        // slowdown) at the end of the observed run.
        let mut horizon = SimTime::from_millis((r.workload_secs * 1000.0) as u64);
        for rec in &r.records {
            horizon = horizon.max(rec.submitted);
            if let Some(d) = rec.decided {
                horizon = horizon.max(d);
            }
        }
        let windows = self.faults.active_windows(horizon);
        let fault_secs: f64 = windows
            .iter()
            .map(|&(from, until)| until.as_secs_f64() - from.as_secs_f64())
            .sum();
        let in_fault =
            |t: SimTime| windows.iter().any(|&(from, until)| t >= from && t < until);
        let mut faulty = Summary::new();
        let mut healthy = Summary::new();
        for rec in &r.records {
            if let Some(l) = rec.latency_secs() {
                if in_fault(rec.submitted) {
                    faulty.record(l);
                } else {
                    healthy.record(l);
                }
            }
        }
        let _ = writeln!(
            out,
            "fault windows: {} spanning {:.1} s",
            windows.len(),
            fault_secs
        );
        let _ = writeln!(
            out,
            "fault-period latency: avg {:.2} s, p95 {:.2} s ({} committed)",
            faulty.mean(),
            faulty.percentiles().p95(),
            faulty.count()
        );
        let _ = writeln!(
            out,
            "healthy-period latency: avg {:.2} s, p95 {:.2} s ({} committed)",
            healthy.mean(),
            healthy.percentiles().p95(),
            healthy.count()
        );
        out
    }

    /// The per-phase latency table: every time-valued histogram
    /// (`*_us`, sim-time microseconds) the run recorded, grouped under
    /// the pipeline phase its name prefix denotes. Empty when no
    /// telemetry was recorded (e.g. compiled-out builds).
    pub fn phase_breakdown(&self) -> String {
        let mut rows: Vec<(usize, &'static str, &str, &diablo_telemetry::HistogramSnapshot)> =
            self.telemetry
                .histograms
                .iter()
                .filter(|(name, _)| name.ends_with("_us"))
                .filter_map(|(name, h)| {
                    phase_of(name).map(|(rank, phase)| (rank, phase, name.as_str(), h))
                })
                .collect();
        if rows.is_empty() {
            return String::new();
        }
        rows.sort_by(|a, b| (a.0, a.2).cmp(&(b.0, b.2)));
        let mut out = String::from("per-phase latency breakdown (sim-time µs):\n");
        let _ = writeln!(
            out,
            "  {:<10} {:<34} {:>10} {:>14} {:>9} {:>9} {:>9}",
            "phase", "metric", "count", "total", "p50", "p95", "p99"
        );
        for (_, phase, name, h) in rows {
            let _ = writeln!(
                out,
                "  {:<10} {:<34} {:>10} {:>14} {:>9} {:>9} {:>9}",
                phase,
                name,
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_chains::{Chain, TxRecord};
    use diablo_sim::{SimDuration, SimTime};

    fn report() -> Report {
        let submitted = SimTime::from_secs(1);
        let records = vec![
            TxRecord {
                submitted,
                decided: Some(submitted + SimDuration::from_secs(3)),
                status: TxStatus::Committed,
            },
            TxRecord {
                submitted,
                decided: None,
                status: TxStatus::Pending,
            },
            TxRecord {
                submitted,
                decided: None,
                status: TxStatus::DroppedPoolFull,
            },
        ];
        Report {
            result: RunResult {
                chain: Chain::Algorand,
                workload: "native-10".into(),
                workload_secs: 30.0,
                records,
                unable_reason: None,
                blocks: Vec::new(),
                storage: None,
                trace: None,
            },
            secondaries: 2,
            clients: 4,
            telemetry: TelemetrySnapshot::default(),
            faults: FaultPlan::none(),
            lost_secondaries: Vec::new(),
            live_diff: None,
        }
    }

    #[test]
    fn stats_text_mentions_all_counters() {
        let text = report().stats_text();
        assert!(text.contains("3 transactions sent"), "{text}");
        assert!(text.contains("1 committed"), "{text}");
        assert!(text.contains("1 dropped"), "{text}");
        assert!(text.contains("1 pending"), "{text}");
        assert!(text.contains("2 secondaries"), "{text}");
        assert!(text.contains("Algorand"), "{text}");
        assert!(text.contains("latency p95"), "{text}");
    }

    #[test]
    fn tail_latency_tracks_the_single_commit() {
        // One committed transaction at 3 s: every latency quantile is
        // that observation.
        let text = report().stats_text();
        assert!(text.contains("p95: 3.00 s"), "{text}");
        assert!(text.contains("p99: 3.00 s"), "{text}");
    }

    #[test]
    fn phase_breakdown_groups_time_histograms() {
        use diablo_sim::LogHistogram;
        let mut r = report();
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 400] {
            h.record(v);
        }
        let snap = diablo_telemetry::HistogramSnapshot::from_histogram(&h);
        r.telemetry.histograms = vec![
            ("consensus.ibft.round_us".to_string(), snap.clone()),
            ("mempool.take_batch.txs".to_string(), snap.clone()), // not *_us: excluded
            ("net.phase.linear_us".to_string(), snap.clone()),
            ("unrelated.metric_us".to_string(), snap),
        ];
        let table = r.phase_breakdown();
        assert!(table.contains("consensus  consensus.ibft.round_us"), "{table}");
        assert!(table.contains("network    net.phase.linear_us"), "{table}");
        assert!(!table.contains("take_batch"), "{table}");
        assert!(!table.contains("unrelated"), "{table}");
        // Consensus sorts before network.
        let c = table.find("consensus.ibft").unwrap();
        let n = table.find("net.phase").unwrap();
        assert!(c < n, "{table}");
        // Empty telemetry renders nothing.
        assert_eq!(report().phase_breakdown(), "");
    }

    #[test]
    fn storage_line_appears_when_the_store_ran() {
        assert!(!report().stats_text().contains("state store"));
        let mut r = report();
        r.result.storage = Some(diablo_chains::StorageReport {
            mode: "distance=3".into(),
            root_hex: "cd".repeat(32),
            blocks: 12,
            txs: 240,
            resident_blocks: 7,
            resident_bytes: 4096,
            pruned_blocks: 5,
            hot_pages: 2,
            frozen_pages: 1,
            storage_entries: 90,
        });
        let text = r.stats_text();
        assert!(text.contains("state store (distance=3)"), "{text}");
        assert!(text.contains("root cdcdcdcdcdcdcdcd…"), "{text}");
        assert!(text.contains("12 blocks / 240 txs"), "{text}");
        // Store spans group under their own phase in the breakdown.
        assert_eq!(phase_of("store.persist_us"), Some((4, "storage")));
    }

    #[test]
    fn unable_reports_reason() {
        let r = Report {
            result: RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into()),
            secondaries: 1,
            clients: 1,
            telemetry: TelemetrySnapshot::default(),
            faults: FaultPlan::none(),
            lost_secondaries: Vec::new(),
            live_diff: None,
        };
        assert!(!r.able());
        assert!(r.stats_text().contains("budget exceeded"));
    }

    #[test]
    fn fault_summary_splits_latency_by_window() {
        let mut r = report();
        // One fault window 0..10 s; the report's records submit at 1 s,
        // so every committed transaction lands in the faulty bucket.
        r.faults = FaultPlan::builder()
            .partition(&[0, 1], &[2, 3], SimTime::from_secs(0), SimTime::from_secs(10))
            .build();
        let text = r.stats_text();
        assert!(text.contains("fault windows: 1 spanning 10.0 s"), "{text}");
        assert!(text.contains("fault-period latency: avg 3.00 s"), "{text}");
        assert!(text.contains("(1 committed)"), "{text}");
        assert!(text.contains("healthy-period latency"), "{text}");
        // Fault-free reports print no fault section at all.
        assert!(!report().stats_text().contains("fault windows"));
    }

    #[test]
    fn lost_secondaries_are_called_out() {
        let mut r = report();
        r.lost_secondaries = vec![1, 3];
        let text = r.stats_text();
        assert!(
            text.contains("secondaries [1, 3] died mid-benchmark"),
            "{text}"
        );
    }
}
