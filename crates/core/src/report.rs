//! Benchmark reports: the aggregation the Primary performs (§4).

use diablo_chains::{RunResult, TxStatus};

/// The aggregated outcome of one benchmark run.
#[derive(Debug)]
pub struct Report {
    /// The underlying per-transaction results.
    pub result: RunResult,
    /// How many Secondaries produced the load.
    pub secondaries: usize,
    /// How many clients (worker threads) were emulated.
    pub clients: u32,
}

impl Report {
    /// Whether the chain could run the benchmark at all.
    pub fn able(&self) -> bool {
        self.result.able()
    }

    /// The statistics block the Diablo primary prints to standard
    /// output (`--stat`), in the style of the paper's artifact appendix:
    /// transactions sent / committed / aborted / pending, average load,
    /// average throughput, average and median latency.
    pub fn stats_text(&self) -> String {
        if let Some(reason) = &self.result.unable_reason {
            return format!(
                "benchmark {} on {}: unable to run ({reason})\n",
                self.result.workload, self.result.chain
            );
        }
        let r = &self.result;
        let sent = r.submitted();
        let committed = r.committed();
        let dropped = r.count_status(TxStatus::DroppedPoolFull)
            + r.count_status(TxStatus::DroppedPerSender)
            + r.count_status(TxStatus::DroppedExpired);
        let failed = r.count_status(TxStatus::Failed);
        let pending = r.count_status(TxStatus::Pending);
        let avg_load = sent as f64 / r.workload_secs.max(1e-9);
        format!(
            "benchmark {} on {} ({} secondaries, {} clients)\n\
             {sent} transactions sent, {committed} committed, {dropped} dropped, \
             {failed} aborted, {pending} pending\n\
             average load: {avg_load:.1} tx/s\n\
             average throughput: {:.1} tx/s\n\
             average latency: {:.1} s, median latency: {:.1} s\n",
            r.workload,
            r.chain,
            self.secondaries,
            self.clients,
            r.avg_throughput(),
            r.avg_latency_secs(),
            r.median_latency_secs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_chains::{Chain, TxRecord};
    use diablo_sim::{SimDuration, SimTime};

    fn report() -> Report {
        let submitted = SimTime::from_secs(1);
        let records = vec![
            TxRecord {
                submitted,
                decided: Some(submitted + SimDuration::from_secs(3)),
                status: TxStatus::Committed,
            },
            TxRecord {
                submitted,
                decided: None,
                status: TxStatus::Pending,
            },
            TxRecord {
                submitted,
                decided: None,
                status: TxStatus::DroppedPoolFull,
            },
        ];
        Report {
            result: RunResult {
                chain: Chain::Algorand,
                workload: "native-10".into(),
                workload_secs: 30.0,
                records,
                unable_reason: None,
                blocks: Vec::new(),
            },
            secondaries: 2,
            clients: 4,
        }
    }

    #[test]
    fn stats_text_mentions_all_counters() {
        let text = report().stats_text();
        assert!(text.contains("3 transactions sent"), "{text}");
        assert!(text.contains("1 committed"), "{text}");
        assert!(text.contains("1 dropped"), "{text}");
        assert!(text.contains("1 pending"), "{text}");
        assert!(text.contains("2 secondaries"), "{text}");
        assert!(text.contains("Algorand"), "{text}");
    }

    #[test]
    fn unable_reports_reason() {
        let r = Report {
            result: RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into()),
            secondaries: 1,
            clients: 1,
        };
        assert!(!r.able());
        assert!(r.stats_text().contains("budget exceeded"));
    }
}
