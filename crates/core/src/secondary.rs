//! The Secondary role (§4).
//!
//! Secondaries are responsible for presigning transactions and executing
//! the workload. Each Secondary spawns the worker threads ("clients")
//! the Primary assigns to it; each client expands its behaviors' load
//! curves into individually timed interactions, encodes them through
//! the chain adapter (presigning) and triggers them.

use diablo_sim::{SimDuration, SimTime};

use crate::abstraction::{Connector, ConnectorError, Interaction, ResourceSpec};
use crate::spec::{BenchmarkSpec, InteractionSpec, WorkloadGroup};

/// Submission tick used when expanding load curves, matching the
/// backend's tick.
const TICK_MS: u64 = 100;

/// Statistics of one planning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Clients created.
    pub clients: u32,
    /// Interactions encoded and triggered.
    pub interactions: u64,
}

/// Resolves the workload group and group-local index of a global client
/// index.
fn locate_client(spec: &BenchmarkSpec, global: u32) -> Option<(&WorkloadGroup, u32)> {
    let mut base = 0;
    for group in &spec.workloads {
        if global < base + group.number {
            return Some((group, global - base));
        }
        base += group.number;
    }
    None
}

/// Declares the resources a spec needs (accounts, contracts) through
/// the connector — the Primary does this once before dispatching.
pub fn declare_resources(
    spec: &BenchmarkSpec,
    connector: &mut dyn Connector,
) -> Result<(), ConnectorError> {
    for group in &spec.workloads {
        for behavior in &group.behaviors {
            match &behavior.interaction {
                InteractionSpec::Transfer { accounts, .. } => {
                    connector.create_resource(&ResourceSpec::Accounts { number: *accounts })?;
                }
                InteractionSpec::Invoke {
                    accounts, contract, ..
                } => {
                    connector.create_resource(&ResourceSpec::Accounts { number: *accounts })?;
                    connector.create_resource(&ResourceSpec::Contract {
                        name: contract.clone(),
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// Plans the clients `range.0 .. range.1` (global indices) of `spec`:
/// creates each client, expands its behaviors into timed interactions
/// and triggers them on the connector.
///
/// Interactions are deterministic in the client index, so two
/// Secondaries planning disjoint ranges of the same spec produce exactly
/// the partition the Primary expects.
pub fn plan_range(
    spec: &BenchmarkSpec,
    range: (u32, u32),
    connector: &mut dyn Connector,
) -> Result<PlanStats, ConnectorError> {
    let mut stats = PlanStats::default();
    for global in range.0..range.1 {
        let (group, _) = locate_client(spec, global)
            .ok_or(ConnectorError::UnknownClient { client: global })?;
        let client = connector.create_client(&group.view)?;
        stats.clients += 1;
        for (bi, behavior) in group.behaviors.iter().enumerate() {
            let workload = behavior.to_workload("client");
            let ticks = workload.ticks(TICK_MS);
            // Counter seeded per (client, behavior) so account usage is
            // deterministic and spread.
            let mut counter = (global as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(bi as u64)
                % 100_000;
            for (k, &count) in ticks.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let start = SimTime::from_millis(k as u64 * TICK_MS);
                let spacing = SimDuration::from_micros(TICK_MS * 1000 / count);
                // Offset clients within the tick so `number: 3` clients
                // interleave instead of colliding.
                let offset = SimDuration::from_micros(
                    (global as u64 * TICK_MS * 1000 / count.max(1)) % spacing.as_micros().max(1),
                );
                for i in 0..count {
                    let at = start + offset + spacing * i;
                    let interaction = build_interaction(&behavior.interaction, counter);
                    counter += 1;
                    let encoded = connector.encode(&interaction, at)?;
                    connector.trigger(client, encoded)?;
                    stats.interactions += 1;
                }
            }
        }
    }
    Ok(stats)
}

/// Materializes the `counter`-th interaction of a behavior.
fn build_interaction(spec: &InteractionSpec, counter: u64) -> Interaction {
    match spec {
        InteractionSpec::Transfer { accounts, amount } => {
            let pool = (*accounts).max(2) as u64;
            let from = (counter % pool) as u32;
            let to = ((counter + 1) % pool) as u32;
            Interaction::Transfer {
                from,
                to,
                amount: *amount,
            }
        }
        InteractionSpec::Invoke {
            accounts,
            contract,
            function,
            args,
        } => Interaction::Invoke {
            from: (counter % (*accounts).max(1) as u64) as u32,
            contract: contract.clone(),
            function: function.clone(),
            args: args.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::SimConnector;
    use crate::spec::PAPER_DOTA_SPEC;

    #[test]
    fn planning_the_paper_spec_counts_match() {
        let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap();
        let mut conn = SimConnector::new("test");
        declare_resources(&spec, &mut conn).unwrap();
        let stats = plan_range(&spec, (0, 3), &mut conn).unwrap();
        assert_eq!(stats.clients, 3);
        // Each client: 4432 × 50 + 4438 × 70 transactions.
        let per_client = 4432 * 50 + 4438 * 70;
        assert_eq!(stats.interactions, 3 * per_client);
        let plan = conn.take_plan();
        assert_eq!(plan.len() as u64, 3 * per_client);
        // Time-sorted and inside the 120 s window.
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(plan.last().unwrap().at < SimTime::from_secs(120));
    }

    #[test]
    fn disjoint_ranges_partition_the_work() {
        let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap();
        let mut whole = SimConnector::new("whole");
        declare_resources(&spec, &mut whole).unwrap();
        plan_range(&spec, (0, 3), &mut whole).unwrap();
        let all = whole.take_plan();

        let mut parts = Vec::new();
        for r in [(0, 1), (1, 2), (2, 3)] {
            let mut c = SimConnector::new("part");
            declare_resources(&spec, &mut c).unwrap();
            plan_range(&spec, r, &mut c).unwrap();
            parts.extend(c.take_plan());
        }
        parts.sort_by_key(|t| t.at);
        assert_eq!(all.len(), parts.len());
        // Same submission times (senders/seqs may renumber per part).
        for (a, b) in all.iter().zip(&parts) {
            assert_eq!(a.at, b.at);
        }
    }

    #[test]
    fn out_of_range_client_errors() {
        let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).unwrap();
        let mut conn = SimConnector::new("test");
        declare_resources(&spec, &mut conn).unwrap();
        assert_eq!(
            plan_range(&spec, (2, 4), &mut conn),
            Err(ConnectorError::UnknownClient { client: 3 })
        );
    }

    #[test]
    fn transfer_interactions_rotate_accounts() {
        let spec = InteractionSpec::Transfer {
            accounts: 5,
            amount: 2,
        };
        let mut froms = Vec::new();
        for c in 0..10 {
            match build_interaction(&spec, c) {
                Interaction::Transfer { from, to, amount } => {
                    assert_ne!(from, to);
                    assert_eq!(amount, 2);
                    froms.push(from);
                }
                other => panic!("wrong interaction {other:?}"),
            }
        }
        froms.sort_unstable();
        froms.dedup();
        assert_eq!(froms.len(), 5, "all pool accounts used");
    }
}
