//! The distributed Primary/Secondary mode: a length-framed TCP protocol.
//!
//! Mirrors the deployment of §4/§5.3: one Primary coordinates `N`
//! Secondaries over TCP. The Secondaries receive their client
//! assignment, presign (plan) their share of the workload, stream the
//! plan back, receive per-transaction outcomes once the run completes,
//! compute their local statistics and report them to the Primary's
//! aggregator.
//!
//! Framing: every message is `u32` little-endian length followed by a
//! one-byte message tag and the body. Integers are little-endian;
//! strings and vectors are length-prefixed.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use diablo_chains::tx::CallSel;
use diablo_chains::{Chain, ChainHarness, Payload, PlannedTx, RunResult, TxStatus};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_sim::SimTime;

use crate::adapters;
use crate::bytebuf::{ByteBuf, ByteReader};
use crate::output::status_name;
use crate::primary::{partition_clients, BenchmarkOptions};
use crate::report::Report;
use crate::secondary::{declare_resources, plan_range};
use crate::spec::BenchmarkSpec;

/// Maximum accepted frame size (64 MiB).
const MAX_FRAME: usize = 64 << 20;

/// Transactions per `Plan`/`Outcomes` frame.
const CHUNK: usize = 16_384;

/// How long the Primary waits on a Secondary before declaring it dead
/// and aggregating without it (the deadline of the Secondary-death
/// fault path). Generous for CI machines; a crashed worker trips it in
/// one read.
const SECONDARY_DEADLINE: std::time::Duration = std::time::Duration::from_secs(30);

/// One planned transaction on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTx {
    /// Submission instant, µs.
    pub at_us: u64,
    /// Signing account.
    pub sender: u32,
    /// 0 = transfer, 1 = invoke (default rotation), 2 = invoke with an
    /// explicit function selection.
    pub kind: u8,
    /// Index into [`DApp::ALL`] when invoking.
    pub dapp: u8,
    /// Invocation sequence number.
    pub seq: u64,
    /// Selected entry index (`kind == 2`).
    pub entry: u8,
    /// Literal arguments (`kind == 2`).
    pub args: [i32; 2],
    /// How many arguments are used (`kind == 2`).
    pub argc: u8,
}

/// One transaction outcome on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOutcome {
    /// Encoded [`TxStatus`].
    pub status: u8,
    /// Submission instant, µs.
    pub submit_us: u64,
    /// Decision instant, µs (`u64::MAX` = undecided).
    pub decide_us: u64,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Secondary → Primary: identify with a location tag (§5.3).
    Hello {
        /// The Secondary's location tag.
        tag: String,
    },
    /// Primary → Secondary: the benchmark assignment.
    Assign {
        /// Chain name.
        chain: String,
        /// Benchmark specification text.
        spec: String,
        /// First global client index (inclusive).
        first: u32,
        /// Last global client index (exclusive).
        last: u32,
    },
    /// Secondary → Primary: a chunk of planned transactions.
    Plan {
        /// The chunk.
        txs: Vec<WireTx>,
    },
    /// Secondary → Primary: planning finished.
    PlanDone,
    /// Primary → Secondary: a chunk of outcomes (in the Secondary's
    /// planning order).
    Outcomes {
        /// The chunk.
        txs: Vec<WireOutcome>,
    },
    /// Primary → Secondary: all outcomes delivered.
    OutcomesDone,
    /// Secondary → Primary: the local statistics report.
    Stats {
        /// Human-readable statistics.
        text: String,
    },
    /// Secondary → Primary: the local telemetry snapshot, merged by the
    /// Primary into the run's aggregate (sent right after `Stats`).
    Telemetry {
        /// The Secondary's recorded counters/histograms/spans.
        snapshot: diablo_telemetry::TelemetrySnapshot,
    },
    /// Secondary → Primary: the local transaction-trace contribution,
    /// merged by the Primary into the run's trace set exactly like
    /// telemetry snapshots (sent right after `Telemetry`). Planning-side
    /// Secondaries carry an empty set today — the simulation (and thus
    /// every lifecycle event) runs on the Primary — so the merged trace
    /// is byte-identical at any secondary count by construction.
    TraceChunk {
        /// The Secondary's sampled transaction traces.
        set: diablo_telemetry::trace::TraceSet,
    },
    /// Primary → Secondary: experiment over, disconnect.
    Done,
}

fn put_string(buf: &mut ByteBuf, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut ByteReader) -> Result<String, String> {
    let len = buf.get_u32_le().map_err(|_| "truncated string length")? as usize;
    let bytes = buf.take(len).map_err(|_| "truncated string body")?;
    // Validate UTF-8 on the borrowed frame bytes; allocate only for the
    // (valid) result, never for a rejected body.
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|e| e.to_string())
}

/// Encodes a telemetry snapshot: four length-prefixed sections in the
/// snapshot's canonical (name-sorted) order.
pub fn put_telemetry(buf: &mut ByteBuf, snapshot: &diablo_telemetry::TelemetrySnapshot) {
    buf.put_u32_le(snapshot.counters.len() as u32);
    for (name, v) in &snapshot.counters {
        put_string(buf, name);
        buf.put_u64_le(*v);
    }
    buf.put_u32_le(snapshot.gauges.len() as u32);
    for (name, v) in &snapshot.gauges {
        put_string(buf, name);
        buf.put_u64_le(*v as u64);
    }
    buf.put_u32_le(snapshot.histograms.len() as u32);
    for (name, h) in &snapshot.histograms {
        put_string(buf, name);
        buf.put_u64_le(h.count);
        buf.put_u64_le(h.sum);
        buf.put_u64_le(h.min);
        buf.put_u64_le(h.max);
        buf.put_u32_le(h.buckets.len() as u32);
        for &(index, count) in &h.buckets {
            buf.put_u32_le(index);
            buf.put_u64_le(count);
        }
    }
    buf.put_u32_le(snapshot.spans.len() as u32);
    for (name, s) in &snapshot.spans {
        put_string(buf, name);
        buf.put_u64_le(s.count);
        buf.put_u64_le(s.inclusive_us);
        buf.put_u64_le(s.exclusive_us);
    }
}

/// Decodes a telemetry snapshot written by [`put_telemetry`].
pub fn get_telemetry(
    buf: &mut ByteReader,
) -> Result<diablo_telemetry::TelemetrySnapshot, String> {
    let mut snapshot = diablo_telemetry::TelemetrySnapshot::default();
    let n = buf.get_u32_le().map_err(|_| "truncated counters")? as usize;
    for _ in 0..n {
        let name = get_string(buf)?;
        snapshot.counters.push((name, buf.get_u64_le()?));
    }
    let n = buf.get_u32_le().map_err(|_| "truncated gauges")? as usize;
    for _ in 0..n {
        let name = get_string(buf)?;
        snapshot.gauges.push((name, buf.get_u64_le()? as i64));
    }
    let n = buf.get_u32_le().map_err(|_| "truncated histograms")? as usize;
    for _ in 0..n {
        let name = get_string(buf)?;
        let mut h = diablo_telemetry::HistogramSnapshot {
            count: buf.get_u64_le()?,
            sum: buf.get_u64_le()?,
            min: buf.get_u64_le()?,
            max: buf.get_u64_le()?,
            buckets: Vec::new(),
        };
        let b = buf.get_u32_le().map_err(|_| "truncated buckets")? as usize;
        for _ in 0..b {
            let index = buf.get_u32_le()?;
            h.buckets.push((index, buf.get_u64_le()?));
        }
        snapshot.histograms.push((name, h));
    }
    let n = buf.get_u32_le().map_err(|_| "truncated spans")? as usize;
    for _ in 0..n {
        let name = get_string(buf)?;
        snapshot.spans.push((
            name,
            diablo_telemetry::SpanStat {
                count: buf.get_u64_le()?,
                inclusive_us: buf.get_u64_le()?,
                exclusive_us: buf.get_u64_le()?,
            },
        ));
    }
    Ok(snapshot)
}

/// Encodes a trace set: sampler parameters, then the per-transaction
/// trails in the set's canonical (id-sorted) order.
pub fn put_trace(buf: &mut ByteBuf, set: &diablo_telemetry::trace::TraceSet) {
    buf.put_u64_le(set.seed);
    buf.put_u64_le(set.cap);
    buf.put_u32_le(set.txs.len() as u32);
    for tx in &set.txs {
        buf.put_u64_le(tx.id);
        buf.put_u32_le(tx.events.len() as u32);
        for ev in &tx.events {
            buf.put_u8(ev.stage as u8);
            buf.put_u64_le(ev.at_us);
            buf.put_u64_le(ev.arg0);
            buf.put_u64_le(ev.arg1);
        }
    }
}

/// Decodes a trace set written by [`put_trace`].
pub fn get_trace(buf: &mut ByteReader) -> Result<diablo_telemetry::trace::TraceSet, String> {
    use diablo_telemetry::trace::{TraceEvent, TraceSet, TraceStage, TxTrace};
    let seed = buf.get_u64_le().map_err(|_| "truncated trace header")?;
    let cap = buf.get_u64_le().map_err(|_| "truncated trace header")?;
    let n = buf.get_u32_le().map_err(|_| "truncated trace count")? as usize;
    let mut txs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = buf.get_u64_le()?;
        let m = buf.get_u32_le().map_err(|_| "truncated event count")? as usize;
        if buf.remaining() < m * 25 {
            return Err("truncated trace events".into());
        }
        let mut events = Vec::with_capacity(m);
        for _ in 0..m {
            let code = buf.get_u8()?;
            let stage = TraceStage::from_u8(code)
                .ok_or_else(|| format!("unknown trace stage {code}"))?;
            events.push(TraceEvent {
                stage,
                at_us: buf.get_u64_le()?,
                arg0: buf.get_u64_le()?,
                arg1: buf.get_u64_le()?,
            });
        }
        txs.push(TxTrace { id, events });
    }
    Ok(TraceSet { seed, cap, txs })
}

/// Starts a frame: reserves the 4-byte length prefix and writes the
/// message tag. Finish with [`finish_frame`].
fn begin_frame(tag: u8, capacity: usize) -> ByteBuf {
    let mut framed = ByteBuf::with_capacity(capacity + 5);
    framed.put_u32_le(0); // length prefix, patched by finish_frame
    framed.put_u8(tag);
    framed
}

/// Patches the reserved length prefix of a [`begin_frame`] buffer. The
/// body is framed in place — no copy into a second buffer.
fn finish_frame(mut framed: ByteBuf) -> ByteBuf {
    let body_len = framed.len() - 4;
    framed.set_u32_le(0, body_len as u32);
    framed
}

fn put_wire_tx(body: &mut ByteBuf, tx: &WireTx) {
    body.put_u64_le(tx.at_us);
    body.put_u32_le(tx.sender);
    body.put_u8(tx.kind);
    body.put_u8(tx.dapp);
    body.put_u64_le(tx.seq);
    body.put_u8(tx.entry);
    body.put_i32_le(tx.args[0]);
    body.put_i32_le(tx.args[1]);
    body.put_u8(tx.argc);
}

fn put_wire_outcome(body: &mut ByteBuf, tx: &WireOutcome) {
    body.put_u8(tx.status);
    body.put_u64_le(tx.submit_us);
    body.put_u64_le(tx.decide_us);
}

/// Encodes a `Plan` frame straight from a slice of planned
/// transactions: the Secondary streams chunk views of its plan without
/// first collecting each chunk into an owned `Vec<WireTx>`.
fn encode_plan_chunk(txs: &[PlannedTx]) -> ByteBuf {
    let mut framed = begin_frame(3, 4 + txs.len() * 32);
    framed.put_u32_le(txs.len() as u32);
    for tx in txs {
        put_wire_tx(&mut framed, &planned_to_wire(tx));
    }
    finish_frame(framed)
}

/// Encodes an `Outcomes` frame straight from a slice: the Primary's
/// fan-out sends chunk views of one outcomes vector without cloning
/// each chunk into an owned message.
fn encode_outcomes_chunk(txs: &[WireOutcome]) -> ByteBuf {
    let mut framed = begin_frame(5, 4 + txs.len() * 17);
    framed.put_u32_le(txs.len() as u32);
    for tx in txs {
        put_wire_outcome(&mut framed, tx);
    }
    finish_frame(framed)
}

/// Encodes a message into a framed byte buffer.
pub fn encode(msg: &Message) -> ByteBuf {
    let framed = match msg {
        Message::Hello { tag } => {
            let mut f = begin_frame(1, 64);
            put_string(&mut f, tag);
            f
        }
        Message::Assign {
            chain,
            spec,
            first,
            last,
        } => {
            let mut f = begin_frame(2, chain.len() + spec.len() + 16);
            put_string(&mut f, chain);
            put_string(&mut f, spec);
            f.put_u32_le(*first);
            f.put_u32_le(*last);
            f
        }
        Message::Plan { txs } => return encode_plan_frame_owned(txs),
        Message::PlanDone => begin_frame(4, 0),
        Message::Outcomes { txs } => return encode_outcomes_chunk(txs),
        Message::OutcomesDone => begin_frame(6, 0),
        Message::Stats { text } => {
            let mut f = begin_frame(7, text.len() + 4);
            put_string(&mut f, text);
            f
        }
        Message::Done => begin_frame(8, 0),
        Message::Telemetry { snapshot } => {
            let mut f = begin_frame(9, 256);
            put_telemetry(&mut f, snapshot);
            f
        }
        Message::TraceChunk { set } => {
            let mut f = begin_frame(10, 20 + set.txs.len() * 64);
            put_trace(&mut f, set);
            f
        }
    };
    finish_frame(framed)
}

/// [`encode`]'s arm for an owned `Plan` message (roundtrip tests and
/// any caller holding `WireTx` values directly).
fn encode_plan_frame_owned(txs: &[WireTx]) -> ByteBuf {
    let mut framed = begin_frame(3, 4 + txs.len() * 32);
    framed.put_u32_le(txs.len() as u32);
    for tx in txs {
        put_wire_tx(&mut framed, tx);
    }
    finish_frame(framed)
}

/// Decodes one frame body (without the length prefix).
pub fn decode(body: &[u8]) -> Result<Message, String> {
    if body.is_empty() {
        return Err("empty frame".into());
    }
    let mut body = ByteReader::new(body);
    let tag = body.get_u8()?;
    match tag {
        1 => Ok(Message::Hello {
            tag: get_string(&mut body)?,
        }),
        2 => {
            let chain = get_string(&mut body)?;
            let spec = get_string(&mut body)?;
            if body.remaining() < 8 {
                return Err("truncated assign".into());
            }
            let first = body.get_u32_le()?;
            let last = body.get_u32_le()?;
            Ok(Message::Assign {
                chain,
                spec,
                first,
                last,
            })
        }
        3 => {
            let n = body.get_u32_le().map_err(|_| "truncated plan")? as usize;
            if body.remaining() < n * 32 {
                return Err("truncated plan body".into());
            }
            let mut txs = Vec::with_capacity(n);
            for _ in 0..n {
                txs.push(WireTx {
                    at_us: body.get_u64_le()?,
                    sender: body.get_u32_le()?,
                    kind: body.get_u8()?,
                    dapp: body.get_u8()?,
                    seq: body.get_u64_le()?,
                    entry: body.get_u8()?,
                    args: [body.get_i32_le()?, body.get_i32_le()?],
                    argc: body.get_u8()?,
                });
            }
            Ok(Message::Plan { txs })
        }
        4 => Ok(Message::PlanDone),
        5 => {
            let n = body.get_u32_le().map_err(|_| "truncated outcomes")? as usize;
            if body.remaining() < n * 17 {
                return Err("truncated outcomes body".into());
            }
            let mut txs = Vec::with_capacity(n);
            for _ in 0..n {
                txs.push(WireOutcome {
                    status: body.get_u8()?,
                    submit_us: body.get_u64_le()?,
                    decide_us: body.get_u64_le()?,
                });
            }
            Ok(Message::Outcomes { txs })
        }
        6 => Ok(Message::OutcomesDone),
        7 => Ok(Message::Stats {
            text: get_string(&mut body)?,
        }),
        8 => Ok(Message::Done),
        9 => Ok(Message::Telemetry {
            snapshot: get_telemetry(&mut body)?,
        }),
        10 => Ok(Message::TraceChunk {
            set: get_trace(&mut body)?,
        }),
        other => Err(format!("unknown message tag {other}")),
    }
}

/// Writes one framed message to a stream.
pub fn write_message(stream: &mut TcpStream, msg: &Message) -> Result<(), String> {
    write_frame(stream, &encode(msg))
}

/// Writes an already-framed buffer to a stream.
fn write_frame(stream: &mut TcpStream, framed: &ByteBuf) -> Result<(), String> {
    stream.write_all(framed).map_err(|e| e.to_string())
}

/// Reads one framed message from a stream.
pub fn read_message(stream: &mut TcpStream) -> Result<Message, String> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).map_err(|e| e.to_string())?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds the limit"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| e.to_string())?;
    decode(&body)
}

/// Status ↔ wire encoding.
fn status_to_wire(status: TxStatus) -> u8 {
    match status {
        TxStatus::Pending => 0,
        TxStatus::Committed => 1,
        TxStatus::DroppedPoolFull => 2,
        TxStatus::DroppedPerSender => 3,
        TxStatus::DroppedExpired => 4,
        TxStatus::Failed => 5,
        TxStatus::Rejected => 6,
    }
}

fn status_from_wire(code: u8) -> Result<TxStatus, String> {
    Ok(match code {
        0 => TxStatus::Pending,
        1 => TxStatus::Committed,
        2 => TxStatus::DroppedPoolFull,
        3 => TxStatus::DroppedPerSender,
        4 => TxStatus::DroppedExpired,
        5 => TxStatus::Failed,
        6 => TxStatus::Rejected,
        other => return Err(format!("unknown status code {other}")),
    })
}

fn planned_to_wire(tx: &PlannedTx) -> WireTx {
    let base = WireTx {
        at_us: tx.at.as_micros(),
        sender: tx.sender,
        kind: 0,
        dapp: 0,
        seq: 0,
        entry: 0,
        args: [0, 0],
        argc: 0,
    };
    match tx.payload {
        Payload::Transfer => base,
        Payload::Invoke { dapp, seq, call } => {
            let dapp = DApp::ALL
                .iter()
                .position(|&d| d == dapp)
                .expect("known dapp") as u8;
            match call {
                None => WireTx {
                    kind: 1,
                    dapp,
                    seq,
                    ..base
                },
                Some(sel) => WireTx {
                    kind: 2,
                    dapp,
                    seq,
                    entry: sel.entry,
                    args: sel.args,
                    argc: sel.argc,
                    ..base
                },
            }
        }
    }
}

fn wire_to_planned(tx: &WireTx) -> Result<PlannedTx, String> {
    let dapp = || {
        DApp::ALL
            .get(tx.dapp as usize)
            .copied()
            .ok_or_else(|| format!("unknown dapp index {}", tx.dapp))
    };
    let payload = match tx.kind {
        0 => Payload::Transfer,
        1 => Payload::Invoke {
            dapp: dapp()?,
            seq: tx.seq,
            call: None,
        },
        2 => Payload::Invoke {
            dapp: dapp()?,
            seq: tx.seq,
            call: Some(CallSel {
                entry: tx.entry,
                args: tx.args,
                argc: tx.argc.min(2),
            }),
        },
        other => return Err(format!("unknown tx kind {other}")),
    };
    Ok(PlannedTx {
        at: SimTime::from_micros(tx.at_us),
        sender: tx.sender,
        payload,
    })
}

/// Runs the Primary end of the distributed mode: accepts
/// `n_secondaries` connections, dispatches assignments, collects plans,
/// runs the benchmark, returns outcomes and aggregates statistics.
pub fn serve_primary(
    listener: &TcpListener,
    chain: Chain,
    deployment: DeploymentKind,
    spec_text: &str,
    workload_name: &str,
    options: &BenchmarkOptions,
    n_secondaries: usize,
) -> Result<Report, String> {
    let spec = BenchmarkSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let clients = spec.client_count();
    let ranges = partition_clients(clients, n_secondaries);

    // The one layered resolution (defaults ← spec ← invocation). The
    // TCP path previously hand-merged only `storage:`; it now honors
    // the spec's `execution:` and `sigverify:` sections exactly like
    // the in-process runner.
    let run = options.resolve(&spec);
    let faults = run.faults.clone();

    // The report's telemetry covers exactly this experiment.
    diablo_telemetry::reset();

    // Resolve the DApp once for the backend.
    let mut scratch = adapters::connector(chain);
    declare_resources(&spec, &mut scratch).map_err(|e| e.to_string())?;
    let dapp = scratch.sole_dapp();

    // Accept the Secondaries and dispatch their shares.
    let mut streams = Vec::with_capacity(ranges.len());
    for range in &ranges {
        let (mut stream, _addr) = listener.accept().map_err(|e| e.to_string())?;
        match read_message(&mut stream)? {
            Message::Hello { .. } => {}
            other => return Err(format!("expected Hello, got {other:?}")),
        }
        write_message(
            &mut stream,
            &Message::Assign {
                chain: chain.name().to_string(),
                spec: spec_text.to_string(),
                first: range.0,
                last: range.1,
            },
        )?;
        streams.push(stream);
    }

    // Collect plans. Every read from here on runs under a deadline: a
    // Secondary that dies mid-benchmark must not hang the Primary, so a
    // timed-out (or closed) stream marks the Secondary as dead, its
    // partial plan is discarded, and aggregation proceeds without it.
    // (`dead` tracks streams actually gone from the wire; a Secondary
    // killed *in simulation* by the fault plan stays connected and
    // keeps exchanging messages.)
    let mut dead = vec![false; streams.len()];
    let mut merged: Vec<PlannedTx> = Vec::new();
    let mut origin: Vec<(u32, u32)> = Vec::new(); // (secondary, local index)
    let mut planned_counts: Vec<u32> = vec![0; streams.len()];
    for (si, stream) in streams.iter_mut().enumerate() {
        let _ = stream.set_read_timeout(Some(SECONDARY_DEADLINE));
        let start = merged.len();
        let mut local = 0u32;
        loop {
            match read_message(stream) {
                Ok(Message::Plan { txs }) => {
                    for wire in &txs {
                        merged.push(wire_to_planned(wire)?);
                        origin.push((si as u32, local));
                        local += 1;
                    }
                }
                Ok(Message::PlanDone) => break,
                Ok(other) => return Err(format!("expected Plan, got {other:?}")),
                Err(_) => {
                    dead[si] = true;
                    break;
                }
            }
        }
        if dead[si] {
            merged.truncate(start);
            origin.truncate(start);
            diablo_telemetry::counter!("secondary.lost", 1);
        } else {
            planned_counts[si] = local;
        }
    }

    // Apply declared Secondary kills: a worker killed at T submits
    // nothing from T on, so its later transactions leave the plan (the
    // worker itself is still connected — its death is simulated — and
    // later receives Pending fillers for the dropped entries).
    if !faults.secondary_kills().is_empty() {
        let mut dropped = 0u64;
        let mut keep = vec![true; merged.len()];
        for (i, tx) in merged.iter().enumerate() {
            let (si, _) = origin[i];
            if let Some(at) = faults.kill_of_secondary(si as usize) {
                if tx.at >= at {
                    keep[i] = false;
                    dropped += 1;
                }
            }
        }
        if dropped > 0 {
            let mut it = keep.iter();
            merged.retain(|_| *it.next().unwrap());
            let mut it = keep.iter();
            origin.retain(|_| *it.next().unwrap());
            diablo_telemetry::counter!("secondary.killed_txs", dropped);
        }
    }

    // Sort by time, keeping the origin map aligned.
    let mut order: Vec<usize> = (0..merged.len()).collect();
    order.sort_by_key(|&i| merged[i].at);
    let merged_sorted: Vec<PlannedTx> = order.iter().map(|&i| merged[i]).collect();

    // Run the benchmark.
    let mut result = match ChainHarness::new(chain, deployment, dapp, run.clone()) {
        Ok(h) => h.run(merged_sorted, workload_name, spec.duration_secs() as f64),
        Err(reason) => RunResult::unable(chain, workload_name, spec.duration_secs() as f64, reason),
    };

    // Route outcomes back in each Secondary's planning order. Buckets
    // start at the full planned size so entries the kill schedule
    // removed still answer as Pending (a Secondary checks it got one
    // outcome per planned transaction).
    let mut per_secondary: Vec<Vec<WireOutcome>> = planned_counts
        .iter()
        .map(|&n| {
            vec![
                WireOutcome {
                    status: 0,
                    submit_us: 0,
                    decide_us: u64::MAX,
                };
                n as usize
            ]
        })
        .collect();
    for (pos, &idx) in order.iter().enumerate() {
        let (si, local) = origin[idx];
        let rec = &result.records[pos];
        per_secondary[si as usize][local as usize] = WireOutcome {
            status: status_to_wire(rec.status),
            submit_us: rec.submitted.as_micros(),
            decide_us: rec.decided.map(|d| d.as_micros()).unwrap_or(u64::MAX),
        };
    }
    for (si, (stream, outcomes)) in streams.iter_mut().zip(per_secondary).enumerate() {
        if dead[si] {
            continue; // gone from the wire; nothing to answer
        }
        let send = (|| -> Result<(), String> {
            for chunk in outcomes.chunks(CHUNK) {
                write_frame(stream, &encode_outcomes_chunk(chunk))?;
            }
            write_message(stream, &Message::OutcomesDone)
        })();
        if send.is_err() {
            diablo_telemetry::counter!("secondary.lost", 1);
            dead[si] = true;
        }
    }

    // Aggregate the Secondaries' statistics and telemetry reports. The
    // Primary ran the chain itself, so its own recorder holds the run's
    // simulation telemetry; the Secondaries contribute their
    // planning-side snapshots, merged commutatively. A Secondary that
    // dies before reporting is skipped: the aggregation is partial
    // rather than hung.
    let mut telemetry = diablo_telemetry::snapshot();
    for (si, stream) in streams.iter_mut().enumerate() {
        if dead[si] {
            continue;
        }
        type SecondaryReport = (
            diablo_telemetry::TelemetrySnapshot,
            diablo_telemetry::trace::TraceSet,
        );
        let collect = (|| -> Result<SecondaryReport, String> {
            match read_message(stream)? {
                Message::Stats { .. } => {}
                other => return Err(format!("expected Stats, got {other:?}")),
            }
            let snapshot = match read_message(stream)? {
                Message::Telemetry { snapshot } => snapshot,
                other => return Err(format!("expected Telemetry, got {other:?}")),
            };
            let set = match read_message(stream)? {
                Message::TraceChunk { set } => set,
                other => return Err(format!("expected TraceChunk, got {other:?}")),
            };
            let _ = write_message(stream, &Message::Done);
            Ok((snapshot, set))
        })();
        match collect {
            Ok((snapshot, set)) => {
                telemetry.merge(&snapshot);
                // Merged like telemetry: today's planning-side chunks
                // are empty (the merge is the identity), and an untraced
                // run keeps `trace: None` so reports stay byte-identical
                // to an untraced Primary's.
                match result.trace.as_mut() {
                    Some(trace) => trace.merge(&set),
                    None if !set.is_empty() => result.trace = Some(set),
                    None => {}
                }
            }
            Err(_) => {
                diablo_telemetry::counter!("secondary.lost", 1);
                dead[si] = true;
            }
        }
    }

    // The report's lost set: workers gone from the wire plus workers
    // the fault plan killed in simulation.
    let lost_secondaries: Vec<usize> = (0..streams.len())
        .filter(|&si| dead[si] || faults.kill_of_secondary(si).is_some())
        .collect();

    Ok(Report {
        result,
        secondaries: streams.len(),
        clients,
        telemetry,
        faults,
        lost_secondaries,
        live_diff: None,
    })
}

/// Error of a Secondary run, split so callers can map connection
/// transience onto distinct process exit codes.
#[derive(Debug)]
pub enum SecondaryError {
    /// The Primary could not be reached (or the address is nonsense);
    /// `ConnectorError::is_transient` tells the two apart.
    Connect(crate::abstraction::ConnectorError),
    /// The wire protocol failed after the connection was up.
    Protocol(String),
}

impl std::fmt::Display for SecondaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecondaryError::Connect(e) => write!(f, "{e}"),
            SecondaryError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SecondaryError {}

/// Runs the Secondary end of the distributed mode against the Primary
/// at `addr`, retrying the default policy's worth of transient connect
/// failures. Returns the local statistics text it reported.
pub fn run_secondary(addr: &str, tag: &str) -> Result<String, String> {
    run_secondary_with_retry(addr, tag, &diablo_chains::RetryPolicy::default())
        .map_err(|e| e.to_string())
}

/// [`run_secondary`] under an explicit connect-retry policy (the
/// `--retry` grammar): a refused or reset connection — transient, the
/// Primary may still be binding — is retried with doubling backoff; an
/// address that cannot resolve fails fast.
pub fn run_secondary_with_retry(
    addr: &str,
    tag: &str,
    retry: &diablo_chains::RetryPolicy,
) -> Result<String, SecondaryError> {
    use crate::abstraction::ConnectorError;
    use diablo_net::{dial, DialErrorKind, DialPolicy};

    diablo_telemetry::reset();
    let policy = DialPolicy {
        attempts: retry.attempts,
        backoff: std::time::Duration::from_micros(retry.backoff.as_micros()),
        deadline: std::time::Duration::from_micros(retry.timeout.as_micros()),
    };
    let stream = dial(addr, &policy).map_err(|e| {
        diablo_telemetry::counter!("secondary.dial_failed", 1);
        SecondaryError::Connect(match e.kind {
            DialErrorKind::BadAddress => ConnectorError::BadAddress {
                addr: e.addr,
                reason: e.reason,
            },
            DialErrorKind::Unreachable => ConnectorError::Unreachable {
                addr: e.addr,
                reason: e.reason,
            },
        })
    })?;
    secondary_session(stream, tag).map_err(SecondaryError::Protocol)
}

/// The Secondary's side of the wire protocol, from Hello to Done, on an
/// established connection.
fn secondary_session(mut stream: TcpStream, tag: &str) -> Result<String, String> {
    write_message(
        &mut stream,
        &Message::Hello {
            tag: tag.to_string(),
        },
    )?;
    let (spec_text, chain_name, range) = match read_message(&mut stream)? {
        Message::Assign {
            chain,
            spec,
            first,
            last,
        } => (spec, chain, (first, last)),
        other => return Err(format!("expected Assign, got {other:?}")),
    };
    let chain = Chain::parse(&chain_name).ok_or_else(|| format!("unknown chain {chain_name}"))?;
    let spec = BenchmarkSpec::parse(&spec_text).map_err(|e| e.to_string())?;

    // Presign (plan) the assigned client share, timing it: §4's
    // Secondaries "constantly check if the submission time is not too
    // late compared to the time demanded by the Primary and emit a
    // warning otherwise". In virtual time nothing can be late, but a
    // Secondary that presigns slower than the workload's real-time rate
    // would lag a live deployment, so we warn on that.
    let plan_started = std::time::Instant::now();
    let mut conn = adapters::connector(chain);
    declare_resources(&spec, &mut conn).map_err(|e| e.to_string())?;
    plan_range(&spec, range, &mut conn).map_err(|e| e.to_string())?;
    let plan = conn.take_plan();
    let planned = plan.len();
    diablo_telemetry::counter!("secondary.planned_txs", planned as u64);
    let plan_wall = plan_started.elapsed().as_secs_f64();
    let workload_secs = spec.duration_secs().max(1) as f64;
    let lag_warning = if plan_wall > workload_secs {
        format!(
            " [warning: presigning took {plan_wall:.1}s for a {workload_secs:.0}s workload —              this secondary would fall behind a live run]"
        )
    } else {
        String::new()
    };
    for chunk in plan.chunks(CHUNK) {
        write_frame(&mut stream, &encode_plan_chunk(chunk))?;
    }
    write_message(&mut stream, &Message::PlanDone)?;

    // Receive outcomes and compute local statistics.
    let mut committed = 0u64;
    let mut latency_sum = 0.0f64;
    let mut received = 0usize;
    loop {
        match read_message(&mut stream)? {
            Message::Outcomes { txs } => {
                for o in &txs {
                    received += 1;
                    let status = status_from_wire(o.status)?;
                    if status == TxStatus::Committed && o.decide_us != u64::MAX {
                        committed += 1;
                        latency_sum += (o.decide_us.saturating_sub(o.submit_us)) as f64 / 1e6;
                    }
                }
            }
            Message::OutcomesDone => break,
            other => return Err(format!("expected Outcomes, got {other:?}")),
        }
    }
    if received != planned {
        return Err(format!(
            "planned {planned} transactions but got {received} outcomes"
        ));
    }
    let avg_latency = if committed > 0 {
        latency_sum / committed as f64
    } else {
        0.0
    };
    let text = format!(
        "secondary {tag}: {planned} sent, {committed} {}, avg latency {avg_latency:.2}s{lag_warning}",
        status_name(TxStatus::Committed)
    );
    write_message(&mut stream, &Message::Stats { text: text.clone() })?;
    write_message(
        &mut stream,
        &Message::Telemetry {
            snapshot: diablo_telemetry::snapshot(),
        },
    )?;
    write_message(
        &mut stream,
        &Message::TraceChunk {
            set: diablo_telemetry::trace::take().unwrap_or_default(),
        },
    )?;
    match read_message(&mut stream)? {
        Message::Done => Ok(text),
        other => Err(format!("expected Done, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_messages() {
        let messages = vec![
            Message::Hello {
                tag: "us-east-2".into(),
            },
            Message::Assign {
                chain: "Quorum".into(),
                spec: "workloads: []".into(),
                first: 0,
                last: 3,
            },
            Message::Plan {
                txs: vec![
                    WireTx {
                        at_us: 1,
                        sender: 2,
                        kind: 0,
                        dapp: 0,
                        seq: 0,
                        entry: 0,
                        args: [0, 0],
                        argc: 0,
                    },
                    WireTx {
                        at_us: 99,
                        sender: 7,
                        kind: 2,
                        dapp: 3,
                        seq: 42,
                        entry: 1,
                        args: [4000, -7],
                        argc: 2,
                    },
                ],
            },
            Message::PlanDone,
            Message::Outcomes {
                txs: vec![WireOutcome {
                    status: 1,
                    submit_us: 5,
                    decide_us: 10,
                }],
            },
            Message::OutcomesDone,
            Message::Stats { text: "ok".into() },
            Message::Telemetry {
                snapshot: {
                    let mut s = diablo_telemetry::TelemetrySnapshot::default();
                    s.counters.push(("mempool.admitted".into(), 42));
                    s.gauges.push(("mempool.depth_peak".into(), -3));
                    s.histograms.push((
                        "consensus.ibft.round_us".into(),
                        diablo_telemetry::HistogramSnapshot {
                            count: 2,
                            sum: 300,
                            min: 100,
                            max: 200,
                            buckets: vec![(96, 1), (101, 1)],
                        },
                    ));
                    s.spans.push((
                        "harness;commit".into(),
                        diablo_telemetry::SpanStat {
                            count: 5,
                            inclusive_us: 900,
                            exclusive_us: 400,
                        },
                    ));
                    s
                },
            },
            Message::TraceChunk {
                set: diablo_telemetry::trace::TraceSet {
                    seed: 42,
                    cap: 64,
                    txs: vec![
                        diablo_telemetry::trace::TxTrace {
                            id: 7,
                            events: vec![
                                diablo_telemetry::trace::TraceEvent {
                                    stage: diablo_telemetry::trace::TraceStage::Submitted,
                                    at_us: 1_000,
                                    arg0: 3,
                                    arg1: 0,
                                },
                                diablo_telemetry::trace::TraceEvent {
                                    stage: diablo_telemetry::trace::TraceStage::Finalized,
                                    at_us: 2_500,
                                    arg0: 1,
                                    arg1: 0,
                                },
                            ],
                        },
                        diablo_telemetry::trace::TxTrace {
                            id: 9,
                            events: vec![diablo_telemetry::trace::TraceEvent {
                                stage: diablo_telemetry::trace::TraceStage::Rejected,
                                at_us: 4_000,
                                arg0: 0,
                                arg1: 0,
                            }],
                        },
                    ],
                },
            },
            Message::TraceChunk {
                set: diablo_telemetry::trace::TraceSet::default(),
            },
            Message::Done,
        ];
        for msg in messages {
            let framed = encode(&msg);
            let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, framed.len());
            let decoded = decode(&framed[4..]).unwrap();
            assert_eq!(decoded, msg, "roundtrip failed");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err());
        // Truncated plan: claims one tx, provides none.
        let mut body = ByteBuf::new();
        body.put_u8(3);
        body.put_u32_le(1);
        assert!(decode(&body).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8_without_consuming() {
        // Hello with a 2-byte string body that is not UTF-8.
        let mut body = ByteBuf::new();
        body.put_u8(1);
        body.put_u32_le(2);
        body.put_slice(&[0xFF, 0xFE]);
        assert!(decode(&body).unwrap_err().contains("utf-8"));
    }

    #[test]
    fn slice_chunk_encoders_match_owned_messages() {
        // The zero-copy chunk paths must stay byte-identical to the
        // owned `Message` encoding the receiver decodes.
        let outcomes: Vec<WireOutcome> = (0..100)
            .map(|i| WireOutcome {
                status: (i % 7) as u8,
                submit_us: i * 13,
                decide_us: if i % 3 == 0 { u64::MAX } else { i * 17 },
            })
            .collect();
        for chunk in outcomes.chunks(33) {
            let zero_copy = encode_outcomes_chunk(chunk);
            let owned = encode(&Message::Outcomes {
                txs: chunk.to_vec(),
            });
            assert_eq!(zero_copy, owned);
        }

        let plan: Vec<PlannedTx> = (0..50)
            .map(|i| PlannedTx {
                at: SimTime::from_millis(i),
                sender: i as u32,
                payload: if i % 2 == 0 {
                    Payload::Transfer
                } else {
                    Payload::Invoke {
                        dapp: DApp::Gaming,
                        seq: i,
                        call: None,
                    }
                },
            })
            .collect();
        for chunk in plan.chunks(17) {
            let zero_copy = encode_plan_chunk(chunk);
            let owned = encode(&Message::Plan {
                txs: chunk.iter().map(planned_to_wire).collect(),
            });
            assert_eq!(zero_copy, owned);
        }
    }

    #[test]
    fn planned_wire_roundtrip() {
        let txs = vec![
            PlannedTx {
                at: SimTime::from_millis(5),
                sender: 9,
                payload: Payload::Transfer,
            },
            PlannedTx {
                at: SimTime::from_secs(2),
                sender: 1,
                payload: Payload::Invoke {
                    dapp: DApp::Mobility,
                    seq: 77,
                    call: None,
                },
            },
            PlannedTx {
                at: SimTime::from_secs(3),
                sender: 4,
                payload: Payload::Invoke {
                    dapp: DApp::Gaming,
                    seq: 5,
                    call: Some(CallSel {
                        entry: 0,
                        args: [1, 1],
                        argc: 2,
                    }),
                },
            },
        ];
        for tx in txs {
            let wire = planned_to_wire(&tx);
            assert_eq!(wire_to_planned(&wire).unwrap(), tx);
        }
    }

    #[test]
    fn status_codes_roundtrip() {
        for status in [
            TxStatus::Pending,
            TxStatus::Committed,
            TxStatus::DroppedPoolFull,
            TxStatus::DroppedPerSender,
            TxStatus::DroppedExpired,
            TxStatus::Failed,
            TxStatus::Rejected,
        ] {
            assert_eq!(status_from_wire(status_to_wire(status)).unwrap(), status);
        }
        assert!(status_from_wire(42).is_err());
    }
}
