//! The Diablo benchmark framework (the paper's §4), in Rust.
//!
//! Diablo evaluates blockchains with realistic decentralized
//! applications. The framework has two roles:
//!
//! - the **Primary** coordinates an experiment: it parses the benchmark
//!   configuration ([`spec`]), deploys resources, dispatches workload
//!   shares to the Secondaries, launches the run and aggregates the
//!   per-transaction results into JSON/CSV reports ([`output`]);
//! - the **Secondaries** presign and execute the workload against their
//!   collocated blockchain nodes, recording submission and decision
//!   times ([`secondary`]).
//!
//! Blockchains plug in through a four-function abstraction
//! ([`abstraction`]): `create_client`, `create_resource`, `encode` and
//! `trigger` — exactly the surface the paper asks a new blockchain to
//! implement. The six built-in adapters ([`adapters`]) bind those
//! functions to the simulated networks of `diablo-chains`.
//!
//! Two execution modes are provided: [`primary::run_local`] plans on
//! in-process worker threads (the fast path used by the benchmark
//! harness), and [`wire`] implements the distributed Primary/Secondary
//! protocol over TCP, as deployed in the paper's experiments.

#![warn(missing_docs)]

pub mod abstraction;
pub mod adapters;
pub mod analysis;
pub mod bytebuf;
pub mod json;
pub mod live;
pub mod livediff;
pub mod output;
pub mod primary;
pub mod report;
pub mod secondary;
pub mod setup;
pub mod spec;
pub mod tracediff;
pub mod wire;
pub mod yaml;

pub use abstraction::{
    ClientId, Connector, ConnectorError, Encoded, Interaction, InteractionEvent, ResourceSpec,
    SimConnector,
};
pub use bytebuf::{ByteBuf, ByteReader};
pub use live::run_live;
pub use livediff::LiveDiff;
pub use primary::{run_local, BenchmarkOptions};
pub use report::Report;
pub use setup::Setup;
pub use spec::{Behavior, BenchmarkSpec, InteractionSpec, SpecError, WorkloadGroup};

/// Default signing-account pool when a spec omits `!account` (the
/// paper's workloads submit from 2,000 different accounts, §5.2).
pub const DEFAULT_ACCOUNTS: u32 = 2_000;
