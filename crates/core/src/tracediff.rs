//! `trace-diff`: deterministic comparison of two Chrome trace files.
//!
//! Loads two files written by `--trace-out`, aligns transactions by
//! identity (the Chrome `tid`, which the tracer sets to the run-global
//! transaction id), and reports per-stage latency deltas. Because the
//! sampler's membership is a pure function of the seed and the id set,
//! two runs of the same workload at the same seed trace the *same*
//! transactions — the alignment is total and the diff attributes a
//! configuration change (say, a different `sigverify:` setting) to the
//! lifecycle stage it actually lengthened.
//!
//! Only complete (`"ph":"X"`) duration events participate: instant
//! events carry no duration and flow events are presentation glue.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// The canonical waterfall order (`TraceSet::waterfall`), plus the
/// synthetic end-to-end row.
const STAGES: [&str; 6] = [
    "network",
    "mempool",
    "consensus",
    "execution",
    "storage",
    "finality",
];

/// One transaction's per-stage durations, µs.
type StageDurs = BTreeMap<&'static str, u64>;

/// Per-stage latency deltas between two aligned trace files.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDiff {
    /// Stage name (a waterfall phase, or `total` for end-to-end).
    pub stage: &'static str,
    /// Transactions carrying the stage in both files.
    pub matched: usize,
    /// Mean of `b − a`, µs.
    pub mean_us: f64,
    /// Median delta, µs.
    pub p50_us: i64,
    /// 95th-percentile delta, µs.
    pub p95_us: i64,
    /// 99th-percentile delta, µs.
    pub p99_us: i64,
}

/// The full diff of two trace files.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Transactions present in both files.
    pub aligned: usize,
    /// Transactions only in the first file.
    pub only_a: usize,
    /// Transactions only in the second file.
    pub only_b: usize,
    /// Per-stage deltas in waterfall order, then `total`. Stages absent
    /// from both files are omitted.
    pub stages: Vec<StageDiff>,
}

/// Parses a `--trace-out` file into `tid → stage → duration µs`.
pub fn parse_trace(text: &str) -> Result<BTreeMap<u64, StageDurs>, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("not a Chrome trace file: no traceEvents array")?;
    let mut txs: BTreeMap<u64, StageDurs> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");
        let Some(stage) = STAGES.iter().find(|&&s| s == name) else {
            continue; // foreign duration events pass through silently
        };
        let tid = event
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or("duration event without tid")? as u64;
        let dur = event
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or("duration event without dur")? as u64;
        txs.entry(tid).or_default().insert(stage, dur);
    }
    Ok(txs)
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[i64], p: usize) -> i64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Diffs two parsed trace files: per-stage deltas (`b − a`) over the
/// transactions both traced.
pub fn diff(a: &BTreeMap<u64, StageDurs>, b: &BTreeMap<u64, StageDurs>) -> TraceDiff {
    let aligned: Vec<u64> = a.keys().filter(|id| b.contains_key(id)).copied().collect();
    let only_a = a.len() - aligned.len();
    let only_b = b.len() - aligned.len();

    let mut stages = Vec::new();
    let mut totals: Vec<i64> = Vec::new();
    let mut total_count = 0usize;
    for stage in STAGES {
        let mut deltas: Vec<i64> = Vec::new();
        for id in &aligned {
            let (da, db) = (a[id].get(stage), b[id].get(stage));
            if let (Some(&da), Some(&db)) = (da, db) {
                deltas.push(db as i64 - da as i64);
            }
        }
        if deltas.is_empty() {
            continue;
        }
        deltas.sort_unstable();
        let sum: i64 = deltas.iter().sum();
        stages.push(StageDiff {
            stage,
            matched: deltas.len(),
            mean_us: sum as f64 / deltas.len() as f64,
            p50_us: percentile(&deltas, 50),
            p95_us: percentile(&deltas, 95),
            p99_us: percentile(&deltas, 99),
        });
    }
    // End-to-end: the sum of each transaction's stage durations in both
    // files (stages telescope, so this is decided − submitted).
    for id in &aligned {
        let ta: u64 = a[id].values().sum();
        let tb: u64 = b[id].values().sum();
        totals.push(tb as i64 - ta as i64);
        total_count += 1;
    }
    if total_count > 0 {
        totals.sort_unstable();
        let sum: i64 = totals.iter().sum();
        stages.push(StageDiff {
            stage: "total",
            matched: total_count,
            mean_us: sum as f64 / total_count as f64,
            p50_us: percentile(&totals, 50),
            p95_us: percentile(&totals, 95),
            p99_us: percentile(&totals, 99),
        });
    }

    TraceDiff {
        aligned: aligned.len(),
        only_a,
        only_b,
        stages,
    }
}

/// Parses and diffs two trace file bodies.
pub fn diff_texts(a: &str, b: &str) -> Result<TraceDiff, String> {
    Ok(diff(&parse_trace(a)?, &parse_trace(b)?))
}

/// Renders a diff as the `trace-diff` subcommand's report.
pub fn render(d: &TraceDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace-diff: {} transactions aligned ({} only in A, {} only in B)",
        d.aligned, d.only_a, d.only_b
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "stage", "txs", "mean \u{394}\u{b5}s", "p50", "p95", "p99"
    );
    for s in &d.stages {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>+12.1} {:>+10} {:>+10} {:>+10}",
            s.stage, s.matched, s.mean_us, s.p50_us, s.p95_us, s.p99_us
        );
    }
    if d.stages.is_empty() {
        let _ = writeln!(out, "(no stages in common)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(entries: &[(u64, &str, u64, u64)]) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, (tid, name, ts, dur)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{tid}}}"
            ));
        }
        out.push_str("]}");
        out
    }

    #[test]
    fn attributes_delta_to_the_changed_stage() {
        // B's execution stage is uniformly 500µs longer; every other
        // stage is unchanged. The diff must say exactly that.
        let a = trace(&[
            (0, "mempool", 0, 100),
            (0, "execution", 100, 1_000),
            (1, "mempool", 0, 120),
            (1, "execution", 120, 1_100),
        ]);
        let b = trace(&[
            (0, "mempool", 0, 100),
            (0, "execution", 100, 1_500),
            (1, "mempool", 0, 120),
            (1, "execution", 120, 1_600),
        ]);
        let d = diff_texts(&a, &b).unwrap();
        assert_eq!(d.aligned, 2);
        assert_eq!((d.only_a, d.only_b), (0, 0));
        let by_name: BTreeMap<&str, &StageDiff> =
            d.stages.iter().map(|s| (s.stage, s)).collect();
        assert_eq!(by_name["mempool"].p50_us, 0);
        assert_eq!(by_name["execution"].p50_us, 500);
        assert_eq!(by_name["execution"].mean_us, 500.0);
        assert_eq!(by_name["total"].p50_us, 500);
    }

    #[test]
    fn unaligned_transactions_are_counted_not_diffed() {
        let a = trace(&[(0, "mempool", 0, 10), (1, "mempool", 0, 20)]);
        let b = trace(&[(1, "mempool", 0, 25), (2, "mempool", 0, 30)]);
        let d = diff_texts(&a, &b).unwrap();
        assert_eq!(d.aligned, 1);
        assert_eq!((d.only_a, d.only_b), (1, 1));
        assert_eq!(d.stages[0].p50_us, 5);
    }

    #[test]
    fn ignores_instant_and_flow_events() {
        let a = "{\"traceEvents\":[\
                  {\"name\":\"submitted\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0,\"s\":\"t\"},\
                  {\"name\":\"tx\",\"ph\":\"s\",\"id\":0,\"ts\":1,\"pid\":1,\"tid\":0},\
                  {\"name\":\"network\",\"ph\":\"X\",\"ts\":1,\"dur\":9,\"pid\":1,\"tid\":0}]}";
        let parsed = parse_trace(a).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[&0].len(), 1);
        assert_eq!(parsed[&0]["network"], 9);
    }

    #[test]
    fn rejects_non_trace_files() {
        assert!(parse_trace("{\"foo\":1}").is_err());
        assert!(parse_trace("not json").is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<i64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 95), 95);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}
