//! The blockchain setup file.
//!
//! The paper's primary takes two configuration files: the workload
//! specification and a *blockchain setup* file describing the deployed
//! network — "the blockchain configuration file is necessary to
//! generate the workload appropriately because the transaction
//! distribution depends on the number and locations of the deployed
//! blockchain nodes" (§4). This module parses that file:
//!
//! ```yaml
//! interface: quorum
//! nodes:
//!   - { region: "us-east-2", machine: "c5.2xlarge", count: 20 }
//!   - { region: "eu-north-1", machine: "c5.2xlarge", count: 20 }
//! ```
//!
//! or, shorthand, one of the paper's five standard configurations:
//!
//! ```yaml
//! interface: quorum
//! deployment: consortium
//! ```

use diablo_chains::Chain;
use diablo_net::{DeploymentConfig, DeploymentKind, InstanceType, NodeSite, Region};

use crate::spec::SpecError;
use crate::yaml::{self, Value};

/// A parsed blockchain setup.
#[derive(Debug, Clone)]
pub struct Setup {
    /// The chain under test.
    pub chain: Chain,
    /// Where its nodes run.
    pub config: DeploymentConfig,
}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Parses an instance-type name (`c5.xlarge`, `c5.2xlarge`, `c5.9xlarge`).
fn parse_instance(name: &str) -> Result<InstanceType, SpecError> {
    match name.trim() {
        "c5.xlarge" => Ok(InstanceType::C5Xlarge),
        "c5.2xlarge" => Ok(InstanceType::C52xlarge),
        "c5.9xlarge" => Ok(InstanceType::C59xlarge),
        other => Err(err(format!("unknown machine type `{other}`"))),
    }
}

impl Setup {
    /// Parses a setup file.
    pub fn parse(text: &str) -> Result<Setup, SpecError> {
        let root = yaml::parse(text).map_err(SpecError::from)?;
        let chain_name = root
            .get("interface")
            .and_then(Value::as_str)
            .ok_or_else(|| err("setup needs an `interface` (chain name)"))?;
        let chain = Chain::parse(chain_name)
            .ok_or_else(|| err(format!("unknown blockchain interface `{chain_name}`")))?;

        if let Some(kind) = root.get("deployment") {
            let name = kind
                .as_str()
                .ok_or_else(|| err("`deployment` must be a name"))?;
            let kind = DeploymentKind::parse(name)
                .ok_or_else(|| err(format!("unknown deployment `{name}`")))?;
            return Ok(Setup {
                chain,
                config: DeploymentConfig::standard(kind),
            });
        }

        let nodes = root
            .get("nodes")
            .ok_or_else(|| err("setup needs `nodes` or a `deployment` shorthand"))?
            .as_list()
            .ok_or_else(|| err("`nodes` must be a list"))?;
        let mut sites = Vec::new();
        for node in nodes {
            let region_name = node
                .get("region")
                .and_then(Value::as_str)
                .ok_or_else(|| err("node entry needs a `region`"))?;
            let region = Region::parse(region_name)
                .ok_or_else(|| err(format!("unknown region `{region_name}`")))?;
            let machine = parse_instance(
                node.get("machine")
                    .and_then(Value::as_str)
                    .unwrap_or("c5.xlarge"),
            )?;
            let count = node.get("count").and_then(Value::as_u64).unwrap_or(1) as usize;
            if count == 0 {
                return Err(err("node `count` must be positive"));
            }
            for _ in 0..count {
                sites.push(NodeSite {
                    region,
                    machine: diablo_net::MachineSpec::new(machine),
                });
            }
        }
        if sites.is_empty() {
            return Err(err("setup deploys no nodes"));
        }
        let config = DeploymentConfig::from_sites(DeploymentKind::Devnet, sites);
        Ok(Setup { chain, config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shorthand() {
        let s = Setup::parse("interface: quorum\ndeployment: consortium\n").unwrap();
        assert_eq!(s.chain, Chain::Quorum);
        assert_eq!(s.config.node_count(), 200);
        assert_eq!(s.config.machine().vcpus(), 8);
    }

    #[test]
    fn explicit_node_list() {
        let text = r#"
interface: solana
nodes:
  - { region: "us-east-2", machine: "c5.9xlarge", count: 3 }
  - { region: "eu-north-1", machine: "c5.9xlarge", count: 2 }
  - { region: "Tokyo", count: 1 }
"#;
        let s = Setup::parse(text).unwrap();
        assert_eq!(s.chain, Chain::Solana);
        assert_eq!(s.config.node_count(), 6);
        assert_eq!(s.config.region_count(), 3);
        assert_eq!(s.config.sites()[0].region, Region::Ohio);
        assert_eq!(s.config.sites()[5].machine.vcpus(), 4); // default c5.xlarge
    }

    #[test]
    fn errors_are_specific() {
        assert!(Setup::parse("nodes: []\n")
            .unwrap_err()
            .0
            .contains("interface"));
        assert!(Setup::parse("interface: bitcoin\n")
            .unwrap_err()
            .0
            .contains("unknown blockchain"));
        assert!(Setup::parse("interface: diem\n")
            .unwrap_err()
            .0
            .contains("nodes"));
        let bad_region = "interface: diem\nnodes:\n  - { region: \"mars-west-1\" }\n";
        assert!(Setup::parse(bad_region)
            .unwrap_err()
            .0
            .contains("unknown region"));
        let bad_machine =
            "interface: diem\nnodes:\n  - { region: \"us-east-2\", machine: \"m5.large\" }\n";
        assert!(Setup::parse(bad_machine)
            .unwrap_err()
            .0
            .contains("unknown machine"));
    }
}
