//! The blockchain abstraction of §4.
//!
//! Diablo models a blockchain as a tuple ⟨E, R, I⟩: endpoints, resources
//! (accounts, contract state) and interaction types (`transfer_X`,
//! `invoke_D_Xs`). Adding a blockchain means implementing four
//! functions, which become the [`Connector`] trait here:
//!
//! 1. `s.create_client(E)` — make a client bound to a set of endpoints,
//! 2. `create_resource(φʳ)` — provision accounts / deploy contracts,
//! 3. `encode(φⁱ, r, t)` — turn an interaction into an opaque, presigned
//!    payload, and
//! 4. `c.trigger(e)` — schedule the encoded payload for submission.
//!
//! The paper's per-chain implementations are 1,000–1,200 lines of Go
//! each; here each chain's adapter (see [`crate::adapters`]) binds the
//! same four functions to the simulated networks of `diablo-chains`.

use diablo_chains::{tx::CallSel, Payload, PlannedTx};
use diablo_contracts::DApp;
use diablo_sim::SimTime;

/// An interaction as specified by the benchmark (`φⁱ` applied to
/// concrete resources).
#[derive(Debug, Clone, PartialEq)]
pub enum Interaction {
    /// `transfer_X`: move `amount` coins between pool accounts.
    Transfer {
        /// Signing account (index into the declared pool).
        from: u32,
        /// Destination account.
        to: u32,
        /// Coins moved.
        amount: u64,
    },
    /// `invoke_D_Xs`: call `function(args)` on a deployed DApp.
    Invoke {
        /// Signing account.
        from: u32,
        /// The contract name as declared in the spec.
        contract: String,
        /// Function name.
        function: String,
        /// Call arguments.
        args: Vec<i64>,
    },
}

/// An interaction event `(c, i, r, t)`: client, interaction, time.
/// (The resource is embedded in the interaction.)
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionEvent {
    /// The issuing client (worker thread).
    pub client: ClientId,
    /// What to do.
    pub interaction: Interaction,
    /// When to submit it.
    pub at: SimTime,
}

/// Handle to a client created by [`Connector::create_client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u32);

/// A resource declaration (`φʳ`).
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceSpec {
    /// A pool of `number` funded accounts.
    Accounts {
        /// Pool size.
        number: u32,
    },
    /// A deployed DApp contract, by spec name (e.g. `dota`).
    Contract {
        /// The contract name.
        name: String,
    },
}

/// An encoded, presigned interaction, ready to trigger.
///
/// Opaque to the framework: only the adapter that produced it can
/// interpret it (here it wraps the simulator's planned transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoded {
    pub(crate) planned: PlannedTx,
}

impl Encoded {
    /// The submission instant baked into the encoding.
    pub fn at(&self) -> SimTime {
        self.planned.at
    }
}

/// Why a [`Connector`] call failed.
///
/// Typed so callers — most importantly retry logic — can match on the
/// error class instead of parsing strings: [`ConnectorError::is_transient`]
/// distinguishes failures worth retrying (a node shedding load, a
/// mangled submission) from specification errors that no retry fixes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConnectorError {
    /// A [`ClientId`] that no [`Connector::create_client`] call of this
    /// connector produced.
    UnknownClient {
        /// The offending client id.
        client: u32,
    },
    /// A contract name the suite does not know at all.
    UnknownContract {
        /// The spec name.
        name: String,
    },
    /// A known contract that was never deployed via
    /// [`Connector::create_resource`].
    NotDeployed {
        /// The spec name.
        name: String,
    },
    /// The deployed contract has no entry with this name.
    UnknownFunction {
        /// The contract's spec name.
        contract: String,
        /// The missing function.
        function: String,
    },
    /// More call arguments than the ABI supports.
    TooManyArguments {
        /// The function called.
        function: String,
        /// Arguments given.
        given: usize,
        /// Arguments supported.
        max: usize,
    },
    /// A call argument outside the ABI's representable range.
    ArgumentOutOfRange {
        /// The function called.
        function: String,
        /// The offending value.
        value: i64,
    },
    /// A resource declaration that provisions nothing.
    EmptyResource {
        /// What was declared empty.
        what: String,
    },
    /// The endpoint is shedding load (full queue, rate limit); the
    /// submission may succeed later.
    ResourceExhausted {
        /// Which resource ran out.
        what: String,
    },
    /// The endpoint rejected the submission outright (corrupted
    /// payload, failed prevalidation).
    Rejected {
        /// The node's stated reason.
        reason: String,
    },
    /// A live endpoint could not be reached over the wire (connection
    /// refused, reset, timed out) — the peer may simply not be up yet,
    /// so retrying per the [`diablo_chains::RetryPolicy`] is warranted.
    Unreachable {
        /// The address dialed.
        addr: String,
        /// The socket error.
        reason: String,
    },
    /// A live endpoint address that cannot resolve at all (malformed
    /// host:port, failed name resolution) — no retry fixes it.
    BadAddress {
        /// The address given.
        addr: String,
        /// Why it does not resolve.
        reason: String,
    },
}

impl ConnectorError {
    /// Whether retrying the same call later could succeed: true only
    /// for load-dependent failures, never for specification errors.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ConnectorError::ResourceExhausted { .. }
                | ConnectorError::Rejected { .. }
                | ConnectorError::Unreachable { .. }
        )
    }
}

impl std::fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectorError::UnknownClient { client } => write!(f, "unknown client {client}"),
            ConnectorError::UnknownContract { name } => write!(f, "unknown contract `{name}`"),
            ConnectorError::NotDeployed { name } => write!(f, "contract `{name}` not deployed"),
            ConnectorError::UnknownFunction { contract, function } => {
                write!(f, "contract `{contract}` has no function `{function}`")
            }
            ConnectorError::TooManyArguments {
                function,
                given,
                max,
            } => write!(
                f,
                "function `{function}` called with {given} arguments (max {max})"
            ),
            ConnectorError::ArgumentOutOfRange { function, value } => {
                write!(f, "argument {value} out of range for `{function}`")
            }
            ConnectorError::EmptyResource { what } => write!(f, "{what} must be non-empty"),
            ConnectorError::ResourceExhausted { what } => write!(f, "{what} exhausted"),
            ConnectorError::Rejected { reason } => write!(f, "submission rejected: {reason}"),
            ConnectorError::Unreachable { addr, reason } => {
                write!(f, "`{addr}` unreachable: {reason}")
            }
            ConnectorError::BadAddress { addr, reason } => {
                write!(f, "bad address `{addr}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ConnectorError {}

/// The four-function blockchain abstraction.
pub trait Connector {
    /// The adapter/chain name.
    fn name(&self) -> &str;

    /// Creates a client that submits through the endpoints matching the
    /// `view` patterns (function 1).
    fn create_client(&mut self, view: &[String]) -> Result<ClientId, ConnectorError>;

    /// Provisions a resource: funds accounts or deploys a contract
    /// (function 2).
    fn create_resource(&mut self, resource: &ResourceSpec) -> Result<(), ConnectorError>;

    /// Encodes (presigns) one interaction for submission at `at`
    /// (function 3).
    fn encode(&mut self, interaction: &Interaction, at: SimTime)
        -> Result<Encoded, ConnectorError>;

    /// Schedules an encoded interaction on a client (function 4).
    fn trigger(&mut self, client: ClientId, encoded: Encoded) -> Result<(), ConnectorError>;
}

/// Connector state shared by all simulated chains: tracks declared
/// resources and accumulates each client's submission plan.
#[derive(Debug)]
pub struct SimConnector {
    name: String,
    /// Declared account pool size (0 until created).
    accounts: u32,
    /// Deployed contracts by spec name.
    contracts: Vec<(String, DApp)>,
    /// Per-client planned submissions.
    plans: Vec<Vec<PlannedTx>>,
    /// Global invocation sequence (argument variation).
    next_seq: u64,
}

impl SimConnector {
    /// A connector for the named simulated chain.
    pub fn new(name: impl Into<String>) -> Self {
        SimConnector {
            name: name.into(),
            accounts: 0,
            contracts: Vec::new(),
            plans: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of clients created so far.
    pub fn client_count(&self) -> usize {
        self.plans.len()
    }

    /// The DApp deployed under `name`, if any.
    pub fn contract(&self, name: &str) -> Option<DApp> {
        self.contracts
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, d)| d)
    }

    /// Number of distinct contracts deployed.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }

    /// The single DApp of the benchmark, if exactly one is deployed.
    pub fn sole_dapp(&self) -> Option<DApp> {
        match self.contracts.as_slice() {
            [(_, d)] => Some(*d),
            _ => None,
        }
    }

    /// Drains all triggered interactions into one time-sorted plan.
    pub fn take_plan(&mut self) -> Vec<PlannedTx> {
        let mut all: Vec<PlannedTx> = self.plans.iter_mut().flat_map(std::mem::take).collect();
        all.sort_by_key(|t| t.at);
        all
    }
}

impl Connector for SimConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn create_client(&mut self, _view: &[String]) -> Result<ClientId, ConnectorError> {
        // Every simulated node serves every view pattern; the pattern
        // restricts placement, which the simulator derives from the
        // deployment configuration.
        self.plans.push(Vec::new());
        Ok(ClientId(self.plans.len() as u32 - 1))
    }

    fn create_resource(&mut self, resource: &ResourceSpec) -> Result<(), ConnectorError> {
        match resource {
            ResourceSpec::Accounts { number } => {
                if *number == 0 {
                    return Err(ConnectorError::EmptyResource {
                        what: "account pool".to_string(),
                    });
                }
                self.accounts = self.accounts.max(*number);
                Ok(())
            }
            ResourceSpec::Contract { name } => {
                let dapp = DApp::parse(name).ok_or_else(|| ConnectorError::UnknownContract {
                    name: name.clone(),
                })?;
                if self.contract(name).is_none() {
                    self.contracts.push((name.clone(), dapp));
                }
                Ok(())
            }
        }
    }

    fn encode(
        &mut self,
        interaction: &Interaction,
        at: SimTime,
    ) -> Result<Encoded, ConnectorError> {
        let planned = match interaction {
            Interaction::Transfer { from, .. } => PlannedTx {
                at,
                sender: *from,
                payload: Payload::Transfer,
            },
            Interaction::Invoke {
                from,
                contract,
                function,
                args,
            } => {
                let dapp =
                    self.contract(contract)
                        .ok_or_else(|| ConnectorError::NotDeployed {
                            name: contract.clone(),
                        })?;
                // Resolve the spec's function string to an entry index;
                // an empty function string means the default rotation.
                let call = if function.is_empty() {
                    None
                } else {
                    let entry = diablo_contracts::calls::entry_index(dapp, function).ok_or_else(
                        || ConnectorError::UnknownFunction {
                            contract: contract.clone(),
                            function: function.clone(),
                        },
                    )?;
                    if args.len() > 2 {
                        return Err(ConnectorError::TooManyArguments {
                            function: function.clone(),
                            given: args.len(),
                            max: 2,
                        });
                    }
                    let mut packed = [0i32; 2];
                    for (slot, &a) in packed.iter_mut().zip(args.iter()) {
                        *slot =
                            i32::try_from(a).map_err(|_| ConnectorError::ArgumentOutOfRange {
                                function: function.clone(),
                                value: a,
                            })?;
                    }
                    Some(CallSel {
                        entry,
                        args: packed,
                        argc: args.len() as u8,
                    })
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                PlannedTx {
                    at,
                    sender: *from,
                    payload: Payload::Invoke { dapp, seq, call },
                }
            }
        };
        Ok(Encoded { planned })
    }

    fn trigger(&mut self, client: ClientId, encoded: Encoded) -> Result<(), ConnectorError> {
        let plan = self
            .plans
            .get_mut(client.0 as usize)
            .ok_or(ConnectorError::UnknownClient { client: client.0 })?;
        plan.push(encoded.planned);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_function_flow() {
        let mut c = SimConnector::new("quorum");
        c.create_resource(&ResourceSpec::Accounts { number: 100 })
            .unwrap();
        c.create_resource(&ResourceSpec::Contract {
            name: "dota".into(),
        })
        .unwrap();
        let client = c.create_client(&[".*".to_string()]).unwrap();
        let i = Interaction::Invoke {
            from: 3,
            contract: "dota".into(),
            function: "update".into(),
            args: vec![1, 1],
        };
        let e = c.encode(&i, SimTime::from_secs(1)).unwrap();
        assert_eq!(e.at(), SimTime::from_secs(1));
        c.trigger(client, e).unwrap();
        let plan = c.take_plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].sender, 3);
        assert!(matches!(
            plan[0].payload,
            Payload::Invoke {
                dapp: DApp::Gaming,
                ..
            }
        ));
    }

    #[test]
    fn unknown_contract_rejected() {
        let mut c = SimConnector::new("x");
        let err = c
            .create_resource(&ResourceSpec::Contract {
                name: "ponzi".into(),
            })
            .unwrap_err();
        assert_eq!(
            err,
            ConnectorError::UnknownContract {
                name: "ponzi".into()
            }
        );
        assert!(err.to_string().contains("unknown contract"));
        assert!(!err.is_transient(), "a spec error is never retryable");
        let i = Interaction::Invoke {
            from: 0,
            contract: "dota".into(),
            function: "update".into(),
            args: vec![],
        };
        let err = c.encode(&i, SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            ConnectorError::NotDeployed {
                name: "dota".into()
            }
        );
    }

    #[test]
    fn connector_error_is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConnectorError::Rejected {
            reason: "corrupted payload".into(),
        });
        assert!(err.to_string().contains("corrupted payload"));
        let transient = ConnectorError::ResourceExhausted {
            what: "mempool".into(),
        };
        assert!(transient.is_transient());
    }

    #[test]
    fn plan_is_time_sorted_across_clients() {
        let mut c = SimConnector::new("x");
        let a = c.create_client(&[]).unwrap();
        let b = c.create_client(&[]).unwrap();
        let t = Interaction::Transfer {
            from: 0,
            to: 1,
            amount: 1,
        };
        for (client, secs) in [(a, 5), (b, 2), (a, 1), (b, 9)] {
            let e = c.encode(&t, SimTime::from_secs(secs)).unwrap();
            c.trigger(client, e).unwrap();
        }
        let plan = c.take_plan();
        let times: Vec<u64> = plan.iter().map(|p| p.at.as_micros() / 1_000_000).collect();
        assert_eq!(times, vec![1, 2, 5, 9]);
    }

    #[test]
    fn trigger_unknown_client_errors() {
        let mut c = SimConnector::new("x");
        let e = c
            .encode(
                &Interaction::Transfer {
                    from: 0,
                    to: 1,
                    amount: 1,
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(
            c.trigger(ClientId(7), e),
            Err(ConnectorError::UnknownClient { client: 7 })
        );
    }
}
