//! Post-mortem analysis exports.
//!
//! §4: the aggregator's timestamps "can then be used post-mortem to
//! generate time series and analyze the distribution of latencies".
//! This module turns a run into plot-ready artifacts: per-second
//! throughput series, latency CDFs (the Figure 6 curves) and percentile
//! summaries, in gnuplot-friendly whitespace-separated `.dat` format and
//! in CSV for spreadsheets.

use std::fmt::Write as _;

use diablo_chains::RunResult;

/// Latency percentile summary of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency, seconds.
    pub p50: f64,
    /// 90th percentile, seconds.
    pub p90: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Maximum, seconds.
    pub max: f64,
}

/// Computes the latency percentiles of committed transactions
/// (all zero when nothing committed).
pub fn latency_summary(result: &RunResult) -> LatencySummary {
    let cdf = result.latency_cdf();
    LatencySummary {
        p50: cdf.quantile(0.50).unwrap_or(0.0),
        p90: cdf.quantile(0.90).unwrap_or(0.0),
        p99: cdf.quantile(0.99).unwrap_or(0.0),
        max: cdf.quantile(1.0).unwrap_or(0.0),
    }
}

/// Per-second throughput series: `second submitted committed` rows.
pub fn throughput_series_dat(result: &RunResult) -> String {
    let submitted = result.submit_series();
    let committed = result.commit_series();
    let secs = submitted.seconds().max(committed.seconds());
    let mut out = String::from("# second submitted committed\n");
    for sec in 0..secs {
        let _ = writeln!(out, "{sec} {} {}", submitted.get(sec), committed.get(sec));
    }
    out
}

/// Latency CDF as `latency_secs cumulative_fraction` rows, downsampled
/// to at most `max_points` points. The fraction is normalized by the
/// number of *submitted* transactions, so drops appear as a plateau
/// below 1 — exactly how the paper's Figure 6 is drawn.
pub fn latency_cdf_dat(result: &RunResult, max_points: usize) -> String {
    let cdf = result.latency_cdf();
    let submitted = result.submitted().max(1) as f64;
    let scale = cdf.len() as f64 / submitted;
    let mut out = String::from("# latency_secs fraction_of_submitted\n");
    for (latency, fraction) in cdf.sampled_points(max_points) {
        let _ = writeln!(out, "{latency:.4} {:.6}", fraction * scale);
    }
    out
}

/// One-row-per-run comparison CSV for a set of results (the table the
/// figure binaries print, machine-readable).
pub fn comparison_csv(results: &[&RunResult]) -> String {
    let mut out = String::from(
        "chain,workload,submitted,committed,commit_ratio,avg_throughput,avg_latency,\
         p50,p90,p99,max_latency,unable\n",
    );
    for r in results {
        let lat = latency_summary(r);
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
            r.chain.name(),
            r.workload,
            r.submitted(),
            r.committed(),
            r.commit_ratio(),
            r.avg_throughput(),
            r.avg_latency_secs(),
            lat.p50,
            lat.p90,
            lat.p99,
            lat.max,
            r.unable_reason.as_deref().unwrap_or("")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_chains::{Chain, RunResult, TxRecord, TxStatus};
    use diablo_sim::{SimDuration, SimTime};

    fn run_with_latencies(latencies: &[u64]) -> RunResult {
        let records = latencies
            .iter()
            .map(|&l| {
                let submitted = SimTime::from_secs(1);
                TxRecord {
                    submitted,
                    decided: Some(submitted + SimDuration::from_secs(l)),
                    status: TxStatus::Committed,
                }
            })
            .chain(std::iter::once(TxRecord::submitted_at(SimTime::from_secs(
                2,
            ))))
            .collect();
        RunResult {
            chain: Chain::Quorum,
            workload: "t".into(),
            workload_secs: 10.0,
            records,
            unable_reason: None,
            blocks: Vec::new(),
            storage: None,
            trace: None,
        }
    }

    #[test]
    fn percentiles() {
        let r = run_with_latencies(&(1..=100).collect::<Vec<_>>());
        let s = latency_summary(&r);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn series_dat_format() {
        let r = run_with_latencies(&[3]);
        let dat = throughput_series_dat(&r);
        let mut lines = dat.lines();
        assert_eq!(lines.next(), Some("# second submitted committed"));
        assert_eq!(lines.next(), Some("0 0 0"));
        assert_eq!(lines.next(), Some("1 1 0"));
        assert_eq!(lines.next(), Some("2 1 0"));
        // Commit lands at second 4 (submit 1 + latency 3).
        assert!(dat.lines().any(|l| l == "4 0 1"), "{dat}");
    }

    #[test]
    fn cdf_dat_plateaus_below_one_with_drops() {
        let r = run_with_latencies(&[1, 2, 3]); // 3 commits of 4 submitted
        let dat = latency_cdf_dat(&r, 10);
        let last = dat.lines().last().unwrap();
        let fraction: f64 = last.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((fraction - 0.75).abs() < 1e-9, "{dat}");
    }

    #[test]
    fn comparison_csv_has_one_row_per_run() {
        let a = run_with_latencies(&[1]);
        let b = RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into());
        let csv = comparison_csv(&[&a, &b]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("Quorum,t,2,1"));
        assert!(csv.contains("Solana,uber,0,0"));
        assert!(csv.contains("budget exceeded"));
    }
}
