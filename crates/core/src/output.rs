//! Result files: the aggregator's JSON output and the artifact's CSV
//! conversion (§4 and appendix A.3).
//!
//! The Primary "outputs a JSON file, indicating the start time and end
//! time of each transaction", which "can then be used post-mortem to
//! generate time series and analyze the distribution of latencies". The
//! artifact additionally converts results to CSV with one line per
//! transaction (submission time, latency). Both writers live here,
//! including the small JSON serializer (the workspace carries no JSON
//! dependency).

use std::fmt::Write as _;

use diablo_chains::{RunResult, TxStatus};

/// Escapes a string for inclusion in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The status string written to result files.
pub fn status_name(status: TxStatus) -> &'static str {
    match status {
        TxStatus::Pending => "pending",
        TxStatus::Committed => "committed",
        TxStatus::DroppedPoolFull => "dropped-pool-full",
        TxStatus::DroppedPerSender => "dropped-per-sender",
        TxStatus::DroppedExpired => "dropped-expired",
        TxStatus::Failed => "aborted",
        TxStatus::Rejected => "rejected",
    }
}

/// Serializes a run to the Diablo results JSON.
///
/// Schema: `{"chain", "workload", "duration", "stats": {...}, "txs":
/// [[submit_secs, decide_secs | null, "status"], ...]}`.
pub fn results_json(result: &RunResult) -> String {
    let mut out = String::with_capacity(64 + result.records.len() * 32);
    out.push('{');
    let _ = write!(
        out,
        "\"chain\":\"{}\",\"workload\":\"{}\",\"duration\":{:.3},",
        json_escape(result.chain.name()),
        json_escape(&result.workload),
        result.workload_secs
    );
    if let Some(reason) = &result.unable_reason {
        let _ = write!(out, "\"unable\":\"{}\",", json_escape(reason));
    }
    let _ = write!(
        out,
        "\"stats\":{{\"sent\":{},\"committed\":{},\"commitRatio\":{:.6},\
         \"avgThroughput\":{:.3},\"avgLatency\":{:.3},\"medianLatency\":{:.3},\
         \"maxLatency\":{:.3}}},",
        result.submitted(),
        result.committed(),
        result.commit_ratio(),
        result.avg_throughput(),
        result.avg_latency_secs(),
        result.median_latency_secs(),
        result.max_latency_secs()
    );
    // The storage section exists only when the staged commit pipeline
    // ran: disabled runs serialize byte-identically to the pre-store
    // format.
    if let Some(storage) = &result.storage {
        let _ = write!(
            out,
            "\"storage\":{{\"mode\":\"{}\",\"root\":\"{}\",\"blocks\":{},\"txs\":{},\
             \"residentBlocks\":{},\"residentBytes\":{},\"prunedBlocks\":{},\
             \"hotPages\":{},\"frozenPages\":{},\"storageEntries\":{}}},",
            json_escape(&storage.mode),
            storage.root_hex,
            storage.blocks,
            storage.txs,
            storage.resident_blocks,
            storage.resident_bytes,
            storage.pruned_blocks,
            storage.hot_pages,
            storage.frozen_pages,
            storage.storage_entries
        );
    }
    out.push_str("\"txs\":[");
    for (i, rec) in result.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{:.6},", rec.submitted.as_secs_f64());
        match rec.decided {
            Some(d) => {
                let _ = write!(out, "{:.6},", d.as_secs_f64());
            }
            None => out.push_str("null,"),
        }
        let _ = write!(out, "\"{}\"]", status_name(rec.status));
    }
    out.push_str("]}");
    out
}

/// Serializes a run plus its merged telemetry snapshot: the standard
/// [`results_json`] document with an extra top-level `"telemetry"`
/// section (omitted when the snapshot is empty, e.g. in compiled-out
/// builds). The telemetry section is integer-only, so a pinned-seed
/// run serializes byte-identically across machines and worker counts.
pub fn results_json_with_telemetry(
    result: &RunResult,
    telemetry: &diablo_telemetry::TelemetrySnapshot,
) -> String {
    let mut out = results_json(result);
    if telemetry.is_empty() {
        return out;
    }
    let closed = out.pop();
    debug_assert_eq!(closed, Some('}'));
    out.push_str(",\"telemetry\":");
    out.push_str(&telemetry.to_json());
    out.push('}');
    out
}

/// Serializes a full [`crate::Report`]: the standard
/// [`results_json_with_telemetry`] document plus — for live runs — a
/// top-level `"liveDiff"` section with the fidelity score, the
/// throughput comparison, the per-phase median ratios and the number of
/// Secondaries lost mid-run. Reports without a live diff serialize
/// byte-identically to [`results_json_with_telemetry`], so simulated
/// runs keep their pinned-seed golden outputs.
pub fn results_json_report(report: &crate::Report) -> String {
    let mut out = results_json_with_telemetry(&report.result, &report.telemetry);
    let Some(diff) = &report.live_diff else {
        return out;
    };
    let closed = out.pop();
    debug_assert_eq!(closed, Some('}'));
    let _ = write!(
        out,
        ",\"liveDiff\":{{\"fidelity\":{:.6},\"lostSecondaries\":{},\
         \"liveThroughput\":{:.3},\"simThroughput\":{:.3},\
         \"liveLatency\":{:.3},\"simLatency\":{:.3},\"phases\":[",
        diff.fidelity,
        report.lost_secondaries.len(),
        diff.live_throughput,
        diff.sim_throughput,
        diff.live_latency,
        diff.sim_latency
    );
    for (i, p) in diff.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"metric\":\"{}\",\"liveP50\":{},\"simP50\":{},\
             \"ratio\":{:.6}}}",
            p.phase,
            json_escape(&p.metric),
            p.live_p50_us,
            p.sim_p50_us,
            p.ratio
        );
    }
    out.push_str("]}}");
    out
}

/// Converts a run to the artifact's CSV format: one line per
/// transaction with the submission time (seconds) and the commit
/// latency (seconds; empty when not committed), ordered by submission —
/// "the latencies are expressed in seconds and follow the transaction
/// submission times" (appendix A.3).
pub fn results_csv(result: &RunResult) -> String {
    let mut out = String::from("submit,latency,status\n");
    for rec in &result.records {
        match rec.latency_secs() {
            Some(lat) => {
                let _ = writeln!(
                    out,
                    "{:.2},{:.2},{}",
                    rec.submitted.as_secs_f64(),
                    lat,
                    status_name(rec.status)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:.2},,{}",
                    rec.submitted.as_secs_f64(),
                    status_name(rec.status)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_chains::{Chain, TxRecord};
    use diablo_sim::{SimDuration, SimTime};

    fn sample() -> RunResult {
        let t0 = SimTime::from_millis(100);
        RunResult {
            chain: Chain::Algorand,
            workload: "native-10".into(),
            workload_secs: 30.0,
            records: vec![
                TxRecord {
                    submitted: t0,
                    decided: Some(t0 + SimDuration::from_millis(530)),
                    status: TxStatus::Committed,
                },
                TxRecord {
                    submitted: SimTime::from_secs(1),
                    decided: None,
                    status: TxStatus::Pending,
                },
            ],
            unable_reason: None,
            blocks: Vec::new(),
            storage: None,
            trace: None,
        }
    }

    #[test]
    fn json_contains_stats_and_txs() {
        let json = results_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"chain\":\"Algorand\""));
        assert!(json.contains("\"sent\":2"));
        assert!(json.contains("\"committed\":1"));
        assert!(json.contains("[0.100000,0.630000,\"committed\"]"), "{json}");
        assert!(json.contains("null,\"pending\""));
    }

    #[test]
    fn csv_matches_artifact_example_shape() {
        // The screencast example: "the first submitted transaction for
        // Algorand at time 0.10 second took 0.53 seconds to commit".
        let csv = results_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("submit,latency,status"));
        assert_eq!(lines.next(), Some("0.10,0.53,committed"));
        assert_eq!(lines.next(), Some("1.00,,pending"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn telemetry_section_is_appended_when_nonempty() {
        let empty = diablo_telemetry::TelemetrySnapshot::default();
        assert_eq!(
            results_json_with_telemetry(&sample(), &empty),
            results_json(&sample()),
            "empty snapshots leave the document untouched"
        );
        let mut snap = diablo_telemetry::TelemetrySnapshot::default();
        snap.counters.push(("consensus.blocks.committed".into(), 7));
        let json = results_json_with_telemetry(&sample(), &snap);
        assert!(json.ends_with('}'), "{json}");
        assert!(
            json.contains("\"telemetry\":{"),
            "telemetry section present: {json}"
        );
        assert!(json.contains("\"consensus.blocks.committed\":7"), "{json}");
        // Still a parseable document with the original sections intact.
        let parsed = crate::json::parse(&json).expect("valid json");
        assert!(parsed.get("stats").is_some());
        assert!(parsed.get("telemetry").is_some());
    }

    #[test]
    fn storage_section_only_appears_when_the_store_ran() {
        let without = results_json(&sample());
        assert!(!without.contains("\"storage\""), "{without}");

        let mut run = sample();
        run.storage = Some(diablo_chains::StorageReport {
            mode: "distance=3".into(),
            root_hex: "ab".repeat(32),
            blocks: 12,
            txs: 240,
            resident_blocks: 7,
            resident_bytes: 4096,
            pruned_blocks: 5,
            hot_pages: 2,
            frozen_pages: 1,
            storage_entries: 90,
        });
        let json = results_json(&run);
        assert!(json.contains("\"storage\":{\"mode\":\"distance=3\""), "{json}");
        assert!(json.contains("\"prunedBlocks\":5"), "{json}");
        let parsed = crate::json::parse(&json).expect("valid json");
        let storage = parsed.get("storage").expect("storage section");
        assert!(storage.get("root").is_some());
        assert!(storage.get("residentBytes").is_some());
    }

    #[test]
    fn live_diff_section_appears_only_for_live_reports() {
        let mut report = crate::Report {
            result: sample(),
            secondaries: 2,
            clients: 4,
            telemetry: diablo_telemetry::TelemetrySnapshot::default(),
            faults: diablo_chains::FaultPlan::none(),
            lost_secondaries: Vec::new(),
            live_diff: None,
        };
        assert_eq!(
            results_json_report(&report),
            results_json_with_telemetry(&report.result, &report.telemetry),
            "simulated reports keep the pre-live byte format"
        );

        report.live_diff = Some(crate::livediff::diff(
            &crate::livediff::RunSummary::default(),
            &crate::livediff::RunSummary::default(),
        ));
        report.lost_secondaries = vec![1];
        let json = results_json_report(&report);
        assert!(json.contains("\"liveDiff\":{\"fidelity\":"), "{json}");
        assert!(json.contains("\"lostSecondaries\":1"), "{json}");
        let parsed = crate::json::parse(&json).expect("valid json");
        let diff = parsed.get("liveDiff").expect("liveDiff section");
        let fidelity = diff.get("fidelity").and_then(crate::json::Json::as_f64);
        assert!(fidelity.is_some_and(|f| f.is_finite()), "{json}");
    }

    #[test]
    fn unable_runs_serialize_reason() {
        let r = RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into());
        let json = results_json(&r);
        assert!(json.contains("\"unable\":\"budget exceeded\""));
        assert!(json.contains("\"txs\":[]"));
    }
}
