//! A YAML-subset parser for Diablo configuration files.
//!
//! The paper's workload specification language (§4) is YAML with a
//! handful of features: block maps and lists by indentation, inline
//! (flow) maps `{ ... }` and lists `[ ... ]`, scalars, comments,
//! anchors (`&name`), aliases (`*name`) and application tags
//! (`!location`, `!endpoint`, `!account`, `!contract`, `!invoke`,
//! `!transfer`). This module implements exactly that subset — enough to
//! parse every configuration in the paper and the artifact — with
//! precise error positions, so the workspace needs no external YAML
//! dependency.

use std::collections::HashMap;
use std::fmt;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar (string, number, boolean — kept as text).
    Scalar(String),
    /// A sequence.
    List(Vec<Value>),
    /// A mapping with insertion order preserved.
    Map(Vec<(String, Value)>),
    /// A tagged value, e.g. `!account { number: 2000 }`.
    Tagged(String, Box<Value>),
}

impl Value {
    /// The scalar text, if this is a scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// The scalar parsed as an integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_str()?.parse().ok()
    }

    /// The scalar parsed as a float.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_str()?.parse().ok()
    }

    /// The list items, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Unwraps one level of tagging, returning `(tag, inner)`.
    pub fn tagged(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Tagged(tag, inner) => Some((tag, inner)),
            _ => None,
        }
    }
}

/// A parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending content.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a document into a [`Value`], resolving anchors and aliases.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let lines: Vec<Line> = text
        .lines()
        .enumerate()
        .map(|(i, raw)| Line::new(i + 1, raw))
        .filter(|l| !l.is_blank())
        .collect();
    let mut parser = Parser {
        lines,
        pos: 0,
        anchors: HashMap::new(),
    };
    let value = parser.parse_block(0)?;
    if parser.pos < parser.lines.len() {
        let line = parser.lines[parser.pos].number;
        return Err(ParseError {
            line,
            message: "trailing content".to_string(),
        });
    }
    Ok(value)
}

/// One significant source line.
struct Line {
    number: usize,
    indent: usize,
    content: String,
}

impl Line {
    fn new(number: usize, raw: &str) -> Line {
        let indent = raw.len() - raw.trim_start().len();
        let content = strip_comment(raw.trim_start()).trim_end().to_string();
        Line {
            number,
            indent,
            content,
        }
    }

    fn is_blank(&self) -> bool {
        self.content.is_empty()
    }
}

/// Removes a trailing `# comment` that is not inside quotes.
fn strip_comment(s: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            // YAML requires a preceding space (or start of line).
            '#' if !in_single
                && !in_double
                && (i == 0 || s.as_bytes()[i - 1].is_ascii_whitespace()) =>
            {
                return &s[..i];
            }
            _ => {}
        }
    }
    s
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    anchors: HashMap<String, Value>,
}

impl Parser {
    fn err(&self, line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// Parses a block (map or list) whose items are indented at least
    /// `min_indent`.
    fn parse_block(&mut self, min_indent: usize) -> Result<Value, ParseError> {
        let Some(first) = self.lines.get(self.pos) else {
            return Ok(Value::Scalar(String::new()));
        };
        if first.indent < min_indent {
            return Ok(Value::Scalar(String::new()));
        }
        let indent = first.indent;
        if first.content.starts_with("- ") || first.content == "-" {
            self.parse_list(indent)
        } else {
            self.parse_map(indent)
        }
    }

    fn parse_list(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        while let Some(line) = self.lines.get(self.pos) {
            if line.indent != indent || !(line.content.starts_with("- ") || line.content == "-") {
                break;
            }
            let number = line.number;
            let rest = line.content[1..].trim_start().to_string();
            self.pos += 1;
            let is_block_map_start =
                !rest.starts_with(['&', '*', '!', '{', '[']) && find_key_colon(&rest).is_some();
            if rest.is_empty() {
                // Item continues on following, deeper lines.
                items.push(self.parse_block(indent + 1)?);
            } else if is_block_map_start {
                // Inline first key of a block map: `- number: 3`.
                let virtual_line = Line {
                    number,
                    indent: indent + 2,
                    content: rest,
                };
                self.lines.insert(self.pos, virtual_line);
                items.push(self.parse_map(indent + 2)?);
            } else {
                items.push(self.parse_inline(&rest, number)?);
            }
        }
        Ok(Value::List(items))
    }

    fn parse_map(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut entries: Vec<(String, Value)> = Vec::new();
        while let Some(line) = self.lines.get(self.pos) {
            if line.indent != indent {
                break;
            }
            let number = line.number;
            let content = line.content.clone();
            let Some(colon) = find_key_colon(&content) else {
                return Err(self.err(number, format!("expected `key:`, found `{content}`")));
            };
            let key = unquote(content[..colon].trim());
            let rest = content[colon + 1..].trim().to_string();
            self.pos += 1;
            let value = if rest.is_empty() {
                self.parse_block(indent + 1)?
            } else {
                self.parse_inline_or_nested(&rest, number, indent)?
            };
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(number, format!("duplicate key `{key}`")));
            }
            entries.push((key, value));
        }
        Ok(Value::Map(entries))
    }

    /// Parses a value that appears after `key:` on the same line; tags
    /// may still be followed by a nested block (`interaction: !invoke`
    /// with the fields below).
    fn parse_inline_or_nested(
        &mut self,
        text: &str,
        number: usize,
        indent: usize,
    ) -> Result<Value, ParseError> {
        if let Some(tag) = text.strip_prefix('!') {
            let mut parts = tag.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").to_string();
            let rest = parts.next().map(str::trim).unwrap_or("");
            if rest.is_empty() {
                // `!tag` with a nested block (or nothing).
                let inner = if self.lines.get(self.pos).is_some_and(|l| l.indent > indent) {
                    self.parse_block(indent + 1)?
                } else {
                    Value::Scalar(String::new())
                };
                return Ok(Value::Tagged(name, Box::new(inner)));
            }
            let inner = self.parse_inline(rest, number)?;
            return Ok(Value::Tagged(name, Box::new(inner)));
        }
        self.parse_inline(text, number)
    }

    /// Parses an inline (flow) value: scalar, alias, anchor, `{...}`,
    /// `[...]`, or a tagged version of those.
    fn parse_inline(&mut self, text: &str, number: usize) -> Result<Value, ParseError> {
        let mut rest = text.trim();
        // Anchor definition: `&name value`.
        if let Some(anchored) = rest.strip_prefix('&') {
            let mut parts = anchored.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").to_string();
            let tail = parts.next().map(str::trim).unwrap_or("");
            if name.is_empty() {
                return Err(self.err(number, "empty anchor name"));
            }
            let value = if tail.is_empty() {
                Value::Scalar(String::new())
            } else {
                self.parse_inline(tail, number)?
            };
            self.anchors.insert(name, value.clone());
            return Ok(value);
        }
        // Alias: `*name`.
        if let Some(alias) = rest.strip_prefix('*') {
            let name = alias.trim();
            return self
                .anchors
                .get(name)
                .cloned()
                .ok_or_else(|| self.err(number, format!("unknown alias `*{name}`")));
        }
        // Tag: `!tag inner`.
        if let Some(tag) = rest.strip_prefix('!') {
            let mut parts = tag.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").to_string();
            let tail = parts.next().map(str::trim).unwrap_or("");
            let inner = if tail.is_empty() {
                Value::Scalar(String::new())
            } else {
                self.parse_inline(tail, number)?
            };
            return Ok(Value::Tagged(name, Box::new(inner)));
        }
        // Flow collections.
        if rest.starts_with('{') || rest.starts_with('[') {
            let (value, consumed) = parse_flow(rest, number)?;
            rest = rest[consumed..].trim();
            if !rest.is_empty() {
                return Err(self.err(number, format!("trailing content `{rest}`")));
            }
            return Ok(value);
        }
        Ok(Value::Scalar(unquote(rest)))
    }
}

/// Finds the colon separating a map key from its value, skipping quoted
/// keys and flow contexts.
fn find_key_colon(s: &str) -> Option<usize> {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let next = s[i + 1..].chars().next();
                if next.is_none() || next == Some(' ') {
                    return Some(i);
                }
            }
            '{' | '[' if !in_single && !in_double => return None,
            _ => {}
        }
    }
    None
}

/// Strips matching quotes from a scalar.
fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2
        && ((s.starts_with('"') && s.ends_with('"')) || (s.starts_with('\'') && s.ends_with('\'')))
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

/// Parses a flow value starting at the beginning of `s`, returning the
/// value and the number of bytes consumed.
fn parse_flow(s: &str, line: usize) -> Result<(Value, usize), ParseError> {
    let bytes = s.as_bytes();
    match bytes.first() {
        Some(b'{') => parse_flow_map(s, line),
        Some(b'[') => parse_flow_list(s, line),
        Some(b'!') => {
            // A tag: `!name` optionally followed by a flow value.
            let name_end = s
                .char_indices()
                .skip(1)
                .find(|&(_, c)| c.is_whitespace() || matches!(c, ',' | '}' | ']' | '{' | '['))
                .map(|(i, _)| i)
                .unwrap_or(s.len());
            let name = s[1..name_end].to_string();
            let mut i = name_end;
            i += count_ws(&s[i..]);
            if s[i..].starts_with([',', '}', ']']) || s[i..].is_empty() {
                return Ok((
                    Value::Tagged(name, Box::new(Value::Scalar(String::new()))),
                    i,
                ));
            }
            let (inner, consumed) = parse_flow(&s[i..], line)?;
            Ok((Value::Tagged(name, Box::new(inner)), i + consumed))
        }
        _ => {
            // A flow scalar: read until `,`, `}`, or `]`.
            let mut end = s.len();
            let mut in_single = false;
            let mut in_double = false;
            for (i, c) in s.char_indices() {
                match c {
                    '\'' if !in_double => in_single = !in_single,
                    '"' if !in_single => in_double = !in_double,
                    ',' | '}' | ']' if !in_single && !in_double => {
                        end = i;
                        break;
                    }
                    _ => {}
                }
            }
            let raw = s[..end].trim();
            Ok((Value::Scalar(unquote(raw)), end))
        }
    }
}

fn parse_flow_map(s: &str, line: usize) -> Result<(Value, usize), ParseError> {
    debug_assert!(s.starts_with('{'));
    let mut entries = Vec::new();
    let mut i = 1;
    loop {
        i += count_ws(&s[i..]);
        if s[i..].starts_with('}') {
            return Ok((Value::Map(entries), i + 1));
        }
        let rest = &s[i..];
        let colon = find_key_colon(rest)
            .or_else(|| rest.find(':'))
            .ok_or(ParseError {
                line,
                message: "missing `:` in flow map".into(),
            })?;
        let key = unquote(rest[..colon].trim());
        i += colon + 1;
        i += count_ws(&s[i..]);
        let (value, consumed) = parse_flow(&s[i..], line)?;
        i += consumed;
        entries.push((key, value));
        i += count_ws(&s[i..]);
        if s[i..].starts_with(',') {
            i += 1;
        } else if !s[i..].starts_with('}') {
            return Err(ParseError {
                line,
                message: "expected `,` or `}` in flow map".into(),
            });
        }
    }
}

fn parse_flow_list(s: &str, line: usize) -> Result<(Value, usize), ParseError> {
    debug_assert!(s.starts_with('['));
    let mut items = Vec::new();
    let mut i = 1;
    loop {
        i += count_ws(&s[i..]);
        if s[i..].starts_with(']') {
            return Ok((Value::List(items), i + 1));
        }
        let (value, consumed) = parse_flow(&s[i..], line)?;
        i += consumed;
        items.push(value);
        i += count_ws(&s[i..]);
        if s[i..].starts_with(',') {
            i += 1;
        } else if !s[i..].starts_with(']') {
            return Err(ParseError {
                line,
                message: "expected `,` or `]` in flow list".into(),
            });
        }
    }
}

fn count_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_maps() {
        let v = parse("name: diablo\ncount: 42\n").unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("diablo"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn nested_blocks() {
        let v = parse("outer:\n  inner:\n    leaf: 1\n").unwrap();
        assert_eq!(
            v.get("outer")
                .unwrap()
                .get("inner")
                .unwrap()
                .get("leaf")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn block_lists() {
        let v = parse("items:\n  - 1\n  - 2\n  - 3\n").unwrap();
        let items = v.get("items").unwrap().as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_u64(), Some(3));
    }

    #[test]
    fn list_of_maps() {
        let v =
            parse("workloads:\n  - number: 3\n    kind: a\n  - number: 5\n    kind: b\n").unwrap();
        let ws = v.get("workloads").unwrap().as_list().unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].get("number").unwrap().as_u64(), Some(3));
        assert_eq!(ws[1].get("kind").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn flow_collections() {
        let v = parse("m: { a: 1, b: [x, y] }\n").unwrap();
        let m = v.get("m").unwrap();
        assert_eq!(m.get("a").unwrap().as_u64(), Some(1));
        let list = m.get("b").unwrap().as_list().unwrap();
        assert_eq!(list[1].as_str(), Some("y"));
    }

    #[test]
    fn tags_anchors_aliases() {
        let text = "let:\n  - &acc { sample: !account { number: 2000 } }\nuse:\n  from: *acc\n";
        let v = parse(text).unwrap();
        let from = v.get("use").unwrap().get("from").unwrap();
        let (tag, inner) = from.get("sample").unwrap().tagged().unwrap();
        assert_eq!(tag, "account");
        assert_eq!(inner.get("number").unwrap().as_u64(), Some(2000));
    }

    #[test]
    fn tagged_flow_list() {
        let v = parse("loc: { sample: !location [ \"us-east-2\" ] }\n").unwrap();
        let (tag, inner) = v
            .get("loc")
            .unwrap()
            .get("sample")
            .unwrap()
            .tagged()
            .unwrap();
        assert_eq!(tag, "location");
        assert_eq!(inner.as_list().unwrap()[0].as_str(), Some("us-east-2"));
    }

    #[test]
    fn tag_with_nested_block() {
        let text = "behavior:\n  - interaction: !invoke\n      from: a\n      function: \"update(1, 1)\"\n    load:\n      0: 4432\n      50: 4438\n";
        let v = parse(text).unwrap();
        let b = &v.get("behavior").unwrap().as_list().unwrap()[0];
        let (tag, inner) = b.get("interaction").unwrap().tagged().unwrap();
        assert_eq!(tag, "invoke");
        assert_eq!(
            inner.get("function").unwrap().as_str(),
            Some("update(1, 1)")
        );
        let load = b.get("load").unwrap().as_map().unwrap();
        assert_eq!(
            load[1],
            ("50".to_string(), Value::Scalar("4438".to_string()))
        );
    }

    #[test]
    fn comments_ignored() {
        let v = parse("# header\na: 1 # trailing\nb: \"x # not a comment\"\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x # not a comment"));
    }

    #[test]
    fn unknown_alias_errors() {
        let err = parse("a: *nope\n").unwrap_err();
        assert!(err.message.contains("unknown alias"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_key_errors() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(err.message.contains("duplicate key"));
    }

    #[test]
    fn paper_example_parses() {
        // The gaming DApp configuration from §4 of the paper, verbatim
        // (modulo whitespace).
        let text = r#"
let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
"#;
        let v = parse(text).unwrap();
        let w = &v.get("workloads").unwrap().as_list().unwrap()[0];
        assert_eq!(w.get("number").unwrap().as_u64(), Some(3));
        let client = w.get("client").unwrap();
        let (tag, inner) = client
            .get("location")
            .unwrap()
            .get("sample")
            .unwrap()
            .tagged()
            .unwrap();
        assert_eq!(tag, "location");
        assert_eq!(inner.as_list().unwrap()[0].as_str(), Some("us-east-2"));
        let behavior = &client.get("behavior").unwrap().as_list().unwrap()[0];
        let (itag, ival) = behavior.get("interaction").unwrap().tagged().unwrap();
        assert_eq!(itag, "invoke");
        let (ctag, cval) = ival
            .get("contract")
            .unwrap()
            .get("sample")
            .unwrap()
            .tagged()
            .unwrap();
        assert_eq!(ctag, "contract");
        assert_eq!(cval.get("name").unwrap().as_str(), Some("dota"));
        let load = behavior.get("load").unwrap().as_map().unwrap();
        assert_eq!(load.len(), 3);
        assert_eq!(load[2].0, "120");
    }
}
