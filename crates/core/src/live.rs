//! Live mode: the distributed pipeline over real processes, real
//! sockets and wall-clock time.
//!
//! `diablo run --live` turns the in-process benchmark into a real
//! deployment on localhost: the Primary binds a TCP listener, spawns
//! one OS process per Secondary (the `diablo` binary itself, in
//! `secondary` mode), and serves the *existing* wire protocol
//! (`crate::wire`) over those sockets. The harness underneath runs in
//! wall-clock time — events are paced against real time and the modeled
//! signature-verification delay is replaced by actual thread-pool work
//! (`diablo_chains::live`).
//!
//! Because a live run resolves the *same* `RunConfig` as a simulated
//! one, the run is immediately rerun as its deterministic simulation
//! twin (`RunConfig::simulation_twin` — the identical configuration
//! with `live` stripped), and the two are compared by
//! [`crate::livediff`]: per-phase latency ratios, throughput, and one
//! collapsed fidelity score that lands in the results JSON.

use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Stdio};

use diablo_chains::Chain;
use diablo_net::DeploymentKind;

use crate::livediff;
use crate::primary::{run_local, BenchmarkOptions};
use crate::report::Report;
use crate::spec::BenchmarkSpec;
use crate::tracediff;
use crate::wire::serve_primary;

/// The spawned Secondary processes; any still running are killed on
/// drop so a failed Primary never leaks children.
struct Children(Vec<Child>);

impl Drop for Children {
    fn drop(&mut self) {
        for child in &mut self.0 {
            if matches!(child.try_wait(), Ok(None)) {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
}

/// Runs a benchmark live: real Secondary processes (`secondary_exe
/// secondary --primary=… --tag=live-K`) over real TCP, the harness in
/// wall-clock time, then the deterministic simulation twin of the same
/// resolved configuration, returning the live report with the fidelity
/// diff attached.
///
/// `options.run.live` must be set (the `--live` flag); everything else
/// resolves exactly as in a simulated run: `defaults ← spec ← CLI`.
pub fn run_live(
    chain: Chain,
    deployment: DeploymentKind,
    spec_text: &str,
    workload_name: &str,
    options: &BenchmarkOptions,
    secondary_exe: &Path,
) -> Result<Report, String> {
    if options.run.live.is_none() {
        return Err("run_live requires the live layer (--live) to be set".to_string());
    }
    // Validate the spec before spawning anything.
    BenchmarkSpec::parse(spec_text).map_err(|e| e.to_string())?;

    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    // The listener is bound before any child starts, so a healthy child
    // connects on its first dial; the retry policy covers scheduler
    // hiccups, not ordering.
    let mut children = Children(Vec::with_capacity(options.secondaries));
    for k in 0..options.secondaries {
        let child = Command::new(secondary_exe)
            .arg("secondary")
            .arg(format!("--primary={addr}"))
            .arg(format!("--tag=live-{k}"))
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", secondary_exe.display()))?;
        children.0.push(child);
    }

    let mut live_report = serve_primary(
        &listener,
        chain,
        deployment,
        spec_text,
        workload_name,
        options,
        options.secondaries,
    )?;

    for (k, child) in children.0.iter_mut().enumerate() {
        let status = child.wait().map_err(|e| format!("wait secondary {k}: {e}"))?;
        if !status.success() {
            eprintln!("warning: live secondary {k} exited with {status}");
            diablo_telemetry::counter!("live.secondary.failed", 1);
        }
    }

    // The deterministic twin: the same resolved configuration with the
    // live layer stripped (`RunConfig::simulation_twin` semantics,
    // expressed at the overlay level). `run_local` resets the global
    // telemetry recorder, so the live snapshot captured above is the
    // live run's alone.
    let mut twin_options = options.clone();
    twin_options.run.live = None;
    let sim_report = run_local(chain, deployment, spec_text, workload_name, &twin_options)?;

    // When both runs traced transactions, align their lifecycles with
    // the trace-diff machinery: same seed → same sampled ids → total
    // alignment, and the per-stage deltas say where wall-clock reality
    // diverged from the model.
    let trace_stages = match (&live_report.result.trace, &sim_report.result.trace) {
        (Some(live_trace), Some(sim_trace)) => tracediff::diff_texts(
            &live_trace.to_chrome_json(),
            &sim_trace.to_chrome_json(),
        )
        .map(|d| d.stages)
        .unwrap_or_default(),
        _ => Vec::new(),
    };

    live_report.live_diff = Some(livediff::diff_with_traces(
        &livediff::summarize(&live_report),
        &livediff::summarize(&sim_report),
        trace_stages,
    ));
    Ok(live_report)
}
