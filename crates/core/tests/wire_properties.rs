//! Property coverage for the wire codec: every message type round-trips
//! through `encode`/`decode`, and `decode` is total on arbitrary bytes.

use diablo_core::wire::{decode, encode, Message, WireOutcome, WireTx};
use diablo_telemetry::{HistogramSnapshot, SpanStat, TelemetrySnapshot};
use diablo_testkit::gen::{
    ascii_strings, choice, i32s, just, u32s, u64s, u8s, vecs, BoxedGen, Gen,
};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};

/// Arbitrary planned transactions, covering all three payload kinds.
fn arb_wiretx() -> BoxedGen<WireTx> {
    (
        (u64s(0..=u64::MAX), u32s(0..=u32::MAX), u8s(0..=2), u8s(0..=255)),
        (u64s(0..=u64::MAX), u8s(0..=255), i32s(i32::MIN..=i32::MAX)),
        (i32s(i32::MIN..=i32::MAX), u8s(0..=2)),
    )
        .map(|((at_us, sender, kind, dapp), (seq, entry, arg0), (arg1, argc))| WireTx {
            at_us,
            sender,
            kind,
            dapp,
            seq,
            entry,
            args: [arg0, arg1],
            argc,
        })
        .boxed()
}

/// Arbitrary outcomes, including the undecided sentinel.
fn arb_outcome() -> BoxedGen<WireOutcome> {
    (
        u8s(0..=255),
        u64s(0..=u64::MAX),
        choice(vec![u64s(0..=u64::MAX).boxed(), just(u64::MAX).boxed()]),
    )
        .map(|(status, submit_us, decide_us)| WireOutcome {
            status,
            submit_us,
            decide_us,
        })
        .boxed()
}

/// Arbitrary histogram snapshots: any counts, any bucket layout.
fn arb_histogram() -> BoxedGen<HistogramSnapshot> {
    (
        (
            u64s(0..=u64::MAX),
            u64s(0..=u64::MAX),
            u64s(0..=u64::MAX),
            u64s(0..=u64::MAX),
        ),
        vecs((u32s(0..=4096), u64s(0..=u64::MAX)), 0..=12),
    )
        .map(|((count, sum, min, max), buckets)| HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        })
        .boxed()
}

/// Arbitrary telemetry snapshots across all four sections, including
/// empty ones and negative gauges.
fn arb_snapshot() -> BoxedGen<TelemetrySnapshot> {
    (
        vecs((ascii_strings(0..=32), u64s(0..=u64::MAX)), 0..=8),
        vecs((ascii_strings(0..=32), u64s(0..=u64::MAX)), 0..=8),
        vecs((ascii_strings(0..=32), arb_histogram()), 0..=6),
        vecs(
            (
                ascii_strings(0..=48),
                (u64s(0..=u64::MAX), u64s(0..=u64::MAX), u64s(0..=u64::MAX)),
            ),
            0..=6,
        ),
    )
        .map(|(counters, gauges, histograms, spans)| TelemetrySnapshot {
            counters,
            gauges: gauges.into_iter().map(|(n, v)| (n, v as i64)).collect(),
            histograms,
            spans: spans
                .into_iter()
                .map(|(n, (count, inclusive_us, exclusive_us))| {
                    (
                        n,
                        SpanStat {
                            count,
                            inclusive_us,
                            exclusive_us,
                        },
                    )
                })
                .collect(),
        })
        .boxed()
}

/// Arbitrary protocol messages: every variant, arbitrary contents.
fn arb_message() -> BoxedGen<Message> {
    choice(vec![
        ascii_strings(0..=64).map(|tag| Message::Hello { tag }).boxed(),
        (
            ascii_strings(0..=32),
            ascii_strings(0..=200),
            u32s(0..=u32::MAX),
            u32s(0..=u32::MAX),
        )
            .map(|(chain, spec, first, last)| Message::Assign {
                chain,
                spec,
                first,
                last,
            })
            .boxed(),
        vecs(arb_wiretx(), 0..=20)
            .map(|txs| Message::Plan { txs })
            .boxed(),
        just(Message::PlanDone).boxed(),
        vecs(arb_outcome(), 0..=20)
            .map(|txs| Message::Outcomes { txs })
            .boxed(),
        just(Message::OutcomesDone).boxed(),
        ascii_strings(0..=128).map(|text| Message::Stats { text }).boxed(),
        arb_snapshot()
            .map(|snapshot| Message::Telemetry { snapshot })
            .boxed(),
        just(Message::Done).boxed(),
    ])
    .boxed()
}

/// Every message survives a framed encode/decode round trip, and the
/// frame header matches the body length.
#[test]
fn messages_roundtrip() {
    Property::new("messages_roundtrip")
        .cases(256)
        .check(&arb_message(), |msg| {
            let framed = encode(msg);
            prop_assert!(framed.len() >= 4, "frame shorter than its header");
            let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
            prop_assert_eq!(len + 4, framed.len());
            let decoded = decode(&framed[4..]).map_err(|e| format!("decode failed: {e}"))?;
            prop_assert_eq!(&decoded, msg);
            Ok(())
        });
}

/// Decoding never panics on arbitrary bytes — truncated, oversized or
/// garbage frames all yield `Err`, never a crash.
#[test]
fn decode_is_total_on_garbage() {
    Property::new("decode_is_total_on_garbage")
        .cases(512)
        .check(&vecs(u8s(0..=255), 0..=300), |bytes| {
            let _ = decode(bytes);
            Ok(())
        });
}

/// Telemetry snapshots survive the framed round trip exactly — every
/// counter, gauge sign, histogram bucket and span figure intact.
#[test]
fn telemetry_snapshots_roundtrip() {
    Property::new("telemetry_snapshots_roundtrip")
        .cases(256)
        .check(&arb_snapshot(), |snapshot| {
            let msg = Message::Telemetry {
                snapshot: snapshot.clone(),
            };
            let framed = encode(&msg);
            let decoded = decode(&framed[4..]).map_err(|e| format!("decode failed: {e}"))?;
            prop_assert_eq!(&decoded, &msg);
            Ok(())
        });
}

/// Recorder-shaped snapshots: histograms frozen from actually recorded
/// values (never a bucket layout a recorder could not produce).
fn coherent_snapshot() -> BoxedGen<TelemetrySnapshot> {
    (
        vecs((ascii_strings(1..=16), u64s(0..=1 << 40)), 0..=6),
        vecs((ascii_strings(1..=16), u64s(0..=1 << 40)), 0..=6),
        vecs((ascii_strings(1..=16), vecs(u64s(0..=1 << 40), 1..=20)), 0..=4),
        vecs(
            (
                ascii_strings(1..=24),
                (u64s(0..=1 << 30), u64s(0..=1 << 40), u64s(0..=1 << 40)),
            ),
            0..=4,
        ),
    )
        .map(|(counters, gauges, hist_values, spans)| TelemetrySnapshot {
            counters,
            gauges: gauges.into_iter().map(|(n, v)| (n, v as i64)).collect(),
            histograms: hist_values
                .into_iter()
                .map(|(n, values)| {
                    let mut h = diablo_sim::LogHistogram::new();
                    for v in values {
                        h.record(v);
                    }
                    (n, HistogramSnapshot::from_histogram(&h))
                })
                .collect(),
            spans: spans
                .into_iter()
                .map(|(n, (count, inclusive_us, exclusive_us))| {
                    (
                        n,
                        SpanStat {
                            count,
                            inclusive_us,
                            exclusive_us,
                        },
                    )
                })
                .collect(),
        })
        .boxed()
}

/// Merging is commutative on recorder-shaped snapshots: the Primary may
/// fold Secondary reports in any arrival order and aggregate to the
/// same totals.
#[test]
fn telemetry_merge_is_commutative() {
    // merge() canonicalizes (sorts and dedupes by name); fold each
    // generated snapshot into an empty one first so both orders start
    // from canonical operands.
    fn canonical(s: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut c = TelemetrySnapshot::default();
        c.merge(s);
        c
    }
    Property::new("telemetry_merge_is_commutative")
        .cases(128)
        .check(&(coherent_snapshot(), coherent_snapshot()), |(a, b)| {
            let (a, b) = (canonical(a), canonical(b));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            Ok(())
        });
}

/// Truncating a valid frame anywhere never panics, and truncating a
/// non-empty body strictly (dropping the tail) fails or decodes — but
/// decoding a prefix of a `Plan` body must not fabricate transactions.
#[test]
fn truncated_frames_fail_cleanly() {
    Property::new("truncated_frames_fail_cleanly")
        .cases(128)
        .check(
            &(vecs(arb_wiretx(), 1..=8), u64s(0..=u64::MAX)),
            |(txs, cut_seed)| {
                let msg = Message::Plan { txs: txs.clone() };
                let framed = encode(&msg);
                let body = &framed[4..];
                let cut = 1 + (*cut_seed as usize % (body.len().saturating_sub(1).max(1)));
                let result = decode(&body[..cut.min(body.len() - 1)]);
                prop_assert!(
                    result.is_err(),
                    "a strict prefix of a Plan body decoded: {result:?}"
                );
                Ok(())
            },
        );
}
