//! Property coverage for the wire codec: every message type round-trips
//! through `encode`/`decode`, and `decode` is total on arbitrary bytes.

use diablo_core::wire::{decode, encode, Message, WireOutcome, WireTx};
use diablo_testkit::gen::{
    ascii_strings, choice, i32s, just, u32s, u64s, u8s, vecs, BoxedGen, Gen,
};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};

/// Arbitrary planned transactions, covering all three payload kinds.
fn arb_wiretx() -> BoxedGen<WireTx> {
    (
        (u64s(0..=u64::MAX), u32s(0..=u32::MAX), u8s(0..=2), u8s(0..=255)),
        (u64s(0..=u64::MAX), u8s(0..=255), i32s(i32::MIN..=i32::MAX)),
        (i32s(i32::MIN..=i32::MAX), u8s(0..=2)),
    )
        .map(|((at_us, sender, kind, dapp), (seq, entry, arg0), (arg1, argc))| WireTx {
            at_us,
            sender,
            kind,
            dapp,
            seq,
            entry,
            args: [arg0, arg1],
            argc,
        })
        .boxed()
}

/// Arbitrary outcomes, including the undecided sentinel.
fn arb_outcome() -> BoxedGen<WireOutcome> {
    (
        u8s(0..=255),
        u64s(0..=u64::MAX),
        choice(vec![u64s(0..=u64::MAX).boxed(), just(u64::MAX).boxed()]),
    )
        .map(|(status, submit_us, decide_us)| WireOutcome {
            status,
            submit_us,
            decide_us,
        })
        .boxed()
}

/// Arbitrary protocol messages: every variant, arbitrary contents.
fn arb_message() -> BoxedGen<Message> {
    choice(vec![
        ascii_strings(0..=64).map(|tag| Message::Hello { tag }).boxed(),
        (
            ascii_strings(0..=32),
            ascii_strings(0..=200),
            u32s(0..=u32::MAX),
            u32s(0..=u32::MAX),
        )
            .map(|(chain, spec, first, last)| Message::Assign {
                chain,
                spec,
                first,
                last,
            })
            .boxed(),
        vecs(arb_wiretx(), 0..=20)
            .map(|txs| Message::Plan { txs })
            .boxed(),
        just(Message::PlanDone).boxed(),
        vecs(arb_outcome(), 0..=20)
            .map(|txs| Message::Outcomes { txs })
            .boxed(),
        just(Message::OutcomesDone).boxed(),
        ascii_strings(0..=128).map(|text| Message::Stats { text }).boxed(),
        just(Message::Done).boxed(),
    ])
    .boxed()
}

/// Every message survives a framed encode/decode round trip, and the
/// frame header matches the body length.
#[test]
fn messages_roundtrip() {
    Property::new("messages_roundtrip")
        .cases(256)
        .check(&arb_message(), |msg| {
            let framed = encode(msg);
            prop_assert!(framed.len() >= 4, "frame shorter than its header");
            let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
            prop_assert_eq!(len + 4, framed.len());
            let decoded = decode(&framed[4..]).map_err(|e| format!("decode failed: {e}"))?;
            prop_assert_eq!(&decoded, msg);
            Ok(())
        });
}

/// Decoding never panics on arbitrary bytes — truncated, oversized or
/// garbage frames all yield `Err`, never a crash.
#[test]
fn decode_is_total_on_garbage() {
    Property::new("decode_is_total_on_garbage")
        .cases(512)
        .check(&vecs(u8s(0..=255), 0..=300), |bytes| {
            let _ = decode(bytes);
            Ok(())
        });
}

/// Truncating a valid frame anywhere never panics, and truncating a
/// non-empty body strictly (dropping the tail) fails or decodes — but
/// decoding a prefix of a `Plan` body must not fabricate transactions.
#[test]
fn truncated_frames_fail_cleanly() {
    Property::new("truncated_frames_fail_cleanly")
        .cases(128)
        .check(
            &(vecs(arb_wiretx(), 1..=8), u64s(0..=u64::MAX)),
            |(txs, cut_seed)| {
                let msg = Message::Plan { txs: txs.clone() };
                let framed = encode(&msg);
                let body = &framed[4..];
                let cut = 1 + (*cut_seed as usize % (body.len().saturating_sub(1).max(1)));
                let result = decode(&body[..cut.min(body.len() - 1)]);
                prop_assert!(
                    result.is_err(),
                    "a strict prefix of a Plan body decoded: {result:?}"
                );
                Ok(())
            },
        );
}
