//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (§6) has a binary in
//! `src/bin` that re-runs the corresponding experiments against the
//! simulated chains and prints the table rows / bar values / CDF series
//! the paper reports. This library holds the common experiment drivers
//! and plain-text rendering.

use diablo_chains::{Chain, Concurrency, Experiment, RunResult};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_workloads::{traces, Workload};

/// Scale factor for quick runs: set `DIABLO_QUICK=1` to shorten every
/// workload 4× (useful while iterating; figures use full length).
pub fn quick_factor() -> f64 {
    match std::env::var("DIABLO_QUICK") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => 0.25,
        _ => 1.0,
    }
}

/// Worker-thread count for committed-block execution: `--threads N` (or
/// `--threads=N`) on the command line, else `DIABLO_THREADS=N` in the
/// environment, else 1 (serial, the paper's baseline).
pub fn thread_knob() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            if let Ok(n) = v.parse() {
                return n;
            }
        }
    }
    std::env::var("DIABLO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Whether the optimistic executor was requested: `--optimistic` on the
/// command line or `DIABLO_OPTIMISTIC=1` in the environment.
pub fn optimistic_knob() -> bool {
    if std::env::args().skip(1).any(|a| a == "--optimistic") {
        return true;
    }
    matches!(
        std::env::var("DIABLO_OPTIMISTIC"),
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true")
    )
}

/// The block-commit concurrency [`thread_knob`] and [`optimistic_knob`]
/// resolve to: 0 or 1 worker means serial execution, anything larger
/// enables the deterministic static parallel executor with that many
/// workers — or the optimistic (Block-STM-style) executor when
/// requested, which also accepts a single worker (the protocol is
/// worker-count independent).
pub fn concurrency() -> Concurrency {
    if optimistic_knob() {
        return Concurrency::Optimistic(thread_knob().max(1));
    }
    match thread_knob() {
        0 | 1 => Concurrency::Serial,
        n => Concurrency::Parallel(n),
    }
}

/// Shortens a workload by the quick factor (keeps rates, trims time).
pub fn maybe_quick(w: Workload) -> Workload {
    let f = quick_factor();
    if f >= 1.0 {
        return w;
    }
    let keep = ((w.duration_secs() as f64 * f).ceil() as usize).max(10);
    Workload::from_rates(
        w.name().to_string(),
        w.rates()[..keep.min(w.rates().len())].to_vec(),
    )
}

/// Runs one native-transfer experiment (honors the `--threads` knob).
pub fn run_native(chain: Chain, deployment: DeploymentKind, workload: Workload) -> RunResult {
    Experiment::new(chain, deployment, maybe_quick(workload))
        .with_concurrency(concurrency())
        .run()
}

/// Runs one DApp experiment (honors the `--threads` knob).
pub fn run_dapp(chain: Chain, deployment: DeploymentKind, dapp: DApp) -> RunResult {
    let workload = traces::for_dapp(dapp.name()).expect("every dapp has a trace");
    Experiment::new(chain, deployment, maybe_quick(workload))
        .with_dapp(dapp)
        .with_concurrency(concurrency())
        .run()
}

/// A horizontal bar for plain-text "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.clamp(1, width))
}

/// Formats a results row in the figures' common layout.
pub fn result_row(label: &str, r: &RunResult) -> String {
    if !r.able() {
        return format!(
            "{label:<11} {:>8}  {:>8}  {:>7}   X {}",
            "X",
            "X",
            "X",
            r.unable_reason.as_deref().unwrap_or("unable")
        );
    }
    format!(
        "{label:<11} {:>8.1}  {:>7.1}s  {:>6.1}%",
        r.avg_throughput(),
        r.avg_latency_secs(),
        r.commit_ratio() * 100.0
    )
}

/// The header matching [`result_row`].
pub fn result_header(label: &str) -> String {
    format!(
        "{label:<11} {:>8}  {:>8}  {:>7}",
        "tput TPS", "latency", "commit"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale() {
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(
            bar(0.01, 10.0, 10).chars().count(),
            1,
            "non-zero values stay visible"
        );
    }

    #[test]
    fn quick_factor_defaults_to_full() {
        // Unless the environment says otherwise, workloads are full-length.
        if std::env::var("DIABLO_QUICK").is_err() {
            assert_eq!(quick_factor(), 1.0);
        }
    }

    #[test]
    fn thread_knob_defaults_to_serial() {
        // Without `--threads` / `DIABLO_THREADS`, block commits stay
        // serial (the paper's baseline).
        if std::env::var("DIABLO_THREADS").is_err() {
            assert_eq!(thread_knob(), 1);
            assert_eq!(concurrency(), Concurrency::Serial);
        }
    }

    #[test]
    fn maybe_quick_preserves_rates() {
        let w = Workload::from_rates("x", vec![5.0; 100]);
        let q = maybe_quick(w.clone());
        assert_eq!(q.rate_at(0), 5.0);
        assert!(q.duration_secs() <= w.duration_secs());
    }
}
