//! Table 4: the evaluated blockchains.
//!
//! Consistency property, consensus protocol, virtual machine and DApp
//! language per chain — read back from the implementation (`Chain` and
//! `VmFlavor`) rather than hardcoded, so the table stays true to the
//! code. The adapter quirks of §5.2 are appended.

use diablo_chains::Chain;
use diablo_core::adapters;

fn main() {
    println!("Table 4: blockchains evaluated in Diablo\n");
    println!(
        "{:<10} {:<8} {:<11} {:<8} {:<10}",
        "Blockchain", "Prop.", "Consensus", "VM", "DApp lang."
    );
    println!("{}", "-".repeat(52));
    for chain in Chain::ALL {
        let flavor = chain.vm_flavor();
        println!(
            "{:<10} {:<8} {:<11} {:<8} {:<10}",
            chain.name(),
            format!("{}", chain.property()),
            chain.consensus_name(),
            flavor.name(),
            flavor.dapp_language()
        );
    }

    println!("\nExecution limits (the §6.4 universality result hinges on these):");
    for chain in Chain::ALL {
        let flavor = chain.vm_flavor();
        match flavor.per_tx_budget() {
            Some(budget) => println!(
                "  {:<10} hard per-transaction budget of {budget} {} units",
                chain.name(),
                flavor.name()
            ),
            None => println!(
                "  {:<10} no hard per-transaction cap (block gas limit only)",
                chain.name()
            ),
        }
    }

    println!("\nAdapter integration notes (§5.2):");
    for adapter in adapters::ADAPTERS {
        println!(
            "  {:<10} commit detection: {}",
            adapter.chain.name(),
            adapter.commit_detection
        );
        println!("  {:<10} {}", "", adapter.quirk);
    }
}
