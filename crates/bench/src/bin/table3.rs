//! Table 3: deployment configurations and the inter-region network.
//!
//! Left side: the five configurations (nodes, machine class, regions).
//! Right side: the bandwidth (upper triangle, Mbps) and round-trip time
//! (lower triangle, ms) between each pair of regions — re-measured here
//! through the network model's probe interface, the simulator's
//! equivalent of the paper's `iperf3` runs on devnet machines.

use diablo_net::{probe_pair, DeploymentConfig, DeploymentKind, NetworkModel, Region};
use diablo_sim::DetRng;

fn main() {
    println!("Table 3 (left): deployment configurations\n");
    println!(
        "{:<12} {:>6} {:>7} {:>7}  regions",
        "Configuration", "nodes", "vCPUs", "memory"
    );
    println!("{}", "-".repeat(60));
    for kind in DeploymentKind::ALL {
        let cfg = DeploymentConfig::standard(kind);
        let regions = if cfg.is_local() {
            "Ohio".to_string()
        } else {
            "all".to_string()
        };
        println!(
            "{:<12} {:>6} {:>7} {:>4} GiB  {}",
            kind.name(),
            cfg.node_count(),
            cfg.machine().vcpus(),
            cfg.machine().memory_gib(),
            regions
        );
    }

    println!("\nTable 3 (right): bandwidth (Mbps, upper triangle) / RTT (ms, lower triangle)");
    println!("re-measured with ping/iperf-style probes against the network model\n");
    let net = NetworkModel::deterministic();
    let mut rng = DetRng::new(3);
    print!("{:<11}", "");
    for r in Region::ALL {
        print!("{:>8}", &r.city()[..r.city().len().min(7)]);
    }
    println!();
    for a in Region::ALL {
        print!("{:<11}", a.city());
        for b in Region::ALL {
            if a == b {
                print!("{:>8}", "-");
            } else {
                let probe = probe_pair(&net, &mut rng, a, b);
                if a.index() < b.index() {
                    print!("{:>8.1}", probe.bandwidth_mbps);
                } else {
                    print!("{:>8.1}", probe.rtt_ms);
                }
            }
        }
        println!();
    }
    println!("\n(probed between machines of the devnet configuration)");
}
