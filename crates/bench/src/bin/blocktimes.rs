//! Block-explorer view: observed block periods and fills.
//!
//! §5.2 reads Avalanche's block period off snowtrace and Solana's
//! 400 ms slots off its documentation; this binary is the equivalent
//! for the simulated chains — it runs a saturating load on each chain
//! and reports the observed mean block interval and block fill, an
//! internal-consistency check between the configured protocol timing
//! and what the simulation actually produces.

use diablo_chains::{Chain, Experiment};
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    println!("Observed block production under a saturating load (testnet, 120 s)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "chain", "blocks", "interval", "mean fill", "tput TPS"
    );
    println!("{}", "-".repeat(60));
    for chain in Chain::EXTENDED {
        let r = Experiment::new(
            chain,
            DeploymentKind::Testnet,
            traces::constant(5_000.0, 120),
        )
        .run();
        println!(
            "{:<10} {:>10} {:>10.2}s {:>12.1} {:>10.1}",
            chain.name(),
            r.blocks.len(),
            r.mean_block_interval_secs(),
            r.mean_block_fill(),
            r.avg_throughput()
        );
    }
    println!(
        "\nExpected intervals under load: Solana 0.4 s slots, Avalanche ~1.18 s,\n\
         Quorum/RedBelly >= 1 s (commit-chained), Ethereum 15 s Clique periods,\n\
         Algorand ~4 s BA rounds, Diem sub-second pipelined rounds."
    );
}
