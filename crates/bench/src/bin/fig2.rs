//! Figure 2: blockchain performance under the realistic DApps.
//!
//! Each DApp (column) is deployed on the consortium configuration (200
//! machines, 8 vCPUs / 16 GiB, 10 regions) and driven with its
//! real-trace workload; for every blockchain the figure reports the
//! average throughput, average latency and proportion of committed
//! transactions. An absent bar ("--") means the blockchain cannot even
//! commit a few requests — including the DApp/VM pairs that cannot run
//! at all (Mobility outside geth, YouTube on the AVM).

use diablo_bench::{bar, run_dapp};
use diablo_chains::{Chain, RunResult};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    println!("Figure 2: realistic DApps on the consortium configuration (200 nodes, 10 regions)\n");
    for dapp in DApp::ALL {
        let trace = traces::for_dapp(dapp.name()).expect("trace exists");
        println!(
            "== {} DApp / {} workload (average submitted load: {:.0} TPS) ==",
            dapp.name(),
            dapp.workload_name(),
            trace.mean_tps()
        );
        let results: Vec<(Chain, RunResult)> = Chain::ALL
            .iter()
            .map(|&chain| (chain, run_dapp(chain, DeploymentKind::Consortium, dapp)))
            .collect();
        let max_tput = results
            .iter()
            .filter(|(_, r)| r.able())
            .map(|(_, r)| r.avg_throughput())
            .fold(1.0, f64::max);
        println!(
            "{:<10} {:>9} {:>9} {:>8}  throughput",
            "chain", "tput TPS", "latency", "commit"
        );
        for (chain, r) in &results {
            if !r.able() {
                println!(
                    "{:<10} {:>9} {:>9} {:>8}  ({})",
                    chain.name(),
                    "--",
                    "--",
                    "--",
                    r.unable_reason.as_deref().unwrap_or("unable")
                );
                continue;
            }
            println!(
                "{:<10} {:>9.1} {:>8.1}s {:>7.1}%  {}",
                chain.name(),
                r.avg_throughput(),
                r.avg_latency_secs(),
                r.commit_ratio() * 100.0,
                bar(r.avg_throughput(), max_tput, 30)
            );
        }
        println!();
    }
    println!(
        "Paper anchors: Exchange commits — Avalanche & Quorum > 86%, others <= 47%; \
         YouTube commits < 1% everywhere; Uber/FIFA — only Quorum above 622 TPS, \
         others below 170 TPS; Dota — none above 66 TPS; no latency below 27 s."
    );
}
