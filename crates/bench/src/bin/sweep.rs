//! The full experiment matrix, exported for plotting.
//!
//! Runs every chain × deployment × workload combination the paper's
//! evaluation uses (the `minion` scripts of the artifact drive the same
//! matrix on AWS) and writes machine-readable artifacts under
//! `results/sweep/`: one comparison CSV for the whole matrix plus
//! per-run throughput time series and latency CDF `.dat` files for the
//! headline runs.
//!
//! Usage: `cargo run --release -p diablo-bench --bin sweep [out_dir]`

use std::fs;
use std::path::PathBuf;

use diablo_bench::{maybe_quick, run_dapp};
use diablo_chains::{Chain, Experiment, RunResult};
use diablo_contracts::DApp;
use diablo_core::analysis::{comparison_csv, latency_cdf_dat, throughput_series_dat};
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/sweep".to_string())
        .into();
    fs::create_dir_all(&out).expect("create output directory");
    let mut results: Vec<RunResult> = Vec::new();

    // Figure 3 matrix: native transfers across deployments.
    for chain in Chain::ALL {
        for kind in [
            DeploymentKind::Datacenter,
            DeploymentKind::Testnet,
            DeploymentKind::Devnet,
            DeploymentKind::Community,
        ] {
            let r = Experiment::new(chain, kind, maybe_quick(traces::constant(1_000.0, 120))).run();
            println!(
                "native-1000 {:<10} {:<11} {}",
                chain.name(),
                kind.name(),
                r.summary()
            );
            results.push(r);
        }
    }

    // Figure 2 matrix: every DApp on consortium; headline runs also get
    // series/CDF exports.
    for dapp in DApp::ALL {
        for chain in Chain::ALL {
            let r = run_dapp(chain, DeploymentKind::Consortium, dapp);
            println!("{:<12} {:<10} {}", dapp.name(), chain.name(), r.summary());
            if r.able() {
                let stem = format!("{}-{}", dapp.name(), chain.name().to_lowercase());
                fs::write(
                    out.join(format!("{stem}.series.dat")),
                    throughput_series_dat(&r),
                )
                .expect("write series");
                fs::write(
                    out.join(format!("{stem}.cdf.dat")),
                    latency_cdf_dat(&r, 400),
                )
                .expect("write cdf");
            }
            results.push(r);
        }
    }

    let refs: Vec<&RunResult> = results.iter().collect();
    let csv = comparison_csv(&refs);
    fs::write(out.join("matrix.csv"), &csv).expect("write matrix.csv");
    println!(
        "\nwrote {} runs to {} (matrix.csv + per-run .dat files)",
        results.len(),
        out.display()
    );
}
