//! Figure 6: availability under load peaks — latency CDFs.
//!
//! The per-stock NASDAQ bursts (Google: 800 transactions in the first
//! second; Microsoft: 4,000; Apple: 10,000, each followed by a low
//! tail) are replayed through the Exchange DApp on the consortium
//! configuration. For each chain the figure plots the CDF of commit
//! latencies; a plateau below 100 % exposes dropped transactions.

use diablo_bench::maybe_quick;
use diablo_chains::tx::CallSel;
use diablo_chains::{Chain, Experiment, RunResult};
use diablo_contracts::{calls, exchange::Stock, DApp};
use diablo_net::DeploymentKind;
use diablo_workloads::{traces, Workload};

fn run_burst(chain: Chain, workload: Workload, stock: Stock) -> RunResult {
    // Every transaction buys the burst's stock, as the paper's
    // per-stock workloads do.
    let entry = calls::entry_index(DApp::Exchange, stock.entry()).expect("known entry");
    Experiment::new(chain, DeploymentKind::Consortium, maybe_quick(workload))
        .with_dapp(DApp::Exchange)
        .with_call(CallSel {
            entry,
            args: [0, 0],
            argc: 0,
        })
        .run()
}

fn main() {
    println!("Figure 6: latency CDFs under NASDAQ load peaks (consortium configuration)\n");
    let workloads = [
        ("Google (peak 800 tx/s)", traces::google(), Stock::Google),
        (
            "Microsoft (peak 4,000 tx/s)",
            traces::microsoft(),
            Stock::Microsoft,
        ),
        ("Apple (peak 10,000 tx/s)", traces::apple(), Stock::Apple),
    ];
    let probes = [1.0, 2.0, 4.0, 8.0, 14.0, 22.0, 30.0, 60.0, 120.0, 162.0];
    for (label, workload, stock) in workloads {
        println!("== {label} ==");
        print!("{:<10} {:>7}", "chain", "commit%");
        for p in probes {
            print!(" {:>6}", format!("<={p}s"));
        }
        println!("  max lat");
        println!("{}", "-".repeat(10 + 8 + probes.len() * 7 + 9));
        for chain in Chain::ALL {
            let r = run_burst(chain, workload.clone(), stock);
            let cdf = r.latency_cdf();
            let total = r.submitted().max(1) as f64;
            print!("{:<10} {:>6.1}%", chain.name(), r.commit_ratio() * 100.0);
            for p in probes {
                // Fraction of *submitted* transactions committed within
                // p seconds (so dropped transactions show as plateaus).
                let frac = cdf.fraction_below(p) * cdf.len() as f64 / total;
                print!(" {:>5.0}%", frac * 100.0);
            }
            println!("  {:>6.1}s", r.max_latency_secs());
        }
        println!();
    }
    println!(
        "Paper anchors: Quorum commits 100% on all three bursts (91% within 8 s on Apple); \
         Diem plateaus at 75% (all within 30 s); Algorand at 77% and Solana at 52% on Apple; \
         Avalanche commits ~90% with a tail up to 162 s; Ethereum keeps committing slowly \
         (118 s tail on Google, 64% on Microsoft)."
    );
}
