//! Figure 4: robustness to high constant workloads.
//!
//! Each chain is deployed in the configuration where it performed best
//! under 1,000 TPS (§6.2) — determined here by actually re-running the
//! Figure 3 sweep, exactly as the paper describes — and then stressed
//! with 10,000 TPS for 120 s. The paper's headline: the deterministic
//! leader-based BFT chains suffer most (Diem ÷10, Quorum → 0) while the
//! probabilistic/eventually-consistent chains degrade gracefully
//! (Algorand ÷1.45, Solana ÷1.94) and Avalanche is throttled anyway.

use diablo_bench::{bar, run_native};
use diablo_chains::Chain;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn best_config(chain: Chain) -> DeploymentKind {
    // In increasing order of decentralization; near-ties (within 2%)
    // resolve toward the larger, more representative deployment, as the
    // paper's §6.3 deployments do.
    let configs = [
        DeploymentKind::Datacenter,
        DeploymentKind::Testnet,
        DeploymentKind::Devnet,
        DeploymentKind::Community,
    ];
    let measured: Vec<(DeploymentKind, f64)> = configs
        .into_iter()
        .map(|kind| {
            let r = run_native(chain, kind, traces::constant(1_000.0, 120));
            (kind, r.avg_throughput())
        })
        .collect();
    let best = measured.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    measured
        .into_iter()
        .rev()
        .find(|&(_, t)| t >= best * 0.98)
        .map(|(kind, _)| kind)
        .expect("non-empty configs")
}

fn main() {
    println!("Figure 4: 1,000 TPS vs 10,000 TPS in each chain's best configuration\n");
    println!(
        "{:<10} {:<11} {:>11} {:>9} {:>11} {:>9} {:>7}",
        "chain", "config", "tput@1k", "lat@1k", "tput@10k", "lat@10k", "ratio"
    );
    println!("{}", "-".repeat(76));
    for chain in Chain::ALL {
        let kind = best_config(chain);
        let low = run_native(chain, kind, traces::constant(1_000.0, 120));
        let high = run_native(chain, kind, traces::constant(10_000.0, 120));
        let ratio = if high.avg_throughput() > 0.0 {
            low.avg_throughput() / high.avg_throughput()
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10} {:<11} {:>9.1} {:>8.1}s {:>11.1} {:>8.1}s {:>6.2}x",
            chain.name(),
            kind.name(),
            low.avg_throughput(),
            low.avg_latency_secs(),
            high.avg_throughput(),
            high.avg_latency_secs(),
            ratio
        );
        println!("{:<22} 1k:  {}", "", bar(low.avg_throughput(), 1_000.0, 30));
        println!(
            "{:<22} 10k: {}",
            "",
            bar(high.avg_throughput(), 1_000.0, 30)
        );
    }
    println!();
    println!(
        "Paper anchors: Diem divided by 10; Quorum drops to ~0; Algorand divided by 1.45 \
         (latency x2.43); Solana divided by 1.94 (latency x4); Avalanche not hurt \
         (x1.38 in the paper); Ethereum commits only 0.09% of the 10,000 TPS load."
    );
}
