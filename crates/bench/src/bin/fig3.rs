//! Figure 3: scalability across deployment configurations.
//!
//! Every chain is stressed with a constant 1,000 TPS of native
//! transfers for 120 s — "the same order of magnitude as the average
//! load of the Visa system" — on the datacenter, testnet, devnet and
//! community configurations, reporting average throughput and latency.

use diablo_bench::{bar, run_native};
use diablo_chains::Chain;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    let configs = [
        DeploymentKind::Datacenter,
        DeploymentKind::Testnet,
        DeploymentKind::Devnet,
        DeploymentKind::Community,
    ];
    println!("Figure 3: constant 1,000 TPS native transfers, 120 s\n");
    println!(
        "{:<10} {:<11} {:>9} {:>9}  throughput",
        "chain", "config", "tput TPS", "latency"
    );
    println!("{}", "-".repeat(76));
    for chain in Chain::ALL {
        for kind in configs {
            let r = run_native(chain, kind, traces::constant(1_000.0, 120));
            println!(
                "{:<10} {:<11} {:>9.1} {:>8.1}s  {}",
                chain.name(),
                kind.name(),
                r.avg_throughput(),
                r.avg_latency_secs(),
                bar(r.avg_throughput(), 1_000.0, 30)
            );
        }
        println!();
    }
    println!(
        "Paper anchors: only Solana stays above 800 TPS on every configuration (latency \
         below 21 s); Quorum reaches 499 TPS at 13 s on community; Diem exceeds 982 TPS \
         at <= 2 s latency but only on the local setups; Algorand's best average is 885 TPS \
         (testnet) and it is the only other chain above 820 TPS on devnet."
    );
}
