//! Performance-regression gate over `BENCH_*.json` files.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression_pct]
//! ```
//!
//! Both files are the JSON-lines output of
//! `diablo_testkit::bench::Bench::finish` (one object per line). The
//! gate compares every benchmark present in both files and exits
//! non-zero when any regresses by more than `max_regression_pct`
//! (default 10).
//!
//! Two robustness rules:
//!
//! - Entries are compared only when their `items` counts match: a
//!   smoke-sized run is never measured against a full-scale baseline,
//!   it is reported as a shape mismatch and skipped.
//! - The *current* side uses `min_ns`, the sample least distorted by
//!   transient machine load, against the baseline's `mean_ns`: a loaded
//!   CI machine inflates means long before it inflates the fastest
//!   sample, while a real regression moves both.
//!
//! An empty intersection is itself a failure — a gate that finds
//! nothing to compare (renamed benchmarks, empty files) must not pass
//! silently.
//!
//! Besides the pass/fail text, every invocation appends one JSON line
//! per compared benchmark (`baseline_ns`, `current_ns`, `ratio`,
//! `verdict`) to the report file named by `DIABLO_GATE_REPORT`
//! (default `results/GATE_report.json`), so scripted pipelines can read
//! verdicts without scraping the text output. Appending keeps the
//! report whole when CI gates several suites in sequence; the file is
//! truncated at most once per process tree via `DIABLO_GATE_TRUNCATE`.

use std::io::Write as _;
use std::process::ExitCode;

/// One parsed `BENCH_*.json` line.
struct Entry {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    items: u64,
}

/// One gate decision, as written to the machine-readable report.
struct Verdict {
    name: String,
    baseline_ns: f64,
    current_ns: f64,
    verdict: &'static str,
}

/// Extracts `"key":<number>` from a JSON line our own emitter wrote.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts `"key":"<string>"` (no escape handling: bench names are
/// ours and contain neither quotes nor backslashes).
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_file(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let entry = (|| {
            Some(Entry {
                name: str_field(line, "name")?,
                mean_ns: num_field(line, "mean_ns")?,
                min_ns: num_field(line, "min_ns")?,
                items: num_field(line, "items")? as u64,
            })
        })()
        .ok_or_else(|| format!("{path}: malformed line: {line}"))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Writes the machine-readable report: one JSON line per decision.
/// `DIABLO_GATE_TRUNCATE=1` starts the file over; otherwise lines
/// append so sequential gate invocations build one report.
fn write_report(verdicts: &[Verdict]) -> Result<(), String> {
    let path = std::env::var("DIABLO_GATE_REPORT")
        .unwrap_or_else(|_| "results/GATE_report.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    let truncate = std::env::var("DIABLO_GATE_TRUNCATE").as_deref() == Ok("1");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(!truncate)
        .write(true)
        .truncate(truncate)
        .open(&path)
        .map_err(|e| format!("{path}: {e}"))?;
    for v in verdicts {
        let ratio = if v.baseline_ns > 0.0 {
            v.current_ns / v.baseline_ns
        } else {
            0.0
        };
        writeln!(
            file,
            "{{\"name\":\"{}\",\"baseline_ns\":{:.0},\"current_ns\":{:.0},\
             \"ratio\":{:.4},\"verdict\":\"{}\"}}",
            v.name, v.baseline_ns, v.current_ns, ratio, v.verdict
        )
        .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression_pct]");
            return ExitCode::from(2);
        }
    };
    let max_pct: f64 = match args.get(2).map(|s| s.parse()) {
        None => 10.0,
        Some(Ok(p)) => p,
        Some(Err(_)) => {
            eprintln!("bench_gate: bad max_regression_pct `{}`", args[2]);
            return ExitCode::from(2);
        }
    };

    let (baseline, current) = match (parse_file(baseline_path), parse_file(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut verdicts: Vec<Verdict> = Vec::new();
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            println!("  new       {:<44} (no baseline)", cur.name);
            verdicts.push(Verdict {
                name: cur.name.clone(),
                baseline_ns: 0.0,
                current_ns: cur.min_ns,
                verdict: "new",
            });
            continue;
        };
        if base.items != cur.items {
            println!(
                "  skipped   {:<44} shape mismatch: {} vs {} items",
                cur.name, cur.items, base.items
            );
            verdicts.push(Verdict {
                name: cur.name.clone(),
                baseline_ns: base.mean_ns,
                current_ns: cur.min_ns,
                verdict: "skipped",
            });
            continue;
        }
        compared += 1;
        let delta_pct = (cur.min_ns / base.mean_ns - 1.0) * 100.0;
        let verdict = if delta_pct > max_pct {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        verdicts.push(Verdict {
            name: cur.name.clone(),
            baseline_ns: base.mean_ns,
            current_ns: cur.min_ns,
            verdict,
        });
        println!(
            "  {verdict:<9} {:<44} {:>9.2} ms -> {:>9.2} ms ({delta_pct:+.1}%)",
            cur.name,
            base.mean_ns / 1e6,
            cur.min_ns / 1e6,
        );
    }

    if let Err(e) = write_report(&verdicts) {
        eprintln!("bench_gate: report: {e}");
        return ExitCode::from(2);
    }

    if compared == 0 {
        eprintln!("bench_gate: no comparable benchmarks between {baseline_path} and {current_path}");
        return ExitCode::from(1);
    }
    if regressions > 0 {
        eprintln!("bench_gate: {regressions} benchmark(s) regressed more than {max_pct}%");
        return ExitCode::from(1);
    }
    println!("bench_gate: {compared} benchmark(s) within {max_pct}% of baseline");
    ExitCode::SUCCESS
}
