//! Performance-regression gate over `BENCH_*.json` files.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_regression_pct]
//! ```
//!
//! Both files are the JSON-lines output of
//! `diablo_testkit::bench::Bench::finish` (one object per line). The
//! gate compares every benchmark present in both files and exits
//! non-zero when any regresses by more than `max_regression_pct`
//! (default 10).
//!
//! Two robustness rules:
//!
//! - Entries are compared only when their `items` counts match: a
//!   smoke-sized run is never measured against a full-scale baseline,
//!   it is reported as a shape mismatch and skipped.
//! - The *current* side uses `min_ns`, the sample least distorted by
//!   transient machine load, against the baseline's `mean_ns`: a loaded
//!   CI machine inflates means long before it inflates the fastest
//!   sample, while a real regression moves both.
//!
//! An empty intersection is itself a failure — a gate that finds
//! nothing to compare (renamed benchmarks, empty files) must not pass
//! silently.

use std::process::ExitCode;

/// One parsed `BENCH_*.json` line.
struct Entry {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    items: u64,
}

/// Extracts `"key":<number>` from a JSON line our own emitter wrote.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts `"key":"<string>"` (no escape handling: bench names are
/// ours and contain neither quotes nor backslashes).
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_file(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let entry = (|| {
            Some(Entry {
                name: str_field(line, "name")?,
                mean_ns: num_field(line, "mean_ns")?,
                min_ns: num_field(line, "min_ns")?,
                items: num_field(line, "items")? as u64,
            })
        })()
        .ok_or_else(|| format!("{path}: malformed line: {line}"))?;
        entries.push(entry);
    }
    Ok(entries)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <current.json> [max_regression_pct]");
            return ExitCode::from(2);
        }
    };
    let max_pct: f64 = match args.get(2).map(|s| s.parse()) {
        None => 10.0,
        Some(Ok(p)) => p,
        Some(Err(_)) => {
            eprintln!("bench_gate: bad max_regression_pct `{}`", args[2]);
            return ExitCode::from(2);
        }
    };

    let (baseline, current) = match (parse_file(baseline_path), parse_file(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            println!("  new       {:<44} (no baseline)", cur.name);
            continue;
        };
        if base.items != cur.items {
            println!(
                "  skipped   {:<44} shape mismatch: {} vs {} items",
                cur.name, cur.items, base.items
            );
            continue;
        }
        compared += 1;
        let delta_pct = (cur.min_ns / base.mean_ns - 1.0) * 100.0;
        let verdict = if delta_pct > max_pct {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {verdict:<9} {:<44} {:>9.2} ms -> {:>9.2} ms ({delta_pct:+.1}%)",
            cur.name,
            base.mean_ns / 1e6,
            cur.min_ns / 1e6,
        );
    }

    if compared == 0 {
        eprintln!("bench_gate: no comparable benchmarks between {baseline_path} and {current_path}");
        return ExitCode::from(1);
    }
    if regressions > 0 {
        eprintln!("bench_gate: {regressions} benchmark(s) regressed more than {max_pct}%");
        return ExitCode::from(1);
    }
    println!("bench_gate: {compared} benchmark(s) within {max_pct}% of baseline");
    ExitCode::SUCCESS
}
