//! Calibration probe: prints the Figure 3 sweep (1,000 TPS native
//! transfers on four deployments) plus the Figure 4 robustness runs, so
//! calibration constants can be fitted against the paper's targets.

use diablo_chains::{Chain, Experiment};
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    let configs = [
        DeploymentKind::Datacenter,
        DeploymentKind::Testnet,
        DeploymentKind::Devnet,
        DeploymentKind::Community,
    ];
    println!("== Figure 3: constant 1,000 TPS, 120 s ==");
    for chain in Chain::ALL {
        for kind in configs {
            let t = std::time::Instant::now();
            let r = Experiment::new(chain, kind, traces::constant(1000.0, 120)).run();
            println!(
                "{:<10} {:<11} tput {:>7.1} TPS  lat {:>6.1}s  commit {:>5.1}%  ({:?})",
                chain.name(),
                kind.name(),
                r.avg_throughput(),
                r.avg_latency_secs(),
                r.commit_ratio() * 100.0,
                t.elapsed()
            );
        }
    }
    println!("== Figure 4: 10,000 TPS on testnet ==");
    for chain in Chain::ALL {
        let r = Experiment::new(
            chain,
            DeploymentKind::Testnet,
            traces::constant(10_000.0, 120),
        )
        .run();
        println!(
            "{:<10} tput {:>7.1} TPS  lat {:>6.1}s  commit {:>5.1}%",
            chain.name(),
            r.avg_throughput(),
            r.avg_latency_secs(),
            r.commit_ratio() * 100.0
        );
    }
}
