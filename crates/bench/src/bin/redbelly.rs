//! Extension: the leaderless contrast system.
//!
//! §6.1 and §6.3 contrast the six evaluated chains with Smart Red Belly
//! Blockchain — a *leaderless* deterministic BFT — noting that it
//! "could commit all of them in the same setting" (the NASDAQ DApp on
//! consortium) and "is immune to" the constant-high-workload collapse
//! that hits the leader-based Diem and Quorum. This binary reruns the
//! two experiments behind those sentences with the RedBelly extension
//! chain next to the paper's leader-based BFT representatives.

use diablo_bench::maybe_quick;
use diablo_chains::{Chain, Experiment, RunResult};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn show(label: &str, r: &RunResult) {
    println!(
        "  {label:<10} tput {:>7.1} TPS  lat {:>6.1}s  commit {:>5.1}%",
        r.avg_throughput(),
        r.avg_latency_secs(),
        r.commit_ratio() * 100.0
    );
}

fn main() {
    println!("Extension: leaderless DBFT (Red Belly) vs the leader-based BFT chains\n");

    println!("== NASDAQ Exchange DApp on consortium (§6.1's contrast) ==");
    for chain in [Chain::Quorum, Chain::Diem, Chain::RedBelly] {
        let r = Experiment::new(
            chain,
            DeploymentKind::Consortium,
            maybe_quick(traces::gafam()),
        )
        .with_dapp(DApp::Exchange)
        .run();
        show(chain.name(), &r);
    }
    println!("  -> the leaderless chain commits the whole workload, as [40] reports.\n");

    println!("== Sustained 10,000 TPS in the best configuration (§6.3's contrast) ==");
    for chain in [Chain::Quorum, Chain::Diem, Chain::RedBelly] {
        let low = Experiment::new(
            chain,
            DeploymentKind::Testnet,
            maybe_quick(traces::constant(1_000.0, 120)),
        )
        .run();
        let high = Experiment::new(
            chain,
            DeploymentKind::Testnet,
            maybe_quick(traces::constant(10_000.0, 120)),
        )
        .run();
        println!("{}:", chain.name());
        show("1k TPS", &low);
        show("10k TPS", &high);
    }
    println!(
        "  -> no leader queue to saturate: the leaderless protocol keeps its\n\
         \x20    throughput while Diem divides by ~10 and Quorum collapses."
    );
}
