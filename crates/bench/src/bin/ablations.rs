//! Ablation studies for the design choices §6.6 calls out.
//!
//! The paper's discussion attributes each chain's behaviour to a
//! specific mechanism; these ablations flip one mechanism at a time and
//! re-run the experiment that exposed it:
//!
//! 1. **Quorum with a bounded mempool** — §6.5/§6.6 conjecture a
//!    robustness/availability trade-off: IBFT's never-drop queue commits
//!    every burst but collapses under sustained overload. Bounding the
//!    pool should invert both results.
//! 2. **Solana at 1 confirmation** — the marketing claim of sub-second
//!    finality (§2) versus the 30-confirmation reality (§5.2).
//! 3. **Diem without the 100-transaction per-sender cap** — §5.2's
//!    mempool admission rule under the Apple burst.
//! 4. **Avalanche without the block-period throttle** — §6.2 conjectures
//!    Avalanche "throttles its throughput"; remove the floor.

use diablo_chains::{Chain, ChainParams, ConsensusKind, Experiment, MempoolPolicy, RunResult};
use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind};
use diablo_sim::SimDuration;
use diablo_workloads::traces;

fn params(chain: Chain, kind: DeploymentKind) -> ChainParams {
    ChainParams::standard(chain, &DeploymentConfig::standard(kind))
}

fn show(label: &str, r: &RunResult) {
    println!(
        "  {label:<26} tput {:>7.1} TPS  lat {:>6.1}s  commit {:>5.1}%",
        r.avg_throughput(),
        r.avg_latency_secs(),
        r.commit_ratio() * 100.0
    );
}

fn quorum_bounded_pool() {
    println!("== Ablation 1: Quorum with a bounded (geth-default-sized) mempool ==");
    let mut bounded = params(Chain::Quorum, DeploymentKind::Testnet);
    bounded.mempool = MempoolPolicy::bounded(7_000);

    println!("sustained 10,000 TPS (the §6.3 robustness probe):");
    let baseline = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(10_000.0, 120),
    )
    .run();
    show("never-drop (paper)", &baseline);
    let ablated = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(10_000.0, 120),
    )
    .with_params(bounded.clone())
    .run();
    show("bounded pool", &ablated);

    let mut bounded_consortium = params(Chain::Quorum, DeploymentKind::Consortium);
    bounded_consortium.mempool = MempoolPolicy::bounded(7_000);
    println!("Apple burst on consortium (the §6.5 availability probe):");
    let baseline = Experiment::new(Chain::Quorum, DeploymentKind::Consortium, traces::apple())
        .with_dapp(DApp::Exchange)
        .run();
    show("never-drop (paper)", &baseline);
    let ablated = Experiment::new(Chain::Quorum, DeploymentKind::Consortium, traces::apple())
        .with_dapp(DApp::Exchange)
        .with_params(bounded_consortium)
        .run();
    show("bounded pool", &ablated);
    println!(
        "  -> bounding the pool rescues robustness but forfeits the 100% burst\n\
         \x20    commits: the trade-off of §6.6.\n"
    );
}

fn solana_one_confirmation() {
    println!("== Ablation 2: Solana at 1 confirmation instead of 30 ==");
    let mut fast = params(Chain::Solana, DeploymentKind::Testnet);
    fast.confirmations = 1;
    let baseline = Experiment::new(
        Chain::Solana,
        DeploymentKind::Testnet,
        traces::constant(1_000.0, 120),
    )
    .run();
    show("30 confirmations (paper)", &baseline);
    let ablated = Experiment::new(
        Chain::Solana,
        DeploymentKind::Testnet,
        traces::constant(1_000.0, 120),
    )
    .with_params(fast)
    .run();
    show("1 confirmation", &ablated);
    println!(
        "  -> the headline sub-second-ish latency exists, but only by accepting\n\
         \x20    fork risk; the recommended 30 confirmations cost ~12 s (§5.2).\n"
    );
}

fn diem_without_sender_cap() {
    println!("== Ablation 3: Diem's 100-transaction per-sender cap with few signers ==");
    // §5.2: Diem "nodes only accept a maximum of 100 transactions from
    // the same signer", which is exactly why the paper's workloads sign
    // from 2,000 accounts. Replaying a 20-signer workload shows what
    // that setup works around.
    let mut capped = params(Chain::Diem, DeploymentKind::Consortium);
    capped.accounts = 20;
    let mut uncapped = capped.clone();
    uncapped.mempool = MempoolPolicy {
        capacity: uncapped.mempool.capacity,
        per_sender: None,
    };
    let workload = || traces::constant(1_000.0, 120);
    let baseline = Experiment::new(Chain::Diem, DeploymentKind::Consortium, workload())
        .with_params(capped)
        .run();
    show("per-sender cap (paper)", &baseline);
    println!(
        "  {:<26} {} transactions refused at admission (per-sender limit)",
        "",
        baseline.count_status(diablo_chains::TxStatus::DroppedPerSender)
    );
    let ablated = Experiment::new(Chain::Diem, DeploymentKind::Consortium, workload())
        .with_params(uncapped)
        .run();
    show("no per-sender cap", &ablated);
    println!(
        "  {:<26} {} transactions refused at admission (per-sender limit)",
        "",
        ablated.count_status(diablo_chains::TxStatus::DroppedPerSender)
    );
    println!(
        "  -> with few signers the cap refuses most of the load at admission —\n\
         \x20    the reason the paper's workloads submit from 2,000 accounts (§5.2).\n"
    );
}

fn avalanche_unthrottled() {
    println!("== Ablation 4: Avalanche without the block-period throttle ==");
    let mut unthrottled = params(Chain::Avalanche, DeploymentKind::Community);
    if let ConsensusKind::AvalancheSnow { sample_rounds, .. } = unthrottled.consensus {
        unthrottled.consensus = ConsensusKind::AvalancheSnow {
            sample_rounds,
            period_loaded: SimDuration::from_millis(400),
            period_idle: SimDuration::from_millis(400),
        };
    }
    let baseline = Experiment::new(
        Chain::Avalanche,
        DeploymentKind::Community,
        traces::constant(1_000.0, 120),
    )
    .run();
    show(">=1.18s period (paper)", &baseline);
    let ablated = Experiment::new(
        Chain::Avalanche,
        DeploymentKind::Community,
        traces::constant(1_000.0, 120),
    )
    .with_params(unthrottled)
    .run();
    show("400ms period", &ablated);
    println!(
        "  -> the §6.2 conjecture holds in the model: the period floor, not the\n\
         \x20    sampling protocol, caps Avalanche's throughput.\n"
    );
}

fn main() {
    println!("Design-choice ablations (see §6.6 of the paper)\n");
    quorum_bounded_pool();
    solana_one_confirmation();
    diem_without_sender_cap();
    avalanche_unthrottled();
}
