//! Figure 5: universality — the compute-intensive Mobility DApp.
//!
//! The Uber workload (810–900 TPS, 120 s) invokes `checkDistance`,
//! which loops over 10,000 drivers computing Euclidean distances with
//! Newton's integer square root. On the consortium configuration, the
//! three geth-based chains execute it (no hard per-transaction compute
//! cap); Algorand, Diem and Solana report "budget exceeded" — the X
//! marks of the figure.

use diablo_bench::{bar, run_dapp};
use diablo_chains::{Chain, RunResult};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;

fn main() {
    println!(
        "Figure 5: Mobility DApp (Uber workload, 810-900 TPS) on the consortium configuration\n"
    );
    let results: Vec<(Chain, RunResult)> = Chain::ALL
        .iter()
        .map(|&chain| {
            (
                chain,
                run_dapp(chain, DeploymentKind::Consortium, DApp::Mobility),
            )
        })
        .collect();
    let max_tput = results
        .iter()
        .filter(|(_, r)| r.able())
        .map(|(_, r)| r.avg_throughput())
        .fold(1.0, f64::max);
    println!(
        "{:<10} {:>9} {:>9} {:>8}  throughput",
        "chain", "tput TPS", "latency", "commit"
    );
    println!("{}", "-".repeat(72));
    for (chain, r) in &results {
        if !r.able() {
            println!(
                "{:<10} {:>9} {:>9} {:>8}  X  ({})",
                chain.name(),
                "X",
                "X",
                "X",
                r.unable_reason.as_deref().unwrap_or("unable")
            );
            continue;
        }
        println!(
            "{:<10} {:>9.1} {:>8.1}s {:>7.1}%  {}",
            chain.name(),
            r.avg_throughput(),
            r.avg_latency_secs(),
            r.commit_ratio() * 100.0,
            bar(r.avg_throughput(), max_tput, 30)
        );
    }
    println!();
    println!(
        "Paper anchors: Algorand, Diem and Solana cannot run the DApp (hard-coded execution \
         limits, 'budget exceeded'); of the three geth chains Quorum is highest at 622 TPS, \
         Avalanche and Ethereum stay below 169 TPS."
    );
}
