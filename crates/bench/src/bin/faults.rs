//! Fault-tolerance experiment (beyond the paper).
//!
//! Blockbench-style fault injection (§7) on the simulated chains: a
//! steady 500 TPS load on the devnet configuration while (a) `f` nodes
//! crash mid-run, (b) `f + 1` nodes crash mid-run, and (c) the network
//! degrades 4× mid-run. Deterministic BFT chains must survive (a), halt
//! under (b) and slow under (c); the probabilistic chains degrade more
//! gracefully.

use diablo_chains::{Chain, Experiment, FaultPlan, RunResult};
use diablo_net::{DeploymentConfig, DeploymentKind};
use diablo_sim::SimTime;
use diablo_workloads::traces;

fn run(chain: Chain, faults: FaultPlan) -> RunResult {
    Experiment::new(chain, DeploymentKind::Devnet, traces::constant(500.0, 120))
        .with_faults(faults)
        .run()
}

/// Committed transactions per second over the second half of the run
/// (after the fault hits at t = 60 s).
fn tail_throughput(r: &RunResult) -> f64 {
    let series = r.commit_series();
    let commits: u64 = (60..120).map(|s| series.get(s)).sum();
    commits as f64 / 60.0
}

fn main() {
    let cfg = DeploymentConfig::standard(DeploymentKind::Devnet);
    let f = cfg.byzantine_f();
    println!(
        "Fault injection on devnet (n = {}, f = {f}): 500 TPS, fault at t = 60 s\n",
        cfg.node_count()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "chain", "no fault", "crash f", "crash f+1", "4x slowdown"
    );
    println!("{}", "-".repeat(64));
    for chain in Chain::ALL {
        let baseline = run(chain, FaultPlan::none());
        let crash_f = run(
            chain,
            FaultPlan::builder()
                .crash_many(f, SimTime::from_secs(60))
                .build(),
        );
        let crash_f1 = run(
            chain,
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(60))
                .build(),
        );
        let slow = run(
            chain,
            FaultPlan::builder()
                .slowdown(SimTime::from_secs(60), 4.0)
                .build(),
        );
        println!(
            "{:<10} {:>8.1} TPS {:>8.1} TPS {:>8.1} TPS {:>8.1} TPS",
            chain.name(),
            tail_throughput(&baseline),
            tail_throughput(&crash_f),
            tail_throughput(&crash_f1),
            tail_throughput(&slow),
        );
    }
    println!(
        "\n(tail throughput = commits per second after the fault instant; a BFT chain \
         tolerates f = {f} crashes and halts at f + 1)"
    );
}
