//! Table 1: claimed versus observed performance.
//!
//! The paper contrasts the headline numbers announced for Algorand,
//! Avalanche and Solana with the best performance Diablo measured across
//! all of its configurations. We re-measure the "observed" column: the
//! best average throughput and the matching latency over the §5.1
//! configurations (the datacenter peak run for Solana uses the 10,000
//! TPS robustness load, which is where its best number comes from).

use diablo_bench::{maybe_quick, run_native};
use diablo_chains::{Chain, RunResult};
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

struct Claim {
    chain: Chain,
    claimed_tput: &'static str,
    claimed_lat: &'static str,
    claimed_setup: &'static str,
    /// The configurations to search for the best observed result,
    /// with the offered load of each probe.
    probes: &'static [(DeploymentKind, f64)],
}

const CLAIMS: &[Claim] = &[
    Claim {
        chain: Chain::Algorand,
        claimed_tput: "1K-46K TPS",
        claimed_lat: "2.5-4.5 s",
        claimed_setup: "?",
        probes: &[
            (DeploymentKind::Testnet, 1_000.0),
            (DeploymentKind::Datacenter, 1_000.0),
            (DeploymentKind::Devnet, 1_000.0),
        ],
    },
    Claim {
        chain: Chain::Avalanche,
        claimed_tput: "4.5K TPS",
        claimed_lat: "2 s",
        claimed_setup: "?",
        probes: &[
            (DeploymentKind::Datacenter, 1_000.0),
            (DeploymentKind::Datacenter, 10_000.0),
            (DeploymentKind::Testnet, 1_000.0),
        ],
    },
    Claim {
        chain: Chain::Solana,
        claimed_tput: "200K TPS",
        claimed_lat: "<1 s",
        claimed_setup: "150 nodes",
        probes: &[
            (DeploymentKind::Datacenter, 10_000.0),
            (DeploymentKind::Datacenter, 1_000.0),
            (DeploymentKind::Testnet, 1_000.0),
        ],
    },
];

fn best_observed(claim: &Claim) -> (RunResult, DeploymentKind) {
    let mut best: Option<(RunResult, DeploymentKind)> = None;
    for &(kind, tps) in claim.probes {
        let r = run_native(claim.chain, kind, maybe_quick(traces::constant(tps, 120)));
        let better = match &best {
            None => true,
            Some((b, _)) => r.avg_throughput() > b.avg_throughput(),
        };
        if better {
            best = Some((r, kind));
        }
    }
    best.expect("at least one probe")
}

fn main() {
    println!("Table 1: claimed vs observed performance (best across configurations)\n");
    println!(
        "{:<10} | {:>12} {:>10} {:>9} | {:>10} {:>8} {:>11}",
        "Blockchain", "claimed tput", "latency", "setup", "observed", "latency", "setup"
    );
    println!("{}", "-".repeat(82));
    for claim in CLAIMS {
        let (r, kind) = best_observed(claim);
        println!(
            "{:<10} | {:>12} {:>10} {:>9} | {:>7.0} TPS {:>6.1} s {:>11}",
            claim.chain.name(),
            claim.claimed_tput,
            claim.claimed_lat,
            claim.claimed_setup,
            r.avg_throughput(),
            r.avg_latency_secs(),
            kind.name()
        );
    }
    println!();
    println!(
        "Paper's observed column: Algorand 885 TPS / 8.5 s (testnet), Avalanche 323 TPS / 49 s \
         (datacenter), Solana 8845 TPS / 12 s (datacenter)."
    );
}
