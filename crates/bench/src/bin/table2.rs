//! Table 2: the DApp benchmarks and their real-trace workloads.
//!
//! For each of the five DApps, prints the contract, the trace, its
//! shape figures (duration, peak, mean, total transactions) and an
//! ASCII rendition of the submitted-transactions-per-second curve that
//! the paper plots in the table.

use std::fmt::Write as _;

use diablo_contracts::DApp;
use diablo_workloads::{traces, Workload};

fn sparkline(w: &Workload, width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let rates = w.rates();
    if rates.is_empty() {
        return String::new();
    }
    let peak = w.peak_tps().max(1.0);
    let chunk = rates.len().div_ceil(width);
    rates
        .chunks(chunk)
        .map(|c| {
            let m = c.iter().copied().fold(0.0, f64::max);
            let lvl = ((m / peak) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[lvl.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn main() {
    println!("Table 2: DApps and their real-trace workloads\n");
    println!(
        "{:<13} {:<22} {:<9} {:>5} {:>9} {:>9} {:>10}",
        "DApp", "Contract", "Trace", "secs", "peak TPS", "mean TPS", "total txs"
    );
    println!("{}", "-".repeat(84));
    for dapp in DApp::ALL {
        let w = traces::for_dapp(dapp.name()).expect("trace exists");
        println!(
            "{:<13} {:<22} {:<9} {:>5} {:>9.0} {:>9.0} {:>10}",
            dapp.name(),
            dapp.contract_name(),
            dapp.workload_name(),
            w.duration_secs(),
            w.peak_tps(),
            w.mean_tps(),
            w.total_txs()
        );
        println!("{:>13} {}", "", sparkline(&w, 60));
    }
    // Plot-ready exports of the Table 2 curves.
    let out = std::path::Path::new("results/traces");
    if std::fs::create_dir_all(out).is_ok() {
        for dapp in DApp::ALL {
            let w = traces::for_dapp(dapp.name()).expect("trace exists");
            let mut dat = String::from(
                "# second submitted_tps
",
            );
            for (sec, rate) in w.rates().iter().enumerate() {
                let _ = writeln!(dat, "{sec} {rate:.1}");
            }
            let _ = std::fs::write(out.join(format!("{}.dat", w.name())), dat);
        }
        println!("(wrote per-second curves to {})", out.display());
    }

    println!();
    println!("Per-stock NASDAQ bursts (used by the availability experiment, Fig. 6):");
    for w in [
        traces::google(),
        traces::amazon(),
        traces::facebook(),
        traces::microsoft(),
        traces::apple(),
    ] {
        println!(
            "  {:<18} peak {:>6.0} TPS, tail {:>3.0} TPS, {} txs",
            w.name(),
            w.peak_tps(),
            w.rate_at(10),
            w.total_txs()
        );
    }
}
