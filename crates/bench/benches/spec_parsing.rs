//! Microbenchmark: the workload-specification pipeline.

use diablo_testkit::bench::{black_box, Bench};

use diablo_core::adapters;
use diablo_core::secondary::{declare_resources, plan_range};
use diablo_core::spec::{BenchmarkSpec, PAPER_DOTA_SPEC};

fn main() {
    let mut b = Bench::suite("spec_parsing");

    b.bench("spec/parse_paper_dota", || {
        black_box(BenchmarkSpec::parse(PAPER_DOTA_SPEC).expect("parses"))
    });

    // Planning the paper's dota spec presigns ~1.6M interactions.
    let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).expect("parses");
    b.samples(10);
    b.bench("spec/plan_paper_dota/three_clients", || {
        let mut conn = adapters::connector(diablo_chains::Chain::Quorum);
        declare_resources(&spec, &mut conn).expect("resources");
        plan_range(&spec, (0, 3), &mut conn).expect("plan");
        black_box(conn.take_plan().len())
    });

    b.finish();
}
