//! Microbenchmark: the workload-specification pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use diablo_core::adapters;
use diablo_core::secondary::{declare_resources, plan_range};
use diablo_core::spec::{BenchmarkSpec, PAPER_DOTA_SPEC};

fn parse(c: &mut Criterion) {
    c.bench_function("spec/parse_paper_dota", |b| {
        b.iter(|| black_box(BenchmarkSpec::parse(PAPER_DOTA_SPEC).expect("parses")))
    });
}

fn plan(c: &mut Criterion) {
    // Planning the paper's dota spec presigns ~1.6M interactions.
    let spec = BenchmarkSpec::parse(PAPER_DOTA_SPEC).expect("parses");
    let mut group = c.benchmark_group("spec/plan_paper_dota");
    group.sample_size(10);
    group.bench_function("three_clients", |b| {
        b.iter(|| {
            let mut conn = adapters::connector(diablo_chains::Chain::Quorum);
            declare_resources(&spec, &mut conn).expect("resources");
            plan_range(&spec, (0, 3), &mut conn).expect("plan");
            black_box(conn.take_plan().len())
        })
    });
    group.finish();
}

criterion_group!(benches, parse, plan);
criterion_main!(benches);
