//! Microbenchmark: the contract VM interpreter.
//!
//! Measures the execution cost of each DApp's workload call on the geth
//! flavor — the per-transaction CPU work that the chain models charge —
//! plus the interpreter's raw instruction throughput.

use diablo_testkit::bench::{black_box, Bench};

use diablo_contracts::{build, calls, DApp};
use diablo_vm::{Interpreter, TxContext, VmFlavor};

fn main() {
    let mut b = Bench::suite("vm_interpreter");

    for dapp in [
        DApp::Exchange,
        DApp::Gaming,
        DApp::WebService,
        DApp::VideoSharing,
    ] {
        let contract = build(dapp, VmFlavor::Geth).expect("buildable");
        let call = calls::call_for(dapp, 0);
        let vm = Interpreter::new(VmFlavor::Geth);
        let ctx = TxContext {
            caller: 1,
            args: call.args.clone(),
            payload_bytes: call.payload_bytes,
            gas_limit: u64::MAX,
        };
        b.bench_batched(
            &format!("vm/dapp_call/{}", dapp.name()),
            || contract.initial_state.clone(),
            |mut state| {
                black_box(
                    vm.execute(&contract.program, call.entry, &ctx, &mut state)
                        .expect("executes"),
                )
            },
        );
    }

    // The 1.4M-instruction Mobility call gets its own group with fewer
    // samples (it runs for milliseconds).
    b.samples(10);
    {
        let contract = build(DApp::Mobility, VmFlavor::Geth).expect("buildable");
        let call = calls::call_for(DApp::Mobility, 0);
        let vm = Interpreter::new(VmFlavor::Geth);
        let ctx = TxContext {
            caller: 1,
            args: call.args.clone(),
            payload_bytes: 0,
            gas_limit: u64::MAX,
        };
        b.bench_batched(
            "vm/mobility/checkDistance_10k_drivers",
            || contract.initial_state.clone(),
            |mut state| {
                black_box(
                    vm.execute(&contract.program, call.entry, &ctx, &mut state)
                        .expect("executes"),
                )
            },
        );
    }

    // How fast a hard-budget flavor rejects the Mobility DApp — this is
    // on the admission path for every probe.
    {
        let contract = build(DApp::Mobility, VmFlavor::Avm).expect("buildable");
        let call = calls::call_for(DApp::Mobility, 0);
        let vm = Interpreter::new(VmFlavor::Avm);
        let ctx = TxContext {
            caller: 1,
            args: call.args.clone(),
            payload_bytes: 0,
            gas_limit: u64::MAX,
        };
        b.bench_batched(
            "vm/avm_budget_rejection",
            || contract.initial_state.clone(),
            |mut state| {
                black_box(
                    vm.execute(&contract.program, call.entry, &ctx, &mut state)
                        .unwrap_err(),
                )
            },
        );
    }

    b.finish();
}
