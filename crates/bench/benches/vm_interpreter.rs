//! Microbenchmark: the contract VM interpreter.
//!
//! Measures the execution cost of each DApp's workload call on the geth
//! flavor — the per-transaction CPU work that the chain models charge —
//! plus the interpreter's raw instruction throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use diablo_contracts::{build, calls, DApp};
use diablo_vm::{Interpreter, TxContext, VmFlavor};

fn dapp_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm/dapp_call");
    for dapp in [
        DApp::Exchange,
        DApp::Gaming,
        DApp::WebService,
        DApp::VideoSharing,
    ] {
        let contract = build(dapp, VmFlavor::Geth).expect("buildable");
        let call = calls::call_for(dapp, 0);
        let vm = Interpreter::new(VmFlavor::Geth);
        let ctx = TxContext {
            caller: 1,
            args: call.args.clone(),
            payload_bytes: call.payload_bytes,
            gas_limit: u64::MAX,
        };
        group.bench_function(dapp.name(), |b| {
            b.iter_batched(
                || contract.initial_state.clone(),
                |mut state| {
                    black_box(
                        vm.execute(&contract.program, call.entry, &ctx, &mut state)
                            .expect("executes"),
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn mobility_call(c: &mut Criterion) {
    // The 1.4M-instruction Mobility call gets its own group with fewer
    // samples (it runs for milliseconds).
    let mut group = c.benchmark_group("vm/mobility");
    group.sample_size(10);
    let contract = build(DApp::Mobility, VmFlavor::Geth).expect("buildable");
    let call = calls::call_for(DApp::Mobility, 0);
    let vm = Interpreter::new(VmFlavor::Geth);
    let ctx = TxContext {
        caller: 1,
        args: call.args.clone(),
        payload_bytes: 0,
        gas_limit: u64::MAX,
    };
    group.bench_function("checkDistance_10k_drivers", |b| {
        b.iter_batched(
            || contract.initial_state.clone(),
            |mut state| {
                black_box(
                    vm.execute(&contract.program, call.entry, &ctx, &mut state)
                        .expect("executes"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn budget_rejection(c: &mut Criterion) {
    // How fast a hard-budget flavor rejects the Mobility DApp — this is
    // on the admission path for every probe.
    let contract = build(DApp::Mobility, VmFlavor::Avm).expect("buildable");
    let call = calls::call_for(DApp::Mobility, 0);
    let vm = Interpreter::new(VmFlavor::Avm);
    let ctx = TxContext {
        caller: 1,
        args: call.args.clone(),
        payload_bytes: 0,
        gas_limit: u64::MAX,
    };
    c.bench_function("vm/avm_budget_rejection", |b| {
        b.iter_batched(
            || contract.initial_state.clone(),
            |mut state| {
                black_box(
                    vm.execute(&contract.program, call.entry, &ctx, &mut state)
                        .unwrap_err(),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, dapp_calls, mobility_call, budget_rejection);
criterion_main!(benches);
