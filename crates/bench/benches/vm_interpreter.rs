//! Microbenchmark: the contract VM interpreter, baseline vs prepared.
//!
//! For every DApp workload call this measures the per-transaction CPU
//! work twice: through the baseline per-instruction-metered
//! `Interpreter::execute`, and through the prepared fast path
//! (`Interpreter::execute_prepared`) that pre-charges basic blocks and
//! skips the checks deploy-time preparation already proved safe. The
//! `.../baseline` vs `.../prepared` pairs in `BENCH_vm_interpreter.json`
//! quantify the speedup; the differential property test in `diablo-vm`
//! guarantees the two paths agree observationally.

use diablo_testkit::bench::{black_box, Bench};

use diablo_contracts::{build, calls, Contract, DApp};
use diablo_vm::{EntryId, Interpreter, TxContext, VmFlavor};

/// Benchmarks one workload call through both execution paths.
fn bench_pair(b: &mut Bench, group: &str, contract: &Contract, expect_ok: bool) {
    let call = calls::call_for(contract.dapp, 0);
    let vm = Interpreter::new(contract.flavor);
    let ctx = TxContext {
        caller: 1,
        args: call.args.clone(),
        payload_bytes: call.payload_bytes,
        gas_limit: u64::MAX,
    };
    let entry: EntryId = contract.entry_id(call.entry).expect("entry interned");

    b.bench_batched(
        &format!("{group}/baseline"),
        || contract.initial_state.clone(),
        |mut state| {
            let r = vm.execute(&contract.program, call.entry, &ctx, &mut state);
            assert_eq!(r.is_ok(), expect_ok);
            black_box(r)
        },
    );
    b.bench_batched(
        &format!("{group}/prepared"),
        || contract.initial_state.clone(),
        |mut state| {
            let r = vm.execute_prepared(&contract.prepared, entry, &ctx, &mut state);
            assert_eq!(r.is_ok(), expect_ok);
            black_box(r)
        },
    );
}

fn main() {
    let mut b = Bench::suite("vm_interpreter");

    for dapp in [
        DApp::Exchange,
        DApp::Gaming,
        DApp::WebService,
        DApp::VideoSharing,
    ] {
        let contract = build(dapp, VmFlavor::Geth).expect("buildable");
        bench_pair(
            &mut b,
            &format!("vm/dapp_call/{}", dapp.name()),
            &contract,
            true,
        );
    }

    // The 1.4M-instruction Mobility call gets its own group (it runs
    // for milliseconds per call, so every sample is a single call).
    // This is the pair the prepared pipeline exists for:
    // per-instruction metering dominates the baseline here.
    b.samples(30);
    {
        let contract = build(DApp::Mobility, VmFlavor::Geth).expect("buildable");
        bench_pair(
            &mut b,
            "vm/mobility/checkDistance_10k_drivers",
            &contract,
            true,
        );
    }

    // How fast a hard-budget flavor rejects the Mobility DApp — this is
    // on the admission path for every probe. The run dies ~700 ops in,
    // so the prepared path spends its whole life in the metered
    // fallback; the pair checks that path has no regression.
    {
        let contract = build(DApp::Mobility, VmFlavor::Avm).expect("buildable");
        bench_pair(&mut b, "vm/avm_budget_rejection", &contract, false);
    }

    b.finish();
}
