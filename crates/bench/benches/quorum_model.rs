//! Microbenchmark: the analytic quorum-latency model.
//!
//! IBFT commit latency over 200 geo-distributed nodes involves two
//! all-to-all order-statistic rounds; this is computed once per block,
//! so its cost bounds the block rate the simulator can sustain.

use diablo_testkit::bench::{black_box, Bench};

use diablo_net::{DeploymentConfig, DeploymentKind, NetworkModel, QuorumModel};

fn model_for(kind: DeploymentKind) -> QuorumModel {
    let cfg = DeploymentConfig::standard(kind);
    QuorumModel::new(&cfg, &NetworkModel::deterministic())
}

fn main() {
    let mut b = Bench::suite("quorum_model");

    for kind in [DeploymentKind::Devnet, DeploymentKind::Consortium] {
        b.bench(&format!("quorum/construct/{}", kind.name()), || {
            black_box(model_for(kind))
        });
    }

    let devnet = model_for(DeploymentKind::Devnet);
    let consortium = model_for(DeploymentKind::Consortium);
    b.bench("quorum/phase/ibft_commit_10_nodes", || {
        black_box(devnet.ibft_commit(3, 250_000))
    });
    b.bench("quorum/phase/ibft_commit_200_nodes", || {
        black_box(consortium.ibft_commit(42, 250_000))
    });
    b.bench("quorum/phase/hotstuff_commit_200_nodes", || {
        black_box(consortium.hotstuff_commit(42, 250_000))
    });
    b.bench("quorum/phase/gossip_200_nodes", || {
        black_box(consortium.gossip_all(42, 8, 250_000))
    });

    b.finish();
}
