//! Microbenchmark: the analytic quorum-latency model.
//!
//! IBFT commit latency over 200 geo-distributed nodes involves two
//! all-to-all order-statistic rounds; this is computed once per block,
//! so its cost bounds the block rate the simulator can sustain.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use diablo_net::{DeploymentConfig, DeploymentKind, NetworkModel, QuorumModel};

fn model_for(kind: DeploymentKind) -> QuorumModel {
    let cfg = DeploymentConfig::standard(kind);
    QuorumModel::new(&cfg, &NetworkModel::deterministic())
}

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum/construct");
    for kind in [DeploymentKind::Devnet, DeploymentKind::Consortium] {
        group.bench_function(kind.name(), |b| b.iter(|| black_box(model_for(kind))));
    }
    group.finish();
}

fn phases(c: &mut Criterion) {
    let devnet = model_for(DeploymentKind::Devnet);
    let consortium = model_for(DeploymentKind::Consortium);
    let mut group = c.benchmark_group("quorum/phase");
    group.bench_function("ibft_commit_10_nodes", |b| {
        b.iter(|| black_box(devnet.ibft_commit(3, 250_000)))
    });
    group.bench_function("ibft_commit_200_nodes", |b| {
        b.iter(|| black_box(consortium.ibft_commit(42, 250_000)))
    });
    group.bench_function("hotstuff_commit_200_nodes", |b| {
        b.iter(|| black_box(consortium.hotstuff_commit(42, 250_000)))
    });
    group.bench_function("gossip_200_nodes", |b| {
        b.iter(|| black_box(consortium.gossip_all(42, 8, 250_000)))
    });
    group.finish();
}

criterion_group!(benches, construction, phases);
criterion_main!(benches);
