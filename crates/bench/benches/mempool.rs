//! Microbenchmark: mempool admission and block assembly.
//!
//! The pool is on the hot path of every simulated transaction; the
//! take-batch scan is also the mechanism behind Quorum's overload
//! collapse, so its cost profile matters.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Mempool, MempoolPolicy, Payload, TxMeta};
use diablo_sim::SimTime;

fn tx(id: u32, sender: u32) -> TxMeta {
    TxMeta {
        id,
        sender,
        payload: Payload::Transfer,
        submitted: SimTime::from_micros(id as u64),
        available: SimTime::from_micros(id as u64),
        wire_bytes: 150,
        fee_cap_millis: 2_000,
    }
}

fn filled(policy: MempoolPolicy, n: u32) -> Mempool {
    let mut pool = Mempool::new(policy);
    for i in 0..n {
        let _ = pool.admit(tx(i, i % 2_000));
    }
    pool
}

fn main() {
    let mut b = Bench::suite("mempool");

    for (name, policy) in [
        ("unbounded", MempoolPolicy::UNBOUNDED),
        ("bounded", MempoolPolicy::bounded(5_000)),
        (
            "per_sender",
            MempoolPolicy {
                capacity: Some(50_000),
                per_sender: Some(100),
            },
        ),
    ] {
        b.bench_batched(
            &format!("mempool/admit_10k/{name}"),
            || Mempool::new(policy),
            |mut pool| {
                for i in 0..10_000u32 {
                    let _ = pool.admit(tx(i, i % 130));
                }
                black_box(pool.len())
            },
        );
    }

    for backlog in [2_000u32, 20_000, 200_000] {
        b.bench_batched(
            &format!("mempool/take_batch_1500/backlog_{backlog}"),
            || filled(MempoolPolicy::UNBOUNDED, backlog),
            |mut pool| black_box(pool.take_batch(1_500, u64::MAX, |_| true).len()),
        );
    }

    b.bench_batched(
        "mempool/evict_expired_50k",
        || filled(MempoolPolicy::bounded(100_000), 50_000),
        |mut pool| {
            black_box(
                pool.evict_where(|t| t.submitted < SimTime::from_micros(25_000))
                    .len(),
            )
        },
    );

    b.finish();
}
