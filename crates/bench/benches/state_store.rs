//! State-store benchmark: the staged commit pipeline's overhead and
//! its two hot kernels.
//!
//! The e2e arms run the same Exchange-on-RedBelly shape as the `scale`
//! bench three ways — store off, store on in archive mode, store on
//! under distance pruning — so the pipeline's cost shows up as the
//! delta against the `off` arm rather than as an absolute number. The
//! micro arms isolate the two kernels the pipeline spends its time in:
//! the binary Merkle fold over sorted state entries and the flat-table
//! increment path under hot-page-cap eviction pressure.
//!
//! Two shapes:
//!
//! - **smoke** (default): 10,000 accounts, 100,000 transactions — CI's
//!   regression gate runs this against the checked-in
//!   `BENCH_baseline.json` (see `scripts/ci.sh`).
//! - **full** (`DIABLO_BENCH_FULL=1`): 1,000,000 accounts, 1,000,000
//!   transactions — the acceptance shape of docs/STORAGE.md, where
//!   distance pruning is what keeps the resident set bounded.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Chain, ChainParams, Experiment, PruneMode, StorageConfig};
use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind, InstanceType};
use diablo_store::{trie, FlatTable};
use diablo_workloads::traces;

#[derive(Clone, Copy)]
struct Shape {
    label: &'static str,
    accounts: u32,
    tps: f64,
    secs: u64,
}

const SMOKE: Shape = Shape {
    label: "exchange_10k",
    accounts: 10_000,
    tps: 5_000.0,
    secs: 20,
};

const FULL: Shape = Shape {
    label: "exchange_1m",
    accounts: 1_000_000,
    tps: 20_000.0,
    secs: 50,
};

const NODES: usize = 10;

fn e2e(shape: &Shape, storage: Option<StorageConfig>) -> u64 {
    let config =
        DeploymentConfig::spread(DeploymentKind::Consortium, NODES, InstanceType::C52xlarge);
    let mut params = ChainParams::standard(Chain::RedBelly, &config);
    params.accounts = shape.accounts;
    let mut e = Experiment::new(
        Chain::RedBelly,
        DeploymentKind::Consortium,
        traces::constant(shape.tps, shape.secs),
    )
    .with_config(config)
    .with_params(params)
    .with_dapp(DApp::Exchange);
    if let Some(cfg) = storage {
        e = e.with_storage(cfg);
    }
    e.run().committed()
}

fn main() {
    let full = std::env::var("DIABLO_BENCH_FULL").map(|v| v == "1").unwrap_or(false);
    let shape = if full { FULL } else { SMOKE };
    let items = (shape.tps as u64) * shape.secs;

    let mut b = Bench::suite("state_store");
    b.samples(if full { 3 } else { 5 });

    let arms: [(&str, Option<StorageConfig>); 3] = [
        ("off", None),
        ("full", Some(StorageConfig::default())),
        (
            "distance",
            Some(StorageConfig {
                prune: PruneMode::Distance(64),
                ..StorageConfig::default()
            }),
        ),
    ];
    for (arm, storage) in arms {
        let name = format!("state_store/{}/{}n/e2e_{}", shape.label, NODES, arm);
        b.bench_items(&name, items, move || black_box(e2e(&shape, storage)));
    }

    // Merkle fold: the per-block root over every live state entry. The
    // entry count tracks the shape's account pool (Exchange keeps one
    // balance per account), so smoke and full runs gate separately.
    let entries: Vec<(i64, i64)> = (0..shape.accounts as i64).map(|k| (k, k * 7 + 1)).collect();
    let name = format!("state_store/{}/trie_root", shape.label);
    b.bench_items(&name, shape.accounts as u64, move || {
        black_box(trie::root(&entries))
    });

    // Flat-table increments under eviction pressure: one touch per
    // planned transaction over the shape's id space, with a hot-page
    // cap small enough that pages freeze and thaw throughout.
    let ids: u32 = shape.accounts;
    let name = format!("state_store/{}/table_touch", shape.label);
    b.bench_items(&name, items, move || {
        let mut table = FlatTable::new();
        for i in 0..items {
            table.increment(((i * 2_654_435_761) % ids as u64) as u32, 1, i / 512);
            if i % 512 == 511 {
                table.enforce_cap(2);
            }
        }
        black_box(table.digest())
    });

    b.finish();
}
