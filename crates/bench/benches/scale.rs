//! Macrobenchmark: the million-account scale shape.
//!
//! Runs the Exchange DApp on RedBelly (unbounded mempool, no
//! superlinear pool scan — the chain that keeps a million-transaction
//! backlog alive instead of dropping it) across three geo-spread node
//! counts, once per event-queue backend. The wheel-vs-heap pairs
//! measure the simulation kernel itself: identical chains, identical
//! plans, only the `EventQueue` implementation differs.
//!
//! Two shapes:
//!
//! - **smoke** (default): 10,000 accounts, 100,000 transactions — CI's
//!   regression gate runs this against the checked-in
//!   `BENCH_baseline.json` (see `scripts/ci.sh`).
//! - **full** (`DIABLO_BENCH_FULL=1`): 1,000,000 accounts, 1,000,000
//!   transactions — the paper-scale push; every account signs about one
//!   transaction, so per-sender tracking, arena slots and queue events
//!   all reach seven figures.
//!
//! Names encode the shape (`scale/exchange_10k/...` vs
//! `scale/exchange_1m/...`) and every result carries `items` = planned
//! transactions, so a smoke run is never compared against a full
//! baseline.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Chain, ChainParams, Experiment};
use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind, InstanceType};
use diablo_sim::{EventQueue, QueueBackend, SimTime};
use diablo_workloads::traces;

#[derive(Clone, Copy)]
struct Shape {
    label: &'static str,
    accounts: u32,
    tps: f64,
    secs: u64,
}

const SMOKE: Shape = Shape {
    label: "exchange_10k",
    accounts: 10_000,
    tps: 5_000.0,
    secs: 20,
};

const FULL: Shape = Shape {
    label: "exchange_1m",
    accounts: 1_000_000,
    tps: 20_000.0,
    secs: 50,
};

const NODE_COUNTS: [usize; 3] = [10, 50, 200];

/// One event per planned transaction (the shape's constant-rate arrival
/// times) plus a self-rescheduling block event per superblock period,
/// drained through one `EventQueue` backend. The e2e arms measure the
/// whole chain — mempool, arena, execution — where the queue holds only
/// tick and block events; this arm is the kernel measurement the
/// wheel-vs-heap comparison is about, with the full transaction count
/// pending at once.
fn kernel_drain(backend: QueueBackend, shape: &Shape, block_period_us: u64) -> u64 {
    let n = (shape.tps as u64) * shape.secs;
    let gap_us = 1_000_000.0 / shape.tps;
    let end_us = shape.secs * 1_000_000;
    // false = transaction arrival, true = block production.
    let mut q: EventQueue<bool> = EventQueue::with_backend_and_capacity(backend, n as usize + 1);
    for i in 0..n {
        q.schedule(SimTime::from_micros((i as f64 * gap_us) as u64), false);
    }
    q.schedule(SimTime::ZERO, true);
    let mut popped = 0u64;
    while let Some((t, is_block)) = q.pop() {
        popped += 1;
        if is_block && t.as_micros() < end_us {
            q.schedule(t + diablo_sim::SimDuration::from_micros(block_period_us), true);
        }
    }
    popped
}

fn main() {
    let full = std::env::var("DIABLO_BENCH_FULL").map(|v| v == "1").unwrap_or(false);
    let shape = if full { FULL } else { SMOKE };
    let items = (shape.tps as u64) * shape.secs;

    let mut b = Bench::suite("scale");
    b.samples(if full { 3 } else { 5 });

    for nodes in NODE_COUNTS {
        let config =
            DeploymentConfig::spread(DeploymentKind::Consortium, nodes, InstanceType::C52xlarge);
        let mut params = ChainParams::standard(Chain::RedBelly, &config);
        params.accounts = shape.accounts;
        let block_period_us = match params.consensus {
            diablo_chains::ConsensusKind::LeaderlessDbft { min_period, .. } => {
                min_period.as_micros()
            }
            _ => 1_000_000,
        };
        for (backend, backend_name) in
            [(QueueBackend::Wheel, "wheel"), (QueueBackend::Heap, "heap")]
        {
            let name = format!("scale/{}/{}n/e2e_{}", shape.label, nodes, backend_name);
            let config = config.clone();
            let params = params.clone();
            b.bench_items(&name, items, move || {
                black_box(
                    Experiment::new(
                        Chain::RedBelly,
                        DeploymentKind::Consortium,
                        traces::constant(shape.tps, shape.secs),
                    )
                    .with_config(config.clone())
                    .with_params(params.clone())
                    .with_dapp(DApp::Exchange)
                    .with_queue_backend(backend)
                    .run()
                    .committed(),
                )
            });

            let name = format!("scale/{}/{}n/kernel_{}", shape.label, nodes, backend_name);
            b.bench_items(&name, items, move || {
                black_box(kernel_drain(backend, &shape, block_period_us))
            });
        }
    }

    b.finish();
}
