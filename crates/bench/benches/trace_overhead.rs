//! Benchmark: per-transaction tracing cost on a full simulated run.
//!
//! Measures a 10k-transaction Exchange experiment (1,000 TPS for 10
//! simulated seconds on Quorum) four ways: tracing disabled, sampled at
//! the default reservoir limit, sampled at 64, and full (`all`). The
//! untraced scenario is the hot path `bench_gate` pins: when the tracer
//! is off, its cost is one relaxed atomic load per emission site, so
//! `trace/exchange_10ktx/off` must sit within noise of the tracing-free
//! baseline. The sampled scenarios bound the cost of bounded tracing;
//! `all` is the worst case and is expected to pay for its allocations.
//!
//! The bench harness opts into the wall clock: here we measure real CPU
//! cost, not modeled sim time. Snapshots and trace sets produced under
//! the wall clock are not deterministic and are discarded.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Chain, Concurrency, ExecMode, Experiment};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_telemetry::trace::TraceSample;
use diablo_workloads::traces;

fn run(sample: Option<TraceSample>) -> usize {
    let mut e = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(1_000.0, 10),
    )
    .with_dapp(DApp::Exchange)
    .with_exec_mode(ExecMode::Exact)
    .with_concurrency(Concurrency::Serial)
    .with_grace(20);
    if let Some(sample) = sample {
        e = e.with_trace(sample);
    }
    let result = e.run();
    // Fold the trace into the measurement sink so full tracing cannot
    // be optimized down to the untraced run.
    result.committed() as usize
        + result.trace.map_or(0, |t| t.txs.len())
}

fn main() {
    diablo_telemetry::clock::use_wall_clock();
    let mut b = Bench::suite("trace");
    b.samples(10);

    let scenarios: [(&str, Option<TraceSample>); 4] = [
        ("off", None),
        ("sampled_default", Some(TraceSample::Limit(TraceSample::DEFAULT_LIMIT))),
        ("sampled_64", Some(TraceSample::Limit(64))),
        ("all", Some(TraceSample::All)),
    ];
    for (name, sample) in scenarios {
        b.bench(&format!("trace/exchange_10ktx/{name}"), || {
            black_box(run(sample))
        });
    }

    diablo_telemetry::reset();
    b.finish();
}
