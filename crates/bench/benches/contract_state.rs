//! Microbenchmark: `ContractState` load/store and the overlay read path.
//!
//! The contract key/value store sits on the hot path of every simulated
//! transaction, and the parallel block executor layers `Overlay`
//! read-through on top of it. This suite measures the primitive costs:
//! fresh inserts vs in-place updates through the entry-based `store`,
//! hit vs miss `load`, and `Overlay` reads falling through to the base
//! state.

use diablo_testkit::bench::{black_box, Bench};

use diablo_vm::{ContractState, Overlay, StateAccess, StateLimits};

/// Keys per timed batch.
const KEYS: i64 = 1024;

/// A base state holding `KEYS` populated entries.
fn populated() -> ContractState {
    let limits = StateLimits::unbounded();
    let mut state = ContractState::default();
    for k in 0..KEYS {
        assert!(state.store(k, k * 3, &limits));
    }
    state
}

fn main() {
    let mut b = Bench::suite("contract_state");
    let limits = StateLimits::unbounded();
    let base = populated();

    b.bench_batched(
        "state/store/insert_fresh_1k",
        ContractState::default,
        |mut state| {
            for k in 0..KEYS {
                assert!(state.store(k, k, &limits));
            }
            black_box(state.entry_count())
        },
    );

    b.bench_batched(
        "state/store/update_existing_1k",
        || base.clone(),
        |mut state| {
            for k in 0..KEYS {
                assert!(state.store(k, k + 1, &limits));
            }
            black_box(state.entry_count())
        },
    );

    b.bench("state/load/hit_1k", || {
        let mut acc = 0;
        for k in 0..KEYS {
            acc += base.load(k);
        }
        black_box(acc)
    });

    b.bench("state/load/miss_1k", || {
        let mut acc = 0;
        for k in KEYS..2 * KEYS {
            acc += base.load(k);
        }
        black_box(acc)
    });

    b.bench("state/overlay/read_through_1k", || {
        let overlay = Overlay::new(&base);
        let mut acc = 0;
        for k in 0..KEYS {
            acc += overlay.load(k);
        }
        black_box(acc)
    });

    b.finish();
}
