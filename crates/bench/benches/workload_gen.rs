//! Microbenchmark: workload-trace generation and expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use diablo_workloads::traces;

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/generate");
    group.bench_function("gafam", |b| b.iter(|| black_box(traces::gafam())));
    group.bench_function("fifa", |b| b.iter(|| black_box(traces::fifa())));
    group.bench_function("youtube", |b| b.iter(|| black_box(traces::youtube())));
    group.finish();
}

fn expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/expand_ticks");
    let dota = traces::dota();
    group.bench_function("dota_100ms", |b| {
        b.iter(|| black_box(dota.ticks(100).iter().sum::<u64>()))
    });
    let youtube = traces::youtube();
    group.bench_function("youtube_100ms", |b| {
        b.iter(|| black_box(youtube.ticks(100).iter().sum::<u64>()))
    });
    group.finish();
}

fn splitting(c: &mut Criterion) {
    let gafam = traces::gafam();
    c.bench_function("workloads/split_200_secondaries", |b| {
        b.iter(|| black_box(gafam.split(200).len()))
    });
}

criterion_group!(benches, generation, expansion, splitting);
criterion_main!(benches);
