//! Microbenchmark: workload-trace generation and expansion.

use diablo_testkit::bench::{black_box, Bench};

use diablo_workloads::traces;

fn main() {
    let mut b = Bench::suite("workload_gen");

    b.bench("workloads/generate/gafam", || black_box(traces::gafam()));
    b.bench("workloads/generate/fifa", || black_box(traces::fifa()));
    b.bench("workloads/generate/youtube", || black_box(traces::youtube()));

    let dota = traces::dota();
    b.bench("workloads/expand_ticks/dota_100ms", || {
        black_box(dota.ticks(100).iter().sum::<u64>())
    });
    let youtube = traces::youtube();
    b.bench("workloads/expand_ticks/youtube_100ms", || {
        black_box(youtube.ticks(100).iter().sum::<u64>())
    });

    let gafam = traces::gafam();
    b.bench("workloads/split_200_secondaries", || {
        black_box(gafam.split(200).len())
    });

    b.finish();
}
