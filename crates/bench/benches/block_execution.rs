//! Benchmark: committed-block execution — serial vs static-parallel vs
//! optimistic.
//!
//! Measures [`ExecutionEngine::execute_block`] over whole committed
//! blocks under every [`Concurrency`] mode at 2, 4 and 8 worker
//! threads. Four block shapes bracket the two schedulers (the execution
//! model, including when each mode wins, is specified in
//! `docs/EXECUTION.md`):
//!
//! - a 10k-transaction Exchange block: the workload rotates five stocks,
//!   so static read/write-set analysis decomposes the block into five
//!   independent components — the static scheduler's best case, and a
//!   check of what optimistic speculation costs on conflict-light
//!   traffic it commits in one round;
//! - a Gaming block spread over 64 players: every `update` has a
//!   *dynamic* footprint, so the static executor is forced into its
//!   ordered serial fallback while the optimistic executor can speculate
//!   the independent per-player chains concurrently — the case this
//!   executor exists for (speedup is bounded by min(threads, cores);
//!   a single-core runner records pure protocol overhead instead);
//! - a hot Gaming block (every transaction updates player 1): a single
//!   fully-dependent chain no scheduler can speed up — this bounds the
//!   optimistic protocol's worst-case re-execution overhead over plain
//!   serial execution;
//! - a Mobility block on the MoveVM: dynamic read-only probes that all
//!   trip the flavor's hard compute budget — dynamic footprints without
//!   conflicts, where speculation commits everything in one round.
//!
//! Every timed sample re-runs the block from a freshly deployed contract
//! and asserts the costs are bit-identical to a serial reference run, so
//! the ci.sh smoke pass doubles as a wiring check for both executors.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::tx::CallSel;
use diablo_chains::{Concurrency, ExecMode, ExecutionEngine, Payload};
use diablo_contracts::DApp;
use diablo_vm::VmFlavor;

/// A freshly deployed Exact-mode engine for `dapp` on `flavor`.
fn engine(flavor: VmFlavor, dapp: DApp, concurrency: Concurrency) -> ExecutionEngine {
    ExecutionEngine::with_dapp(flavor, ExecMode::Exact, dapp)
        .expect("dapp builds on flavor")
        .with_concurrency(concurrency)
}

/// The serial / static / optimistic arms every block shape runs.
const CONFIGS: [(&str, Concurrency); 7] = [
    ("serial", Concurrency::Serial),
    ("parallel2", Concurrency::Parallel(2)),
    ("parallel4", Concurrency::Parallel(4)),
    ("parallel8", Concurrency::Parallel(8)),
    ("optimistic2", Concurrency::Optimistic(2)),
    ("optimistic4", Concurrency::Optimistic(4)),
    ("optimistic8", Concurrency::Optimistic(8)),
];

/// Benchmarks one block shape under every concurrency arm, checking
/// each run against the serial reference.
fn bench_block(b: &mut Bench, label: &str, flavor: VmFlavor, dapp: DApp, payloads: &[Payload]) {
    // Reference costs of a first committed block; every sample starts
    // from a fresh deployment, so all configurations must reproduce
    // these bit-for-bit.
    let expected = engine(flavor, dapp, Concurrency::Serial).execute_block(payloads);

    for (name, concurrency) in CONFIGS {
        b.bench_batched(
            &format!("block/{label}/{name}"),
            || engine(flavor, dapp, concurrency),
            |mut e| {
                let costs = e.execute_block(payloads);
                assert_eq!(costs, expected, "block execution diverged from serial");
                black_box(costs.len())
            },
        );
    }
}

/// `update(player, 1)` gaming invokes with the given player stream.
fn gaming_updates(n_txs: u64, player: impl Fn(u64) -> i32) -> Vec<Payload> {
    (0..n_txs)
        .map(|seq| Payload::Invoke {
            dapp: DApp::Gaming,
            seq,
            call: Some(CallSel {
                entry: 0, // "update"
                args: [player(seq), 1],
                argc: 2,
            }),
        })
        .collect()
}

fn main() {
    let mut b = Bench::suite("block_execution");
    b.samples(15);

    // Conflict-light, static footprints: five independent components.
    let exchange: Vec<Payload> = (0..10_000)
        .map(|seq| Payload::Invoke {
            dapp: DApp::Exchange,
            seq,
            call: None,
        })
        .collect();
    bench_block(&mut b, "exchange_10000tx", VmFlavor::Geth, DApp::Exchange, &exchange);

    // Dynamic footprints, conflict-light: the static planner bails out,
    // the optimistic executor parallelizes the 64 per-player chains.
    let spread = gaming_updates(2_000, |seq| 1 + (seq % 64) as i32);
    bench_block(&mut b, "gaming_spread_2000tx", VmFlavor::Geth, DApp::Gaming, &spread);

    // Dynamic footprints, fully dependent: one hot player. Bounds the
    // optimistic worst case (speculate, abort, serial valve).
    let hot = gaming_updates(2_000, |_| 1);
    bench_block(&mut b, "gaming_hot_2000tx", VmFlavor::Geth, DApp::Gaming, &hot);

    // Dynamic read-only probes against a hard compute budget: no
    // conflicts, so speculation commits the whole block in one round.
    let mobility: Vec<Payload> = (0..512)
        .map(|seq| Payload::Invoke {
            dapp: DApp::Mobility,
            seq,
            call: None,
        })
        .collect();
    bench_block(&mut b, "mobility_movevm_512tx", VmFlavor::MoveVm, DApp::Mobility, &mobility);

    b.finish();
}
