//! Benchmark: committed-block execution, serial vs deterministic parallel.
//!
//! Measures [`ExecutionEngine::execute_block`] over whole committed
//! blocks at 1, 2, 4 and 8 worker threads. Two block shapes bracket the
//! scheduler:
//!
//! - a 10k-transaction Exchange block: the workload rotates five stocks,
//!   so static read/write-set analysis decomposes the block into five
//!   independent components and the parallel executor genuinely runs
//!   multi-threaded (the `.../serial` vs `.../parallel4` pair in
//!   `BENCH_block_execution.json` records the speedup — bounded by
//!   min(threads, components, CPU cores), so a single-core runner shows
//!   parity while a 4-core machine approaches the 2.5× component-balance
//!   ceiling);
//! - a Gaming block: every `update` call has a dynamic footprint, so the
//!   executor must fall back to ordered serial execution — this pair
//!   bounds the cost of planning a block that cannot be parallelized.
//!
//! Every timed sample re-runs the block from a freshly deployed contract
//! and asserts the costs are bit-identical to a serial reference run, so
//! the ci.sh smoke pass doubles as a wiring check.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Concurrency, ExecMode, ExecutionEngine, Payload};
use diablo_contracts::DApp;
use diablo_vm::VmFlavor;

/// A freshly deployed Exact-mode engine for `dapp` on geth.
fn engine(dapp: DApp, concurrency: Concurrency) -> ExecutionEngine {
    ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, dapp)
        .expect("dapp builds on geth")
        .with_concurrency(concurrency)
}

/// Benchmarks one `n_txs`-transaction block of `dapp` workload calls at
/// every thread count, checking each run against the serial reference.
fn bench_block(b: &mut Bench, dapp: DApp, n_txs: usize) {
    let payloads: Vec<Payload> = (0..n_txs as u64)
        .map(|seq| Payload::Invoke {
            dapp,
            seq,
            call: None,
        })
        .collect();
    // Reference costs of a first committed block; every sample starts
    // from a fresh deployment, so all configurations must reproduce
    // these bit-for-bit.
    let expected = engine(dapp, Concurrency::Serial).execute_block(&payloads);

    let configs = [
        ("serial", Concurrency::Serial),
        ("parallel2", Concurrency::Parallel(2)),
        ("parallel4", Concurrency::Parallel(4)),
        ("parallel8", Concurrency::Parallel(8)),
    ];
    for (name, concurrency) in configs {
        b.bench_batched(
            &format!("block/{}_{}tx/{}", dapp.name(), n_txs, name),
            || engine(dapp, concurrency),
            |mut e| {
                let costs = e.execute_block(&payloads);
                assert_eq!(costs, expected, "parallel block diverged from serial");
                black_box(costs.len())
            },
        );
    }
}

fn main() {
    let mut b = Bench::suite("block_execution");
    b.samples(15);

    // Conflict-light: five independent conflict components.
    bench_block(&mut b, DApp::Exchange, 10_000);
    // Dynamic footprints: the planner bails out, ordered serial fallback.
    bench_block(&mut b, DApp::Gaming, 2_000);

    b.finish();
}
