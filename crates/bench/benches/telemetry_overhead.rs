//! Benchmark: telemetry hot-path cost, enabled vs compiled out.
//!
//! Measures the three recording primitives (counter add, histogram
//! record, span enter/exit) and the 10k-transaction Exchange block of
//! `block_execution` with instrumentation live. The same binary built
//! with `RUSTFLAGS="--cfg diablo_telemetry_off"` runs the identical
//! scenarios through the no-op macros — comparing the two
//! `BENCH_telemetry.json` files gives the enabled-vs-disabled delta,
//! and the compiled-out numbers must sit within noise of the pre-PR
//! `block_execution` baseline.
//!
//! The bench harness opts into the wall clock: here we measure real CPU
//! cost, not modeled sim time (such snapshots are not deterministic and
//! are discarded).

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Concurrency, ExecMode, ExecutionEngine, Payload};
use diablo_contracts::DApp;
use diablo_vm::VmFlavor;

fn main() {
    diablo_telemetry::clock::use_wall_clock();
    let mut b = Bench::suite("telemetry");
    b.samples(15);

    // Primitive hot paths, 10k operations per sample so the per-op cost
    // dominates the harness overhead.
    const OPS: u64 = 10_000;
    b.bench("record/counter_10k", || {
        for i in 0..OPS {
            diablo_telemetry::counter!("bench.telemetry.counter", i & 1);
        }
        black_box(OPS)
    });
    b.bench("record/histogram_10k", || {
        for i in 0..OPS {
            diablo_telemetry::record!("bench.telemetry.histogram", i * 37);
        }
        black_box(OPS)
    });
    b.bench("record/span_10k", || {
        for _ in 0..OPS {
            diablo_telemetry::span!("bench.telemetry.span");
        }
        black_box(OPS)
    });

    // The block_execution scenario with instrumentation live: a
    // 10k-transaction Exchange block (five independent conflict
    // components) through the Exact engine, serial and 4 workers.
    let payloads: Vec<Payload> = (0..10_000u64)
        .map(|seq| Payload::Invoke {
            dapp: DApp::Exchange,
            seq,
            call: None,
        })
        .collect();
    for (name, concurrency) in [
        ("serial", Concurrency::Serial),
        ("parallel4", Concurrency::Parallel(4)),
    ] {
        b.bench_batched(
            &format!("block/exchange_10ktx/{name}"),
            || {
                ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Exchange)
                    .expect("exchange builds on geth")
                    .with_concurrency(concurrency)
            },
            |mut e| {
                let costs = e.execute_block(&payloads);
                black_box(costs.len())
            },
        );
    }

    // Keep the recorder shards from growing across the whole run.
    diablo_telemetry::reset();
    b.finish();
}
