//! Microbenchmark: the discrete-event kernel.

use diablo_testkit::bench::{black_box, Bench};

use diablo_sim::{DetRng, EventQueue, Scheduler, SimDuration, SimTime, Simulation, World};

/// A world that reschedules itself `n` times (pure engine overhead).
struct Chained {
    remaining: u64,
}

impl World for Chained {
    type Event = ();

    fn handle(&mut self, _now: SimTime, (): (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_micros(1), ());
        }
    }
}

fn main() {
    let mut b = Bench::suite("event_queue");

    b.bench_batched(
        "sim/queue_schedule_pop_100k",
        || {
            let mut rng = DetRng::new(1);
            let times: Vec<SimTime> = (0..100_000)
                .map(|_| SimTime::from_micros(rng.next_below(1_000_000)))
                .collect();
            times
        },
        |times| {
            let mut q = EventQueue::with_capacity(times.len());
            for (i, t) in times.iter().enumerate() {
                q.schedule(*t, i as u32);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc += e as u64;
            }
            black_box(acc)
        },
    );

    b.bench("sim/engine_chain_100k_events", || {
        let mut sim = Simulation::new(Chained { remaining: 100_000 });
        sim.schedule(SimTime::ZERO, ());
        black_box(sim.run_to_completion())
    });

    b.bench("sim/rng_1m_draws", || {
        let mut rng = DetRng::new(7);
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        black_box(acc)
    });

    b.finish();
}
