//! Macrobenchmark: full simulated experiments.
//!
//! Measures wall-clock cost of complete chain runs — the unit every
//! figure binary is made of. A 120-second, 1,000 TPS experiment should
//! simulate in tens of milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use diablo_chains::{Chain, Experiment};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn native_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e/native_1k_tps_120s");
    group.sample_size(10);
    for chain in Chain::ALL {
        group.bench_function(chain.name(), |b| {
            b.iter(|| {
                black_box(
                    Experiment::new(
                        chain,
                        DeploymentKind::Testnet,
                        traces::constant(1_000.0, 120),
                    )
                    .run()
                    .committed(),
                )
            })
        });
    }
    group.finish();
}

fn consortium_dapp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e/consortium_dapp");
    group.sample_size(10);
    group.bench_function("quorum_exchange_gafam", |b| {
        b.iter(|| {
            black_box(
                Experiment::new(Chain::Quorum, DeploymentKind::Consortium, traces::gafam())
                    .with_dapp(DApp::Exchange)
                    .run()
                    .committed(),
            )
        })
    });
    group.bench_function("solana_fifa", |b| {
        b.iter(|| {
            black_box(
                Experiment::new(Chain::Solana, DeploymentKind::Consortium, traces::fifa())
                    .with_dapp(DApp::WebService)
                    .run()
                    .committed(),
            )
        })
    });
    group.finish();
}

fn framework_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e/framework");
    group.sample_size(10);
    const SPEC: &str = r#"
workloads:
  - number: 4
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 500 } }
          load:
            0: 250
            30: 0
"#;
    group.bench_function("run_local_quorum_30k_txs", |b| {
        b.iter(|| {
            black_box(
                diablo_core::run_local(
                    Chain::Quorum,
                    DeploymentKind::Testnet,
                    SPEC,
                    "bench",
                    &diablo_core::BenchmarkOptions::default(),
                )
                .expect("runs")
                .result
                .committed(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, native_runs, consortium_dapp, framework_pipeline);
criterion_main!(benches);
