//! Macrobenchmark: full simulated experiments.
//!
//! Measures wall-clock cost of complete chain runs — the unit every
//! figure binary is made of. A 120-second, 1,000 TPS experiment should
//! simulate in tens of milliseconds.

use diablo_testkit::bench::{black_box, Bench};

use diablo_chains::{Chain, Experiment};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_workloads::traces;

fn main() {
    let mut b = Bench::suite("end_to_end");
    b.samples(10);

    for chain in Chain::ALL {
        b.bench(&format!("e2e/native_1k_tps_120s/{}", chain.name()), || {
            black_box(
                Experiment::new(
                    chain,
                    DeploymentKind::Testnet,
                    traces::constant(1_000.0, 120),
                )
                .run()
                .committed(),
            )
        });
    }

    b.bench("e2e/consortium_dapp/quorum_exchange_gafam", || {
        black_box(
            Experiment::new(Chain::Quorum, DeploymentKind::Consortium, traces::gafam())
                .with_dapp(DApp::Exchange)
                .run()
                .committed(),
        )
    });
    b.bench("e2e/consortium_dapp/solana_fifa", || {
        black_box(
            Experiment::new(Chain::Solana, DeploymentKind::Consortium, traces::fifa())
                .with_dapp(DApp::WebService)
                .run()
                .committed(),
        )
    });

    const SPEC: &str = r#"
workloads:
  - number: 4
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 500 } }
          load:
            0: 250
            30: 0
"#;
    b.bench("e2e/framework/run_local_quorum_30k_txs", || {
        black_box(
            diablo_core::run_local(
                Chain::Quorum,
                DeploymentKind::Testnet,
                SPEC,
                "bench",
                &diablo_core::BenchmarkOptions::default(),
            )
            .expect("runs")
            .result
            .committed(),
        )
    });

    b.finish();
}
