//! Workload generation for the Diablo benchmark suite.
//!
//! Implements the realistic traces of the paper's Table 2 — NASDAQ GAFAM
//! stock bursts, the Dota 2 constant hammering, the FIFA '98 world-cup
//! final, the extrapolated Uber NYC demand and the extrapolated YouTube
//! upload rate — plus the synthetic constant-rate workloads of §6.2/§6.3.
//!
//! A [`Workload`] is a per-second submission-rate curve; it can be
//! inspected (peak, mean, duration: the numbers printed in Table 2),
//! scaled, split across Diablo Secondaries and expanded into exact
//! per-tick transaction counts with deterministic rounding.

#![warn(missing_docs)]

pub mod synth;
pub mod traces;
pub mod workload;

pub use workload::Workload;
