//! The workload type: a per-second submission-rate curve.

use core::fmt;

/// A workload: for each whole second of the experiment, the number of
/// transactions per second that Diablo submits during that second.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    /// Rate (TPS) per one-second bucket.
    rates: Vec<f64>,
}

impl Workload {
    /// Builds a workload from explicit per-second rates.
    ///
    /// # Panics
    ///
    /// Panics on negative rates.
    pub fn from_rates(name: impl Into<String>, rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|r| *r >= 0.0),
            "rates must be non-negative"
        );
        Workload {
            name: name.into(),
            rates,
        }
    }

    /// Builds a workload from a piecewise-constant load specification in
    /// the style of the paper's configuration language: `(start_second,
    /// tps)` breakpoints, ending with an implicit stop at `end_second`.
    ///
    /// ```
    /// use diablo_workloads::Workload;
    /// // The paper's §4 example: 4432 TPS for 50 s, then 4438 TPS until
    /// // second 120.
    /// let w = Workload::piecewise("dota-client", &[(0, 4432.0), (50, 4438.0)], 120);
    /// assert_eq!(w.duration_secs(), 120);
    /// assert_eq!(w.rate_at(0), 4432.0);
    /// assert_eq!(w.rate_at(49), 4432.0);
    /// assert_eq!(w.rate_at(50), 4438.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if breakpoints are not strictly increasing or start after
    /// `end_second`.
    pub fn piecewise(name: impl Into<String>, points: &[(u64, f64)], end_second: u64) -> Self {
        assert!(!points.is_empty(), "need at least one breakpoint");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "breakpoints must increase"
        );
        assert!(points[0].0 == 0, "the first breakpoint must be at second 0");
        assert!(
            points.last().expect("non-empty").0 < end_second,
            "breakpoints must precede end"
        );
        let mut rates = vec![0.0; end_second as usize];
        let mut idx = 0;
        for (sec, rate) in rates.iter_mut().enumerate() {
            while idx + 1 < points.len() && points[idx + 1].0 as usize <= sec {
                idx += 1;
            }
            *rate = points[idx].1;
        }
        Workload::from_rates(name, rates)
    }

    /// The workload name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Experiment duration in whole seconds.
    pub fn duration_secs(&self) -> usize {
        self.rates.len()
    }

    /// Submission rate during second `sec` (0 outside the experiment).
    pub fn rate_at(&self, sec: usize) -> f64 {
        self.rates.get(sec).copied().unwrap_or(0.0)
    }

    /// The raw per-second rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Peak one-second rate.
    pub fn peak_tps(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// Mean rate over the experiment.
    pub fn mean_tps(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }

    /// Total transactions submitted over the experiment (exact count
    /// after deterministic rounding, i.e. the sum of [`Workload::ticks`]
    /// at any tick size).
    pub fn total_txs(&self) -> u64 {
        let mut acc = 0.0;
        let mut total = 0u64;
        for r in &self.rates {
            acc += r;
            let whole = acc.floor();
            total += whole as u64;
            acc -= whole;
        }
        total
    }

    /// Scales every rate by `factor` (used to split load between
    /// Secondaries or to stress-test multiples of a trace).
    pub fn scale(&self, factor: f64) -> Workload {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Workload {
            name: self.name.clone(),
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }

    /// Renames the workload.
    pub fn named(mut self, name: impl Into<String>) -> Workload {
        self.name = name.into();
        self
    }

    /// Expands the curve into per-tick transaction counts with
    /// deterministic fractional accumulation: the sum over any prefix is
    /// within one transaction of the exact integral of the curve.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero or does not divide 1000.
    pub fn ticks(&self, tick_ms: u64) -> Vec<u64> {
        assert!(
            tick_ms > 0 && 1000 % tick_ms == 0,
            "tick must divide one second"
        );
        let per_sec = (1000 / tick_ms) as usize;
        let mut out = Vec::with_capacity(self.rates.len() * per_sec);
        let mut acc = 0.0;
        for &rate in &self.rates {
            let per_tick = rate / per_sec as f64;
            for _ in 0..per_sec {
                acc += per_tick;
                let whole = acc.floor();
                out.push(whole as u64);
                acc -= whole;
            }
        }
        out
    }

    /// Splits the workload evenly across `n` generators such that the
    /// per-tick sum of the parts equals the whole (the Primary's
    /// dispatching of load between Secondaries, §4).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: usize) -> Vec<Workload> {
        assert!(n > 0, "cannot split across zero secondaries");
        (0..n)
            .map(|i| Workload {
                name: format!("{}[{}/{}]", self.name, i, n),
                rates: self.rates.iter().map(|r| r / n as f64).collect(),
            })
            .collect()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}s, mean {:.0} TPS, peak {:.0} TPS, {} txs",
            self.name,
            self.duration_secs(),
            self.mean_tps(),
            self.peak_tps(),
            self.total_txs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_matches_paper_example() {
        let w = Workload::piecewise("dota", &[(0, 4432.0), (50, 4438.0)], 120);
        assert_eq!(w.duration_secs(), 120);
        assert_eq!(w.rate_at(0), 4432.0);
        assert_eq!(w.rate_at(49), 4432.0);
        assert_eq!(w.rate_at(50), 4438.0);
        assert_eq!(w.rate_at(119), 4438.0);
        assert_eq!(w.rate_at(120), 0.0);
        let total = 4432 * 50 + 4438 * 70;
        assert_eq!(w.total_txs(), total);
    }

    #[test]
    fn ticks_conserve_totals() {
        let w = Workload::from_rates("x", vec![10.5, 0.25, 1000.0, 3.3]);
        for tick_ms in [1000, 500, 100, 50] {
            let ticks = w.ticks(tick_ms);
            assert_eq!(ticks.len(), w.duration_secs() * (1000 / tick_ms as usize));
            let sum: u64 = ticks.iter().sum();
            assert_eq!(sum, w.total_txs(), "tick {tick_ms}ms");
        }
    }

    #[test]
    fn ticks_spread_evenly() {
        let w = Workload::from_rates("x", vec![1000.0]);
        let ticks = w.ticks(100);
        assert_eq!(ticks, vec![100; 10]);
    }

    #[test]
    fn split_conserves_load() {
        let w = Workload::from_rates("x", vec![999.0, 500.0, 1.0]);
        let parts = w.split(7);
        assert_eq!(parts.len(), 7);
        for sec in 0..3 {
            let sum: f64 = parts.iter().map(|p| p.rate_at(sec)).sum();
            assert!((sum - w.rate_at(sec)).abs() < 1e-9);
        }
    }

    #[test]
    fn stats() {
        let w = Workload::from_rates("x", vec![100.0, 300.0, 200.0]);
        assert_eq!(w.peak_tps(), 300.0);
        assert!((w.mean_tps() - 200.0).abs() < 1e-12);
        assert_eq!(w.total_txs(), 600);
    }

    #[test]
    fn scale_multiplies() {
        let w = Workload::from_rates("x", vec![100.0]).scale(2.5);
        assert_eq!(w.rate_at(0), 250.0);
    }

    #[test]
    #[should_panic(expected = "divide one second")]
    fn bad_tick_panics() {
        Workload::from_rates("x", vec![1.0]).ticks(300);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        Workload::from_rates("x", vec![-1.0]);
    }
}
