//! Synthetic workload generators beyond constant rates.
//!
//! The paper's related work drives blockchains with synthetic curves
//! (Caliper's rate controllers, Blockbench's micro-benchmarks,
//! Chainhammer's continuous hammering); these generators let Diablo-rs
//! users build the same families — ramps, spikes, square waves, diurnal
//! curves and Poisson-jittered variants of any base curve — without
//! leaving the workload type.

use diablo_sim::DetRng;

use crate::workload::Workload;

/// A linear ramp from `from` TPS to `to` TPS over `secs` seconds.
pub fn ramp(from: f64, to: f64, secs: u64) -> Workload {
    assert!(secs > 0, "ramp needs a duration");
    let rates = (0..secs)
        .map(|s| {
            let t = if secs == 1 {
                0.0
            } else {
                s as f64 / (secs - 1) as f64
            };
            from + (to - from) * t
        })
        .collect();
    Workload::from_rates(format!("ramp-{from}-{to}"), rates)
}

/// A baseline with one rectangular spike: `base` TPS everywhere, `peak`
/// TPS during `[spike_at, spike_at + spike_secs)`.
pub fn spike(base: f64, peak: f64, spike_at: u64, spike_secs: u64, secs: u64) -> Workload {
    assert!(spike_at + spike_secs <= secs, "spike must fit the duration");
    let rates = (0..secs)
        .map(|s| {
            if s >= spike_at && s < spike_at + spike_secs {
                peak
            } else {
                base
            }
        })
        .collect();
    Workload::from_rates(format!("spike-{peak}at{spike_at}"), rates)
}

/// A square wave alternating between `low` and `high` every
/// `half_period` seconds (Chainhammer-style stress with recovery gaps).
pub fn square_wave(low: f64, high: f64, half_period: u64, secs: u64) -> Workload {
    assert!(half_period > 0, "square wave needs a period");
    let rates = (0..secs)
        .map(|s| {
            if (s / half_period).is_multiple_of(2) {
                low
            } else {
                high
            }
        })
        .collect();
    Workload::from_rates("square-wave", rates)
}

/// A diurnal (sinusoidal) curve: mean `mean`, amplitude `amplitude`,
/// one full cycle per `period_secs`.
pub fn diurnal(mean: f64, amplitude: f64, period_secs: u64, secs: u64) -> Workload {
    assert!(amplitude <= mean, "rates must stay non-negative");
    assert!(period_secs > 0, "diurnal needs a period");
    let rates = (0..secs)
        .map(|s| {
            let phase = s as f64 / period_secs as f64 * std::f64::consts::TAU;
            mean + amplitude * phase.sin()
        })
        .collect();
    Workload::from_rates("diurnal", rates)
}

/// Poisson-jitters a base curve: each second's rate is resampled as a
/// Poisson draw with the base rate as its mean (clients are independent
/// in the real world; exact per-second counts are a simplification).
pub fn poissonize(base: &Workload, rng: &mut DetRng) -> Workload {
    let rates = base
        .rates()
        .iter()
        .map(|&rate| poisson(rng, rate) as f64)
        .collect();
    Workload::from_rates(format!("{}-poisson", base.name()), rates)
}

/// Draws a Poisson-distributed count with the given mean (Knuth's
/// algorithm for small means, normal approximation for large ones).
fn poisson(rng: &mut DetRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let x = rng.normal(mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut product = rng.next_f64();
    let mut count = 0;
    while product > limit {
        count += 1;
        product *= rng.next_f64();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints() {
        let w = ramp(100.0, 500.0, 5);
        assert_eq!(w.rate_at(0), 100.0);
        assert_eq!(w.rate_at(4), 500.0);
        assert!((w.mean_tps() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn spike_shape() {
        let w = spike(10.0, 1_000.0, 30, 2, 60);
        assert_eq!(w.rate_at(29), 10.0);
        assert_eq!(w.rate_at(30), 1_000.0);
        assert_eq!(w.rate_at(31), 1_000.0);
        assert_eq!(w.rate_at(32), 10.0);
        assert_eq!(w.peak_tps(), 1_000.0);
    }

    #[test]
    fn square_wave_alternates() {
        let w = square_wave(0.0, 100.0, 10, 40);
        assert_eq!(w.rate_at(5), 0.0);
        assert_eq!(w.rate_at(15), 100.0);
        assert_eq!(w.rate_at(25), 0.0);
        assert_eq!(w.rate_at(35), 100.0);
    }

    #[test]
    fn diurnal_oscillates_around_the_mean() {
        let w = diurnal(1_000.0, 500.0, 60, 120);
        assert!(
            (w.mean_tps() - 1_000.0).abs() < 20.0,
            "mean {}",
            w.mean_tps()
        );
        assert!(w.peak_tps() > 1_400.0);
        let min = w.rates().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min >= 499.0, "min {min}");
    }

    #[test]
    fn poissonize_preserves_the_mean_roughly() {
        let base = crate::traces::constant(200.0, 500);
        let mut rng = DetRng::new(5);
        let jittered = poissonize(&base, &mut rng);
        assert_eq!(jittered.duration_secs(), 500);
        let mean = jittered.mean_tps();
        assert!((mean - 200.0).abs() < 5.0, "mean {mean}");
        // It actually varies.
        assert!(jittered.peak_tps() > 200.0);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = DetRng::new(6);
        let n = 20_000;
        for mean in [0.5, 5.0, 200.0] {
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() / mean < 0.06,
                "mean {mean}: empirical {empirical}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
