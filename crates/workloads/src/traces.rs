//! The realistic traces of the paper's Table 2, plus the synthetic
//! workloads of §6.2/§6.3.
//!
//! Each generator reproduces the scalar shape parameters the paper
//! reports: peak rate, baseline, duration and the resulting average
//! submission rate as listed atop each column of Figure 2.

use crate::workload::Workload;

/// Duration of the NASDAQ workloads: the paper's GAFAM trace "runs for
/// 3 minutes".
pub const NASDAQ_SECS: u64 = 180;

/// One NASDAQ stock burst: `peak` TPS during the first second (the
/// market-open rush at 9 AM Eastern), then a low `baseline` for the rest
/// of the trace — the shape §6.5 stresses availability with.
pub fn nasdaq_burst(name: &str, peak: f64, baseline: f64) -> Workload {
    let mut rates = vec![baseline; NASDAQ_SECS as usize];
    rates[0] = peak;
    Workload::from_rates(name, rates)
}

/// Google (GOOGL): initial demand of about 800 TPS.
pub fn google() -> Workload {
    nasdaq_burst("nasdaq-google", 800.0, 10.0)
}

/// Apple (AAPL): initial demand of about 10,000 TPS.
pub fn apple() -> Workload {
    nasdaq_burst("nasdaq-apple", 10_000.0, 13.0)
}

/// Facebook (FB): initial demand of about 3,000 TPS.
pub fn facebook() -> Workload {
    nasdaq_burst("nasdaq-facebook", 3_000.0, 12.0)
}

/// Amazon (AMZN): initial demand of about 1,300 TPS.
pub fn amazon() -> Workload {
    nasdaq_burst("nasdaq-amazon", 1_300.0, 11.0)
}

/// Microsoft (MSFT): initial demand of about 4,000 TPS.
pub fn microsoft() -> Workload {
    nasdaq_burst("nasdaq-microsoft", 4_000.0, 12.0)
}

/// The accumulated GAFAM workload: all five stocks at once. Peaks at
/// 19,800 TPS before dropping to a 25–140 TPS tail; the resulting mean
/// is the ~168 TPS shown atop the Exchange column of Figure 2.
pub fn gafam() -> Workload {
    let secs = NASDAQ_SECS as usize;
    let mut rates = vec![0.0; secs];
    // First-second peak: the five stock bursts land together (800 +
    // 10,000 + 3,000 + 1,300 + 4,000 plus the residual flow ≈ 19,800).
    rates[0] = 19_800.0;
    // Tail: the real trade data wobbles between 25 and 140 TPS; a
    // deterministic ripple reproduces that band and brings the trace
    // mean to the ~168 TPS of Figure 2.
    for (i, rate) in rates.iter_mut().enumerate().skip(1) {
        *rate = 30.0 + 32.0 * (1.0 + (i as f64 * 0.37).sin());
    }
    Workload::from_rates("nasdaq-gafam", rates)
}

/// The Dota 2 gaming trace: "lasts for 276 seconds invoking at an almost
/// constant update rate of about 13,000 TPS".
pub fn dota() -> Workload {
    // Matches the paper's example configuration: 3 clients at 4432 TPS
    // for the first 50 s, then 4438 TPS.
    Workload::piecewise("dota", &[(0, 3.0 * 4432.0), (50, 3.0 * 4438.0)], 276)
}

/// The FIFA '98 web-service trace: 176 seconds at 1,416–5,305 requests
/// per second, averaging the ~3,483 TPS shown atop Figure 2.
pub fn fifa() -> Workload {
    let secs = 176usize;
    let lo = 1416.0;
    let hi = 5305.0;
    let mut rates = Vec::with_capacity(secs);
    for i in 0..secs {
        let t = i as f64 / (secs - 1) as f64;
        // Asymmetric tent: ramp to the peak at 40 % of the trace (the
        // final-whistle rush), then decay; exponent shapes the mean to
        // the reported 3,483 TPS.
        let f = if t < 0.4 {
            (t / 0.4).powf(1.3)
        } else {
            (1.0 - (t - 0.4) / 0.6).powf(0.68)
        };
        rates.push(lo + (hi - lo) * f);
    }
    Workload::from_rates("fifa", rates)
}

/// The Uber mobility trace: world-wide demand extrapolated to ~864 TPS;
/// §6.4 runs it as "810 TPS to 900 TPS" for 120 seconds (mean ≈ 852).
pub fn uber() -> Workload {
    let secs = 120usize;
    let rates = (0..secs)
        .map(|i| 810.0 + 90.0 * (i as f64 / (secs - 1) as f64))
        .collect();
    Workload::from_rates("uber", rates)
}

/// The YouTube video-sharing trace: the 2007 peak hour (467 TPS) scaled
/// by the 83× growth of uploads, ≈ 38,761 TPS — "very demanding".
pub fn youtube() -> Workload {
    Workload::piecewise("youtube", &[(0, 38_761.0)], 180)
}

/// A synthetic constant-rate workload (the deployment and robustness
/// probes of §6.2/§6.3 use 1,000 TPS and 10,000 TPS for 120 s).
pub fn constant(tps: f64, secs: u64) -> Workload {
    Workload::piecewise(format!("constant-{tps}tps"), &[(0, tps)], secs)
}

/// The workload of a named DApp benchmark (the Figure 2 columns).
pub fn for_dapp(name: &str) -> Option<Workload> {
    match name {
        "exchange" | "nasdaq" => Some(gafam()),
        "gaming" | "dota" => Some(dota()),
        "webservice" | "fifa" => Some(fifa()),
        "mobility" | "uber" => Some(uber()),
        "videosharing" | "youtube" => Some(youtube()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gafam_shape_matches_paper() {
        let w = gafam();
        assert_eq!(w.duration_secs(), 180, "runs for 3 minutes");
        // Peak of 19,800 TPS (sum of the five stock bursts).
        assert!(
            (19_000.0..20_500.0).contains(&w.peak_tps()),
            "peak {}",
            w.peak_tps()
        );
        // Tail between 25 and 140 TPS.
        for sec in 1..180 {
            let r = w.rate_at(sec);
            assert!((25.0..=145.0).contains(&r), "tail at {sec}: {r}");
        }
        // Average workload ≈ 168 TPS (Figure 2 column header).
        assert!(
            (150.0..190.0).contains(&w.mean_tps()),
            "mean {}",
            w.mean_tps()
        );
    }

    #[test]
    fn per_stock_peaks_match_paper() {
        assert_eq!(google().peak_tps(), 800.0);
        assert_eq!(amazon().peak_tps(), 1_300.0);
        assert_eq!(facebook().peak_tps(), 3_000.0);
        assert_eq!(microsoft().peak_tps(), 4_000.0);
        assert_eq!(apple().peak_tps(), 10_000.0);
    }

    #[test]
    fn dota_shape_matches_paper() {
        let w = dota();
        assert_eq!(w.duration_secs(), 276, "the trace lasts for 276 seconds");
        // "an almost constant update rate of about 13,000 TPS".
        assert!(
            (w.mean_tps() - 13_300.0).abs() < 100.0,
            "mean {}",
            w.mean_tps()
        );
        assert!(w.peak_tps() - w.mean_tps() < 50.0, "almost constant");
    }

    #[test]
    fn fifa_shape_matches_paper() {
        let w = fifa();
        assert_eq!(w.duration_secs(), 176);
        // Rate varies from 1,416 to 5,305 TPS.
        let min = w.rates().iter().copied().fold(f64::INFINITY, f64::min);
        assert!((1_400.0..1_450.0).contains(&min), "min {min}");
        assert!(
            (5_250.0..5_350.0).contains(&w.peak_tps()),
            "peak {}",
            w.peak_tps()
        );
        // Average ≈ 3,483 TPS (Figure 2 column header).
        assert!(
            (3_380.0..3_580.0).contains(&w.mean_tps()),
            "mean {}",
            w.mean_tps()
        );
    }

    #[test]
    fn uber_shape_matches_paper() {
        let w = uber();
        assert_eq!(w.duration_secs(), 120);
        let min = w.rates().iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min, 810.0);
        assert_eq!(w.peak_tps(), 900.0);
        // Average ≈ 852 TPS (Figure 2 column header).
        assert!(
            (845.0..860.0).contains(&w.mean_tps()),
            "mean {}",
            w.mean_tps()
        );
    }

    #[test]
    fn youtube_shape_matches_paper() {
        let w = youtube();
        assert_eq!(w.mean_tps(), 38_761.0);
        assert_eq!(w.peak_tps(), 38_761.0);
    }

    #[test]
    fn constant_is_constant() {
        let w = constant(1000.0, 120);
        assert_eq!(w.duration_secs(), 120);
        assert_eq!(w.total_txs(), 120_000);
        assert_eq!(w.peak_tps(), 1000.0);
    }

    #[test]
    fn for_dapp_resolves_names_and_aliases() {
        assert_eq!(for_dapp("exchange").unwrap().name(), "nasdaq-gafam");
        assert_eq!(for_dapp("dota").unwrap().name(), "dota");
        assert_eq!(for_dapp("mobility").unwrap().name(), "uber");
        assert!(for_dapp("unknown").is_none());
    }
}
