//! Scoped spans with inclusive/exclusive time accounting.
//!
//! A span covers a lexical scope: entering pushes a frame on a
//! thread-local stack, dropping the guard pops it and charges the
//! elapsed clock time to the full path (`parent;child`). Inclusive
//! time counts everything between enter and exit; exclusive time
//! subtracts the inclusive time of nested spans — exactly the
//! semantics of a collapsed-stack (flame graph) profile.
//!
//! Under the default sim clock, time only advances between simulation
//! events, so spans opened and closed within one event record zero
//! duration (their call counts remain meaningful). The bench harness
//! switches to the wall clock to measure real CPU time.

use std::cell::RefCell;
use std::marker::PhantomData;

use crate::{clock, recorder};

struct Frame {
    name: &'static str,
    start_us: u64,
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`crate::span()`]; dropping it closes the span.
///
/// Not `Send`: a span must close on the thread that opened it.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    _not_send: PhantomData<*const ()>,
}

pub(crate) fn enter(name: &'static str) -> SpanGuard {
    let start_us = clock::now_micros();
    let _ = STACK.try_with(|stack| {
        stack.borrow_mut().push(Frame {
            name,
            start_us,
            child_us: 0,
        });
    });
    SpanGuard {
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let now = clock::now_micros();
        let _ = STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else {
                return;
            };
            let inclusive = now.saturating_sub(frame.start_us);
            let exclusive = inclusive.saturating_sub(frame.child_us);
            if let Some(parent) = stack.last_mut() {
                parent.child_us += inclusive;
            }
            let mut path: Vec<&'static str> = stack.iter().map(|f| f.name).collect();
            path.push(frame.name);
            drop(stack);
            recorder::with_local(|data| data.span(path, inclusive, exclusive));
        });
    }
}
