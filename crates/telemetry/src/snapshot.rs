//! Immutable, mergeable telemetry snapshots.
//!
//! A [`TelemetrySnapshot`] is the frozen state of every recorder at one
//! instant: counters, gauge high-watermarks, log-linear histograms and
//! span statistics, each as a name-sorted vector. Sorting makes two
//! snapshots comparable with `==`, makes [`TelemetrySnapshot::to_json`]
//! byte-deterministic, and lets the Primary merge the Secondaries'
//! snapshots with a linear zip. All merge operations are commutative
//! and associative — the merged result does not depend on the order
//! snapshots arrive in.
//!
//! These types compile in both telemetry builds: with
//! `--cfg diablo_telemetry_off` the recorders are gone but the wire
//! format and report plumbing still type-check (snapshots are simply
//! empty).

use std::collections::BTreeMap;

use diablo_sim::LogHistogram;

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time between enter and exit, including child spans (µs).
    pub inclusive_us: u64,
    /// Total time excluding child spans (µs).
    pub exclusive_us: u64,
}

impl SpanStat {
    /// Adds another span's totals into this one (saturating).
    pub fn merge(&mut self, other: &SpanStat) {
        self.count = self.count.saturating_add(other.count);
        self.inclusive_us = self.inclusive_us.saturating_add(other.inclusive_us);
        self.exclusive_us = self.exclusive_us.saturating_add(other.exclusive_us);
    }
}

/// A frozen [`LogHistogram`]: moments plus sparse `(bucket, count)`
/// pairs sorted by bucket index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Freezes a live histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: u64::try_from(h.sum()).unwrap_or(u64::MAX),
            min: h.min(),
            max: h.max(),
            buckets: h.iter_indexed().map(|(i, c)| (i as u32, c)).collect(),
        }
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile by nearest rank over bucket floors (same
    /// semantics as [`LogHistogram::quantile`]). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return LogHistogram::bucket_floor(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(idx, c) in &other.buckets {
            let e = merged.entry(idx).or_insert(0);
            *e = e.saturating_add(c);
        }
        self.buckets = merged.into_iter().collect();
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The frozen state of every telemetry recorder at one instant.
///
/// All four sections are sorted by name; [`TelemetrySnapshot::merge`]
/// preserves that invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge high-watermarks, by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span statistics, by `;`-joined path (collapsed-stack notation).
    pub spans: Vec<(String, SpanStat)>,
}

impl TelemetrySnapshot {
    /// Whether the snapshot holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Merges another snapshot into this one: counters and span totals
    /// add, gauges keep the maximum, histograms add bucket-wise.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        let mut counters: BTreeMap<String, u64> = std::mem::take(&mut self.counters)
            .into_iter()
            .collect();
        for (name, v) in &other.counters {
            let e = counters.entry(name.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> =
            std::mem::take(&mut self.gauges).into_iter().collect();
        for (name, v) in &other.gauges {
            let e = gauges.entry(name.clone()).or_insert(i64::MIN);
            *e = (*e).max(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut hists: BTreeMap<String, HistogramSnapshot> = std::mem::take(&mut self.histograms)
            .into_iter()
            .collect();
        for (name, h) in &other.histograms {
            hists.entry(name.clone()).or_default().merge(h);
        }
        self.histograms = hists.into_iter().collect();

        let mut spans: BTreeMap<String, SpanStat> =
            std::mem::take(&mut self.spans).into_iter().collect();
        for (name, s) in &other.spans {
            spans.entry(name.clone()).or_default().merge(s);
        }
        self.spans = spans.into_iter().collect();
    }

    /// Serializes the snapshot as a JSON object with sorted keys and
    /// integer-only values — byte-identical for identical snapshots.
    ///
    /// Histograms are summarized (`count`, `sum`, `min`, `max` and
    /// nearest-rank `p50`/`p95`/`p99`); raw buckets stay wire-only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            ));
        }
        out.push_str("},\"spans\":{");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, path);
            out.push_str(&format!(
                "{{\"count\":{},\"inclusive_us\":{},\"exclusive_us\":{}}}",
                s.count, s.inclusive_us, s.exclusive_us
            ));
        }
        out.push_str("}}");
        out
    }

    /// Dumps span statistics in collapsed-stack format (one
    /// `path;to;frame <exclusive_us>` line per span path), suitable for
    /// flame-graph tooling.
    pub fn collapsed_spans(&self) -> String {
        let mut out = String::new();
        for (path, s) in &self.spans {
            out.push_str(path);
            out.push(' ');
            out.push_str(&s.exclusive_us.to_string());
            out.push('\n');
        }
        out
    }
}

fn push_key(out: &mut String, name: &str) {
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\":");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        HistogramSnapshot::from_histogram(&h)
    }

    #[test]
    fn histogram_snapshot_quantiles_match_live() {
        let values: Vec<u64> = (1..=1000).collect();
        let mut live = LogHistogram::new();
        for &v in &values {
            live.record(v);
        }
        let snap = HistogramSnapshot::from_histogram(&live);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), live.quantile(q), "q = {q}");
        }
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
    }

    #[test]
    fn histogram_snapshot_merge_commutes() {
        let a = hist(&[1, 5, 900, 40_000]);
        let b = hist(&[2, 5, 77, 1_000_000]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 8);
        assert_eq!(ab.min, 1);
        assert_eq!(ab.max, 1_000_000);
    }

    #[test]
    fn snapshot_merge_adds_and_maxes() {
        let mut a = TelemetrySnapshot {
            counters: vec![("x".into(), 1), ("y".into(), 2)],
            gauges: vec![("g".into(), 10)],
            histograms: vec![("h".into(), hist(&[5]))],
            spans: vec![(
                "s".into(),
                SpanStat {
                    count: 1,
                    inclusive_us: 10,
                    exclusive_us: 10,
                },
            )],
        };
        let b = TelemetrySnapshot {
            counters: vec![("y".into(), 3), ("z".into(), 4)],
            gauges: vec![("g".into(), 7)],
            histograms: vec![("h".into(), hist(&[9]))],
            spans: vec![(
                "s".into(),
                SpanStat {
                    count: 2,
                    inclusive_us: 5,
                    exclusive_us: 3,
                },
            )],
        };
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(1));
        assert_eq!(a.counter("y"), Some(5));
        assert_eq!(a.counter("z"), Some(4));
        assert_eq!(a.gauges, vec![("g".into(), 10)]);
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert_eq!(a.spans[0].1.count, 3);
        assert_eq!(a.spans[0].1.inclusive_us, 15);
    }

    #[test]
    fn json_is_sorted_and_integer_only() {
        let snap = TelemetrySnapshot {
            counters: vec![("a.b".into(), 7)],
            gauges: vec![],
            histograms: vec![("h".into(), hist(&[10, 20, 30]))],
            spans: vec![(
                "p;q".into(),
                SpanStat {
                    count: 2,
                    inclusive_us: 9,
                    exclusive_us: 4,
                },
            )],
        };
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{\"a.b\":7}"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"p50\":20"));
        assert!(json.contains("\"p;q\":{\"count\":2,\"inclusive_us\":9,\"exclusive_us\":4}"));
        assert!(!json.contains('.') || json.contains("a.b")); // no floats
    }

    #[test]
    fn collapsed_spans_format() {
        let snap = TelemetrySnapshot {
            spans: vec![
                (
                    "a".into(),
                    SpanStat {
                        count: 1,
                        inclusive_us: 10,
                        exclusive_us: 4,
                    },
                ),
                (
                    "a;b".into(),
                    SpanStat {
                        count: 1,
                        inclusive_us: 6,
                        exclusive_us: 6,
                    },
                ),
            ],
            ..Default::default()
        };
        assert_eq!(snap.collapsed_spans(), "a 4\na;b 6\n");
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        // A worker that never touched a histogram reports it with
        // `count == 0`; merging that must not disturb the aggregate —
        // in particular it must not drag `min` down to the empty 0.
        let mut populated = hist(&[5, 10, 20]);
        let before = populated.clone();
        populated.merge(&HistogramSnapshot::default());
        assert_eq!(populated, before);

        // The mirror case: an empty aggregate adopts the populated
        // snapshot wholesale (same bytes a direct freeze would give).
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);

        // And empty + empty stays empty rather than inventing moments.
        let mut a = HistogramSnapshot::default();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, HistogramSnapshot::default());
    }

    #[test]
    fn counter_merge_saturates_instead_of_wrapping() {
        let mut a = TelemetrySnapshot {
            counters: vec![("tx.sent".into(), u64::MAX - 1)],
            ..Default::default()
        };
        let b = TelemetrySnapshot {
            counters: vec![("tx.sent".into(), 5)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.counter("tx.sent"), Some(u64::MAX));
        // Saturation is absorbing: further merges stay pinned.
        a.merge(&b);
        assert_eq!(a.counter("tx.sent"), Some(u64::MAX));

        // Histogram sums saturate the same way (counts still add).
        let mut h = HistogramSnapshot {
            count: 1,
            sum: u64::MAX - 10,
            min: 1,
            max: 1,
            buckets: vec![(0, 1)],
        };
        h.merge(&HistogramSnapshot {
            count: 1,
            sum: 100,
            min: 1,
            max: 1,
            buckets: vec![(0, 1)],
        });
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn merging_a_zero_span_snapshot_preserves_the_aggregate() {
        // A Secondary that planned nothing reports a snapshot with no
        // spans at all; the merge must leave the Primary's spans intact
        // and invent no phantom entries.
        let mut a = TelemetrySnapshot {
            spans: vec![(
                "harness;commit".into(),
                SpanStat {
                    count: 5,
                    inclusive_us: 900,
                    exclusive_us: 400,
                },
            )],
            ..Default::default()
        };
        let before = a.clone();
        a.merge(&TelemetrySnapshot::default());
        assert_eq!(a, before);

        // A named-but-idle span (all-zero stats) merges as a no-op on
        // the numbers while unioning the name in.
        let idle = TelemetrySnapshot {
            spans: vec![
                ("harness;commit".into(), SpanStat::default()),
                ("harness;plan".into(), SpanStat::default()),
            ],
            ..Default::default()
        };
        a.merge(&idle);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].1.count, 5);
        assert_eq!(a.spans[0].1.inclusive_us, 900);
        assert_eq!(a.spans[1].1, SpanStat::default());
    }
}
