//! Telemetry clock: deterministic sim time or monotonic wall time.
//!
//! Inside the simulation the clock must be *virtual*: reading it twice
//! within one discrete event returns the same value, so telemetry never
//! perturbs determinism. The chain simulation publishes its current
//! [`SimTime`] here as it dispatches events ([`set_sim_now`]), and every
//! span and duration measurement reads that value. The bench harness —
//! which measures real CPU cost, not modeled time — opts into a
//! monotonic wall clock with [`use_wall_clock`].
//!
//! The default is the sim clock at t = 0, so telemetry recorded outside
//! any simulation (e.g. during workload planning) is deterministic too:
//! spans measure zero elapsed virtual time and only their call counts
//! are meaningful.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use diablo_sim::SimTime;

static SIM_NOW: AtomicU64 = AtomicU64::new(0);
static WALL: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Publishes the simulation's current virtual time. Call sites inside
/// the event loop keep this fresh; a no-op when telemetry is compiled
/// out.
#[inline]
pub fn set_sim_now(now: SimTime) {
    #[cfg(not(diablo_telemetry_off))]
    SIM_NOW.store(now.as_micros(), Ordering::Relaxed);
    #[cfg(diablo_telemetry_off)]
    let _ = now;
}

/// Switches the telemetry clock to monotonic wall time (bench harness
/// mode). Wall-clocked snapshots are *not* deterministic.
pub fn use_wall_clock() {
    EPOCH.get_or_init(Instant::now);
    WALL.store(true, Ordering::Relaxed);
}

/// Switches back to the deterministic sim clock and rewinds it to 0.
pub fn use_sim_clock() {
    WALL.store(false, Ordering::Relaxed);
    SIM_NOW.store(0, Ordering::Relaxed);
}

/// Reads the telemetry clock, in microseconds.
#[inline]
pub fn now_micros() -> u64 {
    if WALL.load(Ordering::Relaxed) {
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    } else {
        SIM_NOW.load(Ordering::Relaxed)
    }
}
