//! Deterministic telemetry for the Diablo benchmark suite.
//!
//! The paper's contribution is *diagnosis*, not a single throughput
//! number: §5–§6 explain each chain's behaviour through per-phase
//! breakdowns (where time goes in the mempool, consensus, execution
//! and the network). This crate gives the reproduction the same
//! capability without disturbing its two core guarantees:
//!
//! - **Determinism.** The telemetry clock ([`clock`]) reads the
//!   simulation's virtual time by default, so recording is invisible to
//!   the discrete-event engine; and every aggregation (counter sums,
//!   gauge maxima, bucket-wise histogram merges, span totals) is
//!   commutative and associative, so merged [`TelemetrySnapshot`]s are
//!   bit-identical whether a block executed under
//!   `Concurrency::Serial` or `Parallel(n)`.
//! - **Zero cost when off.** Building the workspace with
//!   `RUSTFLAGS="--cfg diablo_telemetry_off"` compiles every recording
//!   function down to an empty `#[inline]` body and [`SpanGuard`] to a
//!   zero-sized type with no `Drop`; snapshots are empty but the wire
//!   and report plumbing still type-check.
//!
//! Recording goes through thread-local shards (see [`mod@self`]
//! internals) registered in a global registry; [`snapshot`] freezes and
//! merges them, [`reset`] clears them between runs. Use the macros for
//! call sites:
//!
//! ```
//! use diablo_telemetry::{counter, record, span};
//!
//! fn admit() {
//!     span!("mempool.admit");
//!     counter!("mempool.admitted");
//!     record!("mempool.pool_depth", 42);
//! }
//! # admit();
//! ```

#![warn(missing_docs)]

pub mod clock;
mod snapshot;
pub mod trace;

#[cfg(not(diablo_telemetry_off))]
mod recorder;
#[cfg(not(diablo_telemetry_off))]
mod span;

pub use snapshot::{HistogramSnapshot, SpanStat, TelemetrySnapshot};

#[cfg(not(diablo_telemetry_off))]
pub use span::SpanGuard;

/// RAII span guard (no-op build): zero-sized, no `Drop`, fully erased
/// by the optimizer.
#[cfg(diablo_telemetry_off)]
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard;

/// Whether telemetry is compiled in (`false` under
/// `--cfg diablo_telemetry_off`).
pub const fn enabled() -> bool {
    cfg!(not(diablo_telemetry_off))
}

/// Adds `n` to the named monotonic counter.
#[inline]
pub fn counter(name: &'static str, n: u64) {
    #[cfg(not(diablo_telemetry_off))]
    recorder::with_local(|data| data.counter(name, n));
    #[cfg(diablo_telemetry_off)]
    let _ = (name, n);
}

/// Records a gauge observation; snapshots keep the high-watermark
/// (maximum), which merges deterministically.
#[inline]
pub fn gauge(name: &'static str, v: i64) {
    #[cfg(not(diablo_telemetry_off))]
    recorder::with_local(|data| data.gauge(name, v));
    #[cfg(diablo_telemetry_off)]
    let _ = (name, v);
}

/// Records one value into the named log-linear histogram.
#[inline]
pub fn record(name: &'static str, v: u64) {
    #[cfg(not(diablo_telemetry_off))]
    recorder::with_local(|data| data.histogram(name, v));
    #[cfg(diablo_telemetry_off)]
    let _ = (name, v);
}

/// Records a [`diablo_sim::SimDuration`] into the named histogram, in
/// microseconds. This is how the simulation attributes *modeled* time
/// to a phase (consensus round, execution, network transfer).
#[inline]
pub fn record_duration(name: &'static str, d: diablo_sim::SimDuration) {
    record(name, d.as_micros());
}

/// Opens a scoped span; the returned guard closes it on drop. Prefer
/// the [`span!`] macro, which binds the guard for you.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(not(diablo_telemetry_off))]
    return span::enter(name);
    #[cfg(diablo_telemetry_off)]
    {
        let _ = name;
        SpanGuard
    }
}

/// Freezes all recorders into a sorted, mergeable snapshot. Empty in
/// no-op builds.
pub fn snapshot() -> TelemetrySnapshot {
    #[cfg(not(diablo_telemetry_off))]
    return recorder::snapshot();
    #[cfg(diablo_telemetry_off)]
    TelemetrySnapshot::default()
}

/// Clears all recorders — including the per-transaction tracer (see
/// [`trace`]) — and rewinds nothing else: the clock is managed
/// separately via [`clock`]. Benchmark runs call this at start so each
/// snapshot covers exactly one run.
pub fn reset() {
    #[cfg(not(diablo_telemetry_off))]
    recorder::reset();
    trace::disable();
}

/// Increments a counter: `counter!("name")` adds 1,
/// `counter!("name", n)` adds `n`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::counter($name, $n)
    };
}

/// Records a gauge observation (snapshot keeps the maximum).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge($name, $v)
    };
}

/// Records a `u64` into a histogram: `record!("name", value)`.
#[macro_export]
macro_rules! record {
    ($name:expr, $v:expr) => {
        $crate::record($name, $v)
    };
}

/// Records a `SimDuration` into a histogram, in microseconds.
#[macro_export]
macro_rules! record_duration {
    ($name:expr, $d:expr) => {
        $crate::record_duration($name, $d)
    };
}

/// Opens a span covering the rest of the enclosing scope:
/// `span!("consensus.ba_star.round")`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _diablo_telemetry_span = $crate::span($name);
    };
}

#[cfg(test)]
mod tests {
    // Global-state lifecycle tests (reset, cross-thread merge,
    // determinism) live in `tests/` so each runs in its own process;
    // unit tests here stick to names no other test touches and never
    // call `reset`.

    #[test]
    fn counters_accumulate() {
        super::counter("test.lib.counter_a", 2);
        super::counter!("test.lib.counter_a");
        let snap = super::snapshot();
        if super::enabled() {
            assert_eq!(snap.counter("test.lib.counter_a"), Some(3));
        } else {
            assert!(snap.is_empty());
        }
    }

    #[test]
    fn histograms_record() {
        for v in [1u64, 10, 100, 1000] {
            super::record!("test.lib.hist_a", v);
        }
        super::record_duration!("test.lib.hist_a", diablo_sim::SimDuration::from_millis(1));
        let snap = super::snapshot();
        if super::enabled() {
            let h = snap.histogram("test.lib.hist_a").unwrap();
            assert_eq!(h.count, 5);
            assert_eq!(h.max, 1000);
        }
    }

    #[test]
    fn gauges_keep_watermark() {
        super::gauge!("test.lib.gauge_a", 5);
        super::gauge!("test.lib.gauge_a", -3);
        let snap = super::snapshot();
        if super::enabled() {
            let v = snap
                .gauges
                .iter()
                .find(|(n, _)| n == "test.lib.gauge_a")
                .map(|(_, v)| *v);
            assert_eq!(v, Some(5));
        }
    }

    #[test]
    fn spans_nest() {
        {
            super::span!("test.lib.outer");
            {
                super::span!("test.lib.inner");
            }
        }
        let snap = super::snapshot();
        if super::enabled() {
            let outer = snap.spans.iter().find(|(n, _)| n == "test.lib.outer");
            let inner = snap
                .spans
                .iter()
                .find(|(n, _)| n == "test.lib.outer;test.lib.inner");
            assert!(outer.is_some(), "outer span missing: {:?}", snap.spans);
            assert!(inner.is_some(), "nested path missing: {:?}", snap.spans);
        }
    }
}
