//! Deterministic per-transaction lifecycle tracing.
//!
//! Aggregate telemetry ([`crate::TelemetrySnapshot`]) explains where a
//! *run* spent its time; it cannot explain where one tail-latency
//! transaction did. This module records a causal event trail per
//! transaction — `submitted → admitted → selected → ordered(round,
//! block) → executed(mode, execution count) → persisted(root) →
//! finalized`, plus rejection / retry / fault-delay edges — with
//! sim-time stamps, and exports it as Chrome Trace Event Format JSON
//! (loadable in Perfetto or `chrome://tracing`).
//!
//! # Determinism
//!
//! Two properties make traces byte-identical at any worker or
//! Secondary count:
//!
//! - **Events carry modeled time only.** Every stamp is virtual
//!   sim-time, produced by the single-threaded simulation loop; worker
//!   threads never emit trace events. The executor-dependent
//!   annotations ([`TraceStage::Executed`]'s mode and execution count)
//!   are kept in the [`TraceSet`] and on the wire but deliberately
//!   *omitted from the Chrome export*, so the exported waterfall is a
//!   pure function of the modeled timeline and stays byte-identical
//!   across `Serial`, `Parallel(n)` and `Optimistic(n)` runs of the
//!   same seed.
//! - **Sampling is membership-by-identity, not by arrival.** A classic
//!   reservoir depends on observation order. The bounded sampler here
//!   instead keeps the `N` transactions whose [`rank`] (a seeded
//!   splitmix64 hash of the transaction id) is smallest — a pure
//!   function of the final id set and the seed. Once a transaction is
//!   displaced its rank can never re-enter the bottom `N` (the maximum
//!   member rank only decreases), so no partial trails survive and the
//!   sampled set is independent of emission interleaving and of how
//!   chunks were merged.
//!
//! The recorder compiles out with the rest of the crate under
//! `--cfg diablo_telemetry_off`: [`emit`] becomes an empty inline
//! function and [`take`] always returns `None`. The data types stay
//! compiled so the wire protocol and report plumbing type-check.

use std::fmt;

/// Lifecycle stages, in canonical causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceStage {
    /// The client signed and scheduled the transaction (`arg0` =
    /// sender).
    Submitted = 0,
    /// The submission was corrupted and retried; the stamp is the first
    /// accepted attempt (`arg0` = retry delay in µs).
    Retried = 1,
    /// The submission node was crashed; the client failed over (`arg0`
    /// = the node submitted to instead).
    Rerouted = 2,
    /// Gossip reached a non-committing partition component; inclusion
    /// waits for the heal (`arg0` = deferral in µs).
    Deferred = 3,
    /// The proposers' mempool admitted the transaction (after gossip).
    Admitted = 4,
    /// A proposer drained the transaction from the pool into a block
    /// under assembly (`arg0` = consensus round).
    Selected = 5,
    /// Consensus ordered the block (`arg0` = round, `arg1` = block
    /// height).
    Ordered = 6,
    /// The execution engine committed the transaction's effects
    /// (`arg0` = concurrency mode code, `arg1` = times executed —
    /// more than 1 under optimistic speculation).
    Executed = 7,
    /// The state store persisted the enclosing block (`arg0` = first 8
    /// bytes of the block's state root, big-endian).
    Persisted = 8,
    /// The client observed the decision (`arg0` = 1 committed, 0
    /// aborted).
    Finalized = 9,
    /// Every submission attempt was corrupted; the client gave up.
    Rejected = 10,
    /// The pool was full; the transaction was dropped.
    DroppedPoolFull = 11,
    /// The sender exceeded its per-account pool quota.
    DroppedPerSender = 12,
    /// The transaction expired in the pool (recent-blockhash rule).
    DroppedExpired = 13,
}

impl TraceStage {
    /// Stable lowercase name (used in the Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Submitted => "submitted",
            TraceStage::Retried => "retried",
            TraceStage::Rerouted => "rerouted",
            TraceStage::Deferred => "deferred",
            TraceStage::Admitted => "admitted",
            TraceStage::Selected => "selected",
            TraceStage::Ordered => "ordered",
            TraceStage::Executed => "executed",
            TraceStage::Persisted => "persisted",
            TraceStage::Finalized => "finalized",
            TraceStage::Rejected => "rejected",
            TraceStage::DroppedPoolFull => "dropped_pool_full",
            TraceStage::DroppedPerSender => "dropped_per_sender",
            TraceStage::DroppedExpired => "dropped_expired",
        }
    }

    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<TraceStage> {
        use TraceStage::*;
        Some(match b {
            0 => Submitted,
            1 => Retried,
            2 => Rerouted,
            3 => Deferred,
            4 => Admitted,
            5 => Selected,
            6 => Ordered,
            7 => Executed,
            8 => Persisted,
            9 => Finalized,
            10 => Rejected,
            11 => DroppedPoolFull,
            12 => DroppedPerSender,
            13 => DroppedExpired,
            _ => return None,
        })
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub stage: TraceStage,
    /// When, in sim-time microseconds.
    pub at_us: u64,
    /// Stage-specific annotation (see [`TraceStage`]).
    pub arg0: u64,
    /// Second stage-specific annotation.
    pub arg1: u64,
}

/// The event trail of one transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxTrace {
    /// Run-global transaction id (record index).
    pub id: u64,
    /// Events in emission order (causal order: the simulation loop is
    /// single-threaded).
    pub events: Vec<TraceEvent>,
}

impl TxTrace {
    /// The stamp of the first event of `stage`, if recorded.
    pub fn at(&self, stage: TraceStage) -> Option<u64> {
        self.events.iter().find(|e| e.stage == stage).map(|e| e.at_us)
    }

    /// The first event of `stage`, if recorded.
    pub fn event(&self, stage: TraceStage) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.stage == stage)
    }
}

/// How many transactions to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSample {
    /// The `n` transactions with the smallest seeded rank (bounded
    /// memory at any scale).
    Limit(u64),
    /// Every transaction.
    All,
}

impl TraceSample {
    /// Default bound when tracing is requested without an explicit
    /// sample size: caps tracer memory at scale.
    pub const DEFAULT_LIMIT: u64 = 4096;

    /// Parses `"all"` or a decimal count (0 is rejected).
    pub fn parse(s: &str) -> Result<TraceSample, String> {
        if s.eq_ignore_ascii_case("all") {
            return Ok(TraceSample::All);
        }
        match s.parse::<u64>() {
            Ok(n) if n > 0 => Ok(TraceSample::Limit(n)),
            _ => Err(format!("bad trace sample `{s}` (expected a positive count or `all`)")),
        }
    }

    /// The member cap (`u64::MAX` for `All`).
    pub fn cap(self) -> u64 {
        match self {
            TraceSample::Limit(n) => n,
            TraceSample::All => u64::MAX,
        }
    }
}

/// The seeded rank deciding sampler membership: splitmix64 over the
/// transaction id, perturbed by the run seed. Membership in a bounded
/// trace is "rank among the `N` smallest" — a pure function of the
/// final id set and the seed, independent of emission order.
pub fn rank(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A frozen, mergeable set of transaction traces.
///
/// Sorted by transaction id; [`TraceSet::merge`] preserves the sort and
/// re-applies the sampler bound, so a set merged from chunks is
/// byte-identical to one recorded whole.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSet {
    /// Sampler seed (the run seed).
    pub seed: u64,
    /// Sampler bound (`u64::MAX` = full tracing).
    pub cap: u64,
    /// Traced transactions, ascending by id.
    pub txs: Vec<TxTrace>,
}

impl TraceSet {
    /// Whether no transactions were traced.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// The trace of transaction `id`, if sampled.
    pub fn tx(&self, id: u64) -> Option<&TxTrace> {
        self.txs
            .binary_search_by_key(&id, |t| t.id)
            .ok()
            .map(|i| &self.txs[i])
    }

    /// Merges another set (e.g. a Secondary's chunk) into this one:
    /// trails union by id (same-id events concatenate in stamp order)
    /// and the sampler bound is re-applied over the union, keeping the
    /// result identical to a single-recorder run.
    pub fn merge(&mut self, other: &TraceSet) {
        // A zero cap only arises from `TraceSet::default()` (never from
        // a recorder, whose bounds are positive); read it as unbounded
        // so merging a default-constructed set cannot truncate.
        fn norm(cap: u64) -> u64 {
            if cap == 0 {
                u64::MAX
            } else {
                cap
            }
        }
        self.cap = norm(self.cap).min(norm(other.cap));
        if other.txs.is_empty() {
            return;
        }
        let mut merged: std::collections::BTreeMap<u64, TxTrace> = std::mem::take(&mut self.txs)
            .into_iter()
            .map(|t| (t.id, t))
            .collect();
        for tx in &other.txs {
            let entry = merged.entry(tx.id).or_insert_with(|| TxTrace {
                id: tx.id,
                events: Vec::new(),
            });
            entry.events.extend(tx.events.iter().copied());
            entry.events.sort_by_key(|e| (e.at_us, e.stage as u8));
        }
        self.txs = merged.into_values().collect();
        if (self.txs.len() as u64) > self.cap {
            let seed = self.seed;
            let cap = self.cap as usize;
            let mut ranked: Vec<(u64, u64)> =
                self.txs.iter().map(|t| (rank(seed, t.id), t.id)).collect();
            ranked.sort_unstable();
            ranked.truncate(cap);
            let keep: std::collections::BTreeSet<u64> =
                ranked.into_iter().map(|(_, id)| id).collect();
            self.txs.retain(|t| keep.contains(&t.id));
        }
    }

    /// Renders the set as Chrome Trace Event Format JSON.
    ///
    /// Per transaction (ascending id; `tid` = transaction id):
    ///
    /// - one complete (`"ph":"X"`) duration event per lifecycle stage
    ///   pair that was recorded (`network`, `mempool`, `consensus`,
    ///   `execution`, `storage`, `finality`),
    /// - one instant (`"ph":"i"`) event per point event (submission,
    ///   fault edges, terminal drops),
    /// - a flow (`"ph":"s"`/`"t"`/`"f"`) thread linking the stages.
    ///
    /// Only modeled-time facts are exported (see the module docs), so
    /// the bytes are identical across execution modes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for tx in &self.txs {
            write_tx_events(&mut out, tx, &mut first);
        }
        out.push_str("]}");
        out
    }

    /// The per-stage durations of one trail, as `(phase name, start µs,
    /// duration µs)` in canonical order — the waterfall the Chrome
    /// export draws and `trace-diff` aligns.
    pub fn waterfall(tx: &TxTrace) -> Vec<(&'static str, u64, u64)> {
        let mut out = Vec::new();
        let mut push = |name, from: Option<u64>, to: Option<u64>| {
            if let (Some(a), Some(b)) = (from, to) {
                out.push((name, a, b.saturating_sub(a)));
            }
        };
        let submitted = tx.at(TraceStage::Submitted);
        let admitted = tx.at(TraceStage::Admitted);
        let selected = tx.at(TraceStage::Selected);
        let ordered = tx.at(TraceStage::Ordered);
        let executed = tx.at(TraceStage::Executed);
        let persisted = tx.at(TraceStage::Persisted);
        let finalized = tx.at(TraceStage::Finalized);
        push("network", submitted, admitted);
        push("mempool", admitted, selected);
        push("consensus", selected, ordered);
        push("execution", ordered, executed);
        push("storage", executed, persisted);
        push("finality", persisted.or(executed), finalized);
        out
    }
}

/// Appends one transaction's Chrome events to `out`.
fn write_tx_events(out: &mut String, tx: &TxTrace, first: &mut bool) {
    use std::fmt::Write as _;
    let mut emit = |body: fmt::Arguments<'_>| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = out.write_fmt(body);
    };
    // Instant events: every point/terminal event in the trail. The
    // executor-dependent `executed` annotations are not exported.
    for e in &tx.events {
        let instant = matches!(
            e.stage,
            TraceStage::Submitted
                | TraceStage::Retried
                | TraceStage::Rerouted
                | TraceStage::Deferred
                | TraceStage::Rejected
                | TraceStage::DroppedPoolFull
                | TraceStage::DroppedPerSender
                | TraceStage::DroppedExpired
        );
        if instant {
            emit(format_args!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                e.stage.name(),
                e.at_us,
                tx.id
            ));
        }
    }
    // Stage duration events, with executor-invariant annotations.
    for (phase, start, dur) in TraceSet::waterfall(tx) {
        match phase {
            "consensus" => {
                let (round, block) = tx
                    .event(TraceStage::Ordered)
                    .map(|e| (e.arg0, e.arg1))
                    .unwrap_or((0, 0));
                emit(format_args!(
                    "{{\"name\":\"consensus\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"round\":{round},\"block\":{block}}}}}",
                    tx.id
                ));
            }
            "storage" => {
                let root = tx.event(TraceStage::Persisted).map(|e| e.arg0).unwrap_or(0);
                emit(format_args!(
                    "{{\"name\":\"storage\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"root\":\"{root:016x}\"}}}}",
                    tx.id
                ));
            }
            _ => emit(format_args!(
                "{{\"name\":\"{phase}\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{}}}",
                tx.id
            )),
        }
    }
    // Flow thread: start at submission, step at each boundary, finish
    // at the trail's last stamp.
    let stamps: Vec<u64> = {
        let mut s: Vec<u64> = tx.events.iter().map(|e| e.at_us).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    if let (Some(&head), Some(&tail)) = (stamps.first(), stamps.last()) {
        emit(format_args!(
            "{{\"name\":\"tx\",\"ph\":\"s\",\"id\":{0},\"ts\":{head},\"pid\":1,\"tid\":{0}}}",
            tx.id
        ));
        for &t in stamps.get(1..stamps.len() - 1).unwrap_or_default() {
            emit(format_args!(
                "{{\"name\":\"tx\",\"ph\":\"t\",\"id\":{0},\"ts\":{t},\"pid\":1,\"tid\":{0}}}",
                tx.id
            ));
        }
        if tail > head {
            emit(format_args!(
                "{{\"name\":\"tx\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{0},\"ts\":{tail},\
                 \"pid\":1,\"tid\":{0}}}",
                tx.id
            ));
        }
    }
}

#[cfg(not(diablo_telemetry_off))]
mod recorder {
    use super::{rank, TraceEvent, TraceSample, TraceSet, TraceStage, TxTrace};
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Fast active check so disabled runs pay one relaxed load per
    /// call site.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

    struct Recorder {
        seed: u64,
        cap: u64,
        /// Member trails by id.
        members: BTreeMap<u64, TxTrace>,
        /// Member `(rank, id)` pairs for bottom-k eviction.
        by_rank: BTreeSet<(u64, u64)>,
    }

    pub fn configure(sample: TraceSample, seed: u64) {
        let mut guard = RECORDER.lock().expect("trace recorder poisoned");
        *guard = Some(Recorder {
            seed,
            cap: sample.cap(),
            members: BTreeMap::new(),
            by_rank: BTreeSet::new(),
        });
        ACTIVE.store(true, Ordering::Release);
    }

    pub fn disable() {
        ACTIVE.store(false, Ordering::Release);
        *RECORDER.lock().expect("trace recorder poisoned") = None;
    }

    pub fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    pub fn emit(id: u64, stage: TraceStage, at_us: u64, arg0: u64, arg1: u64) {
        if !active() {
            return;
        }
        let mut guard = RECORDER.lock().expect("trace recorder poisoned");
        let Some(rec) = guard.as_mut() else { return };
        let event = TraceEvent {
            stage,
            at_us,
            arg0,
            arg1,
        };
        if let Some(tx) = rec.members.get_mut(&id) {
            tx.events.push(event);
            return;
        }
        let r = rank(rec.seed, id);
        if (rec.members.len() as u64) < rec.cap {
            rec.by_rank.insert((r, id));
        } else {
            // Bottom-k: displace the largest-ranked member, or drop
            // this id if it ranks above every member. A displaced id
            // can never re-enter — the maximum member rank only
            // decreases — so trails are complete or absent, never
            // partial.
            let &max = rec.by_rank.iter().next_back().expect("cap > 0 members");
            if (r, id) >= max {
                return;
            }
            rec.by_rank.remove(&max);
            rec.members.remove(&max.1);
            rec.by_rank.insert((r, id));
        }
        rec.members.insert(
            id,
            TxTrace {
                id,
                events: vec![event],
            },
        );
    }

    pub fn take() -> Option<TraceSet> {
        let mut guard = RECORDER.lock().expect("trace recorder poisoned");
        let rec = guard.take()?;
        ACTIVE.store(false, Ordering::Release);
        Some(TraceSet {
            seed: rec.seed,
            cap: rec.cap,
            txs: rec.members.into_values().collect(),
        })
    }
}

/// Arms the global trace recorder: subsequent [`emit`] calls are
/// buffered under `sample`'s bound, ranked by `seed`. Replaces any
/// previous recorder.
#[inline]
pub fn configure(sample: TraceSample, seed: u64) {
    #[cfg(not(diablo_telemetry_off))]
    recorder::configure(sample, seed);
    #[cfg(diablo_telemetry_off)]
    let _ = (sample, seed);
}

/// Disarms and clears the recorder (also done by [`crate::reset`]).
#[inline]
pub fn disable() {
    #[cfg(not(diablo_telemetry_off))]
    recorder::disable();
}

/// Whether a recorder is armed (always `false` when compiled out).
#[inline]
pub fn active() -> bool {
    #[cfg(not(diablo_telemetry_off))]
    return recorder::active();
    #[cfg(diablo_telemetry_off)]
    false
}

/// Records one lifecycle event for transaction `id` at sim-time
/// `at_us`. A no-op unless a recorder is armed (one relaxed atomic
/// load), and an empty inline function when compiled out.
#[inline]
pub fn emit(id: u64, stage: TraceStage, at_us: u64, arg0: u64, arg1: u64) {
    #[cfg(not(diablo_telemetry_off))]
    recorder::emit(id, stage, at_us, arg0, arg1);
    #[cfg(diablo_telemetry_off)]
    let _ = (id, stage, at_us, arg0, arg1);
}

/// Freezes and returns the recorded traces, disarming the recorder.
/// `None` when no recorder was armed (or when compiled out).
#[inline]
pub fn take() -> Option<TraceSet> {
    #[cfg(not(diablo_telemetry_off))]
    return recorder::take();
    #[cfg(diablo_telemetry_off)]
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(seed: u64, cap: u64, ids: &[u64]) -> TraceSet {
        TraceSet {
            seed,
            cap,
            txs: ids
                .iter()
                .map(|&id| TxTrace {
                    id,
                    events: vec![TraceEvent {
                        stage: TraceStage::Submitted,
                        at_us: id * 10,
                        arg0: 0,
                        arg1: 0,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn stage_codes_roundtrip() {
        for b in 0..=13u8 {
            let stage = TraceStage::from_u8(b).unwrap();
            assert_eq!(stage as u8, b);
            assert!(!stage.name().is_empty());
        }
        assert_eq!(TraceStage::from_u8(14), None);
    }

    #[test]
    fn sample_parses() {
        assert_eq!(TraceSample::parse("all"), Ok(TraceSample::All));
        assert_eq!(TraceSample::parse("64"), Ok(TraceSample::Limit(64)));
        assert!(TraceSample::parse("0").is_err());
        assert!(TraceSample::parse("lots").is_err());
        assert_eq!(TraceSample::All.cap(), u64::MAX);
    }

    #[test]
    fn rank_is_seed_sensitive() {
        // Different seeds pick different members; same seed is stable.
        assert_eq!(rank(7, 42), rank(7, 42));
        assert_ne!(rank(7, 42), rank(8, 42));
        assert_ne!(rank(7, 42), rank(7, 43));
    }

    #[test]
    fn bottom_k_membership_is_order_independent() {
        if !crate::enabled() {
            return; // recorder compiled out
        }
        // Emitting ids in two different orders must sample the same set:
        // membership is a function of the id set and seed only.
        let ids: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = {
            let mut ranked: Vec<(u64, u64)> = ids.iter().map(|&i| (rank(9, i), i)).collect();
            ranked.sort_unstable();
            let mut keep: Vec<u64> = ranked[..10].iter().map(|&(_, i)| i).collect();
            keep.sort_unstable();
            keep
        };
        for forward in [true, false] {
            configure(TraceSample::Limit(10), 9);
            let order: Vec<u64> = if forward {
                ids.clone()
            } else {
                ids.iter().rev().copied().collect()
            };
            for id in order {
                emit(id, TraceStage::Submitted, id, 0, 0);
                emit(id, TraceStage::Admitted, id + 1, 0, 0);
            }
            let set = take().unwrap();
            let got: Vec<u64> = set.txs.iter().map(|t| t.id).collect();
            assert_eq!(got, expected, "forward={forward}");
            // Sampled trails are complete: both events survived.
            for tx in &set.txs {
                assert_eq!(tx.events.len(), 2, "partial trail for {}", tx.id);
            }
        }
    }

    #[test]
    fn take_disarms() {
        configure(TraceSample::All, 1);
        emit(5, TraceStage::Submitted, 50, 0, 0);
        if crate::enabled() {
            let set = take().unwrap();
            assert_eq!(set.txs.len(), 1);
            assert!(!active());
        }
        assert!(take().is_none());
        // Disarmed emits go nowhere.
        emit(6, TraceStage::Submitted, 60, 0, 0);
        assert!(take().is_none());
    }

    #[test]
    fn merge_unions_and_reapplies_cap() {
        let mut a = set_of(3, 4, &[1, 2, 3]);
        let b = set_of(3, 4, &[4, 5, 6]);
        a.merge(&b);
        assert_eq!(a.txs.len(), 4);
        let mut ranked: Vec<(u64, u64)> = (1..=6).map(|i| (rank(3, i), i)).collect();
        ranked.sort_unstable();
        let keep: Vec<u64> = {
            let mut k: Vec<u64> = ranked[..4].iter().map(|&(_, i)| i).collect();
            k.sort_unstable();
            k
        };
        assert_eq!(a.txs.iter().map(|t| t.id).collect::<Vec<_>>(), keep);
        // Merging an empty set changes nothing.
        let before = a.clone();
        a.merge(&TraceSet::default());
        assert_eq!(a.txs, before.txs);
    }

    #[test]
    fn merge_is_commutative() {
        let a = set_of(11, 8, &[1, 3, 5, 7]);
        let b = set_of(11, 8, &[2, 3, 6]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Same-id trails concatenate sorted by stamp, so both orders
        // agree byte for byte.
        assert_eq!(ab.to_chrome_json(), ba.to_chrome_json());
    }

    #[test]
    fn chrome_export_shape() {
        let tx = TxTrace {
            id: 7,
            events: vec![
                TraceEvent { stage: TraceStage::Submitted, at_us: 100, arg0: 3, arg1: 0 },
                TraceEvent { stage: TraceStage::Admitted, at_us: 250, arg0: 0, arg1: 0 },
                TraceEvent { stage: TraceStage::Selected, at_us: 900, arg0: 2, arg1: 0 },
                TraceEvent { stage: TraceStage::Ordered, at_us: 1400, arg0: 2, arg1: 1 },
                TraceEvent { stage: TraceStage::Executed, at_us: 1500, arg0: 2, arg1: 2 },
                TraceEvent { stage: TraceStage::Persisted, at_us: 1500, arg0: 0xabcd, arg1: 0 },
                TraceEvent { stage: TraceStage::Finalized, at_us: 2100, arg0: 1, arg1: 0 },
            ],
        };
        let set = TraceSet { seed: 0, cap: u64::MAX, txs: vec![tx.clone()] };
        let json = set.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        for phase in ["network", "mempool", "consensus", "execution", "storage", "finality"] {
            assert!(json.contains(&format!("\"name\":\"{phase}\",\"ph\":\"X\"")), "{phase}: {json}");
        }
        assert!(json.contains("\"args\":{\"round\":2,\"block\":1}"), "{json}");
        assert!(json.contains("\"args\":{\"root\":\"000000000000abcd\"}"), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        // Executor-specific facts stay out of the export.
        assert!(!json.contains("mode"), "{json}");
        // The waterfall telescopes: stages abut with no gaps.
        let w = TraceSet::waterfall(&tx);
        assert_eq!(w.len(), 6);
        for pair in w.windows(2) {
            assert_eq!(pair[0].1 + pair[0].2, pair[1].1, "{w:?}");
        }
        let total: u64 = w.iter().map(|&(_, _, d)| d).sum();
        assert_eq!(total, 2100 - 100);
    }

    #[test]
    fn dropped_trails_export_instants_only() {
        let set = TraceSet {
            seed: 0,
            cap: u64::MAX,
            txs: vec![TxTrace {
                id: 1,
                events: vec![
                    TraceEvent { stage: TraceStage::Submitted, at_us: 10, arg0: 0, arg1: 0 },
                    TraceEvent { stage: TraceStage::DroppedPoolFull, at_us: 30, arg0: 0, arg1: 0 },
                ],
            }],
        };
        let json = set.to_chrome_json();
        assert!(json.contains("\"name\":\"dropped_pool_full\",\"ph\":\"i\""), "{json}");
        assert!(!json.contains("\"ph\":\"X\""), "{json}");
    }
}
