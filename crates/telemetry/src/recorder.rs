//! Thread-local recorders and the global registry.
//!
//! Every recording thread owns a *shard*: a mutex-wrapped map of named
//! metrics. The mutex is uncontended on the hot path — only the owning
//! thread records into it; the registry takes it briefly when a
//! snapshot or reset walks all shards ("lock-free in spirit"). Shards
//! of exited threads fold into a `retired` accumulator so short-lived
//! scoped workers (the parallel executor spawns them per block) never
//! leak registry entries.
//!
//! Determinism: every merge is commutative and associative (counters
//! add, gauges take the maximum, histograms add bucket-wise, span
//! totals add), and the final snapshot sorts by name. As long as the
//! *multiset* of recorded observations is schedule-independent — which
//! the deterministic parallel executor guarantees — the merged snapshot
//! is bit-identical regardless of worker count or thread interleaving.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use diablo_sim::LogHistogram;

use crate::snapshot::{HistogramSnapshot, SpanStat, TelemetrySnapshot};

/// FNV-1a: a tiny, dependency-free hasher. Metric names are short
/// static strings, so quality far beyond FNV buys nothing.
pub(crate) struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type FnvBuild = BuildHasherDefault<Fnv>;

/// One thread's raw metric state.
#[derive(Default)]
pub(crate) struct LocalData {
    counters: HashMap<&'static str, u64, FnvBuild>,
    gauges: HashMap<&'static str, i64, FnvBuild>,
    histograms: HashMap<&'static str, LogHistogram, FnvBuild>,
    spans: HashMap<Vec<&'static str>, SpanStat, FnvBuild>,
}

impl LocalData {
    pub(crate) fn counter(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    pub(crate) fn gauge(&mut self, name: &'static str, v: i64) {
        let e = self.gauges.entry(name).or_insert(i64::MIN);
        *e = (*e).max(v);
    }

    pub(crate) fn histogram(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    pub(crate) fn span(&mut self, path: Vec<&'static str>, inclusive_us: u64, exclusive_us: u64) {
        let s = self.spans.entry(path).or_default();
        s.count += 1;
        s.inclusive_us += inclusive_us;
        s.exclusive_us += exclusive_us;
    }

    fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.spans.clear();
    }

    /// Folds `other` into `self` (commutative per key).
    fn absorb(&mut self, other: &LocalData) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            let e = self.gauges.entry(name).or_insert(i64::MIN);
            *e = (*e).max(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        for (path, s) in &other.spans {
            self.spans.entry(path.clone()).or_default().merge(s);
        }
    }
}

pub(crate) struct Shard(Mutex<LocalData>);

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, LocalData> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct Registry {
    shards: Vec<Arc<Shard>>,
    retired: LocalData,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            shards: Vec::new(),
            retired: LocalData::default(),
        })
    })
}

/// Owns the thread's shard; on thread exit, folds it into `retired`
/// and drops it from the registry.
struct LocalHandle {
    shard: Arc<Shard>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let data = std::mem::take(&mut *self.shard.lock());
        reg.retired.absorb(&data);
        let shard = &self.shard;
        reg.shards.retain(|s| !Arc::ptr_eq(s, shard));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalHandle>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's shard, creating and registering it on
/// first use. Silently drops the record if the thread is mid-teardown.
#[inline]
pub(crate) fn with_local<R>(f: impl FnOnce(&mut LocalData) -> R) -> Option<R> {
    LOCAL
        .try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let handle = slot.get_or_insert_with(|| {
                let shard = Arc::new(Shard(Mutex::new(LocalData::default())));
                registry()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .shards
                    .push(Arc::clone(&shard));
                LocalHandle { shard }
            });
            let mut data = handle.shard.lock();
            f(&mut data)
        })
        .ok()
}

/// Freezes the union of all shards (live and retired) into a sorted
/// snapshot.
pub(crate) fn snapshot() -> TelemetrySnapshot {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut acc = LocalData::default();
    acc.absorb(&reg.retired);
    for shard in &reg.shards {
        acc.absorb(&shard.lock());
    }
    drop(reg);

    let mut counters: Vec<(String, u64)> = acc
        .counters
        .iter()
        .map(|(&n, &v)| (n.to_string(), v))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = acc
        .gauges
        .iter()
        .map(|(&n, &v)| (n.to_string(), v))
        .collect();
    gauges.sort();
    let mut histograms: Vec<(String, HistogramSnapshot)> = acc
        .histograms
        .iter()
        .map(|(&n, h)| (n.to_string(), HistogramSnapshot::from_histogram(h)))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut spans: Vec<(String, SpanStat)> = acc
        .spans
        .iter()
        .map(|(path, &s)| (path.join(";"), s))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));

    TelemetrySnapshot {
        counters,
        gauges,
        histograms,
        spans,
    }
}

/// Clears every shard (live and retired). The start of each benchmark
/// run calls this so snapshots cover exactly one run.
pub(crate) fn reset() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.retired.clear();
    for shard in &reg.shards {
        shard.lock().clear();
    }
}
