//! Generational slab arena.
//!
//! A dense, reusable store for the simulator's hot-path records (events,
//! transaction metadata). Allocation and release are O(1): freed slots
//! chain through an intrusive LIFO free list and are handed back in
//! deterministic order, so arena-backed code stays bit-identical across
//! runs. Each slot carries a generation counter; an [`ArenaId`] captures
//! the generation at allocation time, so a stale id (kept across a
//! release + reuse) is detected instead of silently aliasing the new
//! occupant.
//!
//! Compared to owning collections (`Vec<T>`, `VecDeque<T>`), the arena
//! lets hot loops pass 8-byte ids instead of cloning records, and reuse
//! keeps the per-event steady state allocation-free — the same property
//! the timer wheel's node slab provides for queued events.

/// Handle to a live arena slot: slot index plus the generation observed
/// at allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaId {
    index: u32,
    generation: u32,
}

impl ArenaId {
    /// The raw slot index (stable for the lifetime of the allocation).
    pub fn index(self) -> u32 {
        self.index
    }
}

enum Slot<T> {
    /// Free slot; `next_free` chains the LIFO free list (`u32::MAX` ends it).
    Free { next_free: u32 },
    Occupied { generation: u32, value: T },
}

const NIL: u32 = u32::MAX;

/// A generational slab arena. See the [module docs](self).
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Generation per slot index; bumped on release so stale ids miss.
    generations: Vec<u32>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty arena with room for `capacity` live values.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            generations: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one exists (most
    /// recently freed first — deterministic LIFO).
    pub fn insert(&mut self, value: T) -> ArenaId {
        self.len += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let generation = self.generations[index as usize];
            match self.slots[index as usize] {
                Slot::Free { next_free } => self.free_head = next_free,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            }
            self.slots[index as usize] = Slot::Occupied { generation, value };
            ArenaId { index, generation }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            self.generations.push(0);
            ArenaId {
                index,
                generation: 0,
            }
        }
    }

    /// The value behind `id`, or `None` if it was released (or released
    /// and the slot reused — the generation check catches both).
    pub fn get(&self, id: ArenaId) -> Option<&T> {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `id`.
    pub fn get_mut(&mut self, id: ArenaId) -> Option<&mut T> {
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns the value behind `id`; the slot goes back on
    /// the free list with a bumped generation. Stale ids return `None`.
    pub fn remove(&mut self, id: ArenaId) -> Option<T> {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, .. }) if *generation == id.generation => {}
            _ => return None,
        }
        let slot = std::mem::replace(
            &mut self.slots[id.index as usize],
            Slot::Free {
                next_free: self.free_head,
            },
        );
        self.free_head = id.index;
        self.generations[id.index as usize] = self.generations[id.index as usize].wrapping_add(1);
        self.len -= 1;
        match slot {
            Slot::Occupied { value, .. } => Some(value),
            Slot::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free); the arena's footprint.
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.remove(a), Some("a"));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut arena = Arena::new();
        let a = arena.insert(1u32);
        let b = arena.insert(2);
        arena.remove(a);
        arena.remove(b);
        // LIFO: b's slot comes back first.
        let c = arena.insert(3);
        let d = arena.insert(4);
        assert_eq!(c.index(), b.index());
        assert_eq!(d.index(), a.index());
        assert_eq!(arena.capacity_used(), 2);
    }

    #[test]
    fn stale_ids_are_rejected() {
        let mut arena = Arena::new();
        let a = arena.insert(10u8);
        arena.remove(a);
        let b = arena.insert(20);
        assert_eq!(b.index(), a.index(), "slot must be reused");
        assert_eq!(arena.get(a), None, "stale id must miss");
        assert_eq!(arena.get_mut(a), None);
        assert_eq!(arena.remove(a), None);
        assert_eq!(arena.get(b), Some(&20));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena = Arena::new();
        let id = arena.insert(vec![1, 2]);
        arena.get_mut(id).unwrap().push(3);
        assert_eq!(arena.get(id), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn steady_state_reuses_one_slot() {
        let mut arena = Arena::new();
        for i in 0..10_000u32 {
            let id = arena.insert(i);
            assert_eq!(arena.remove(id), Some(i));
        }
        assert_eq!(arena.capacity_used(), 1);
        assert!(arena.is_empty());
    }
}
