//! Deterministic pseudo-random number generation.
//!
//! The simulator must be reproducible: the same seed must yield the same
//! experiment on every platform. We therefore implement our own small,
//! well-known generators instead of depending on an external crate whose
//! stream might change between versions: SplitMix64 for seeding and
//! xoshiro256** for the main stream (the same construction used by many
//! simulation frameworks).

/// Deterministic random number generator (xoshiro256** seeded by
/// SplitMix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used to give each simulated node or client its own stream so that
    /// adding an event consumer does not perturb unrelated random draws.
    pub fn derive(&self, stream: u64) -> DetRng {
        let mut sm = self.state[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's multiply-then-shift with rejection for unbiasedness.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival jitter in workload generation.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Samples an approximately normal value via the sum of twelve
    /// uniforms (Irwin–Hall), adequate for latency jitter.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        mean + (acc - 6.0) * stddev
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick requires a non-empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_does_not_mutate_parent() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(3);
        let mut c2 = parent.derive(3);
        // Deriving twice with the same stream id yields the same stream,
        // i.e. `derive` does not consume entropy from the parent.
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Distinct stream ids give distinct streams.
        let mut d1 = parent.derive(4);
        let mut d2 = parent.derive(5);
        let same = (0..64).filter(|_| d1.next_u64() == d2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = DetRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = DetRng::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "stddev was {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
