//! Streaming statistics, histograms, CDFs and per-second time series.
//!
//! These are the primitives the Diablo aggregator (paper §4, "Primary")
//! uses to turn per-transaction submit/commit timestamps into the average
//! throughput / average latency / commit-ratio numbers reported in the
//! paper's figures, and into the latency CDFs of Figure 6.

use crate::time::{SimDuration, SimTime};

/// Sub-bucket resolution of [`LogHistogram`]: 2^5 = 32 linear
/// sub-buckets per power-of-two octave, bounding the relative
/// quantization error at ~3%.
pub const LOG_HIST_SUB_BITS: u32 = 5;

const LOG_HIST_SUB: usize = 1 << LOG_HIST_SUB_BITS;

/// An HDR-style log-linear histogram over `u64` values.
///
/// Values below 32 land in exact unit buckets; above that, each
/// power-of-two octave is split into 32 linear sub-buckets, so any
/// recorded value is representable to within ~3% by its bucket floor.
/// The bucket layout is fixed (at most ~1,920 buckets for the full
/// `u64` range) and independent of the data, which makes merging two
/// histograms a plain bucket-wise addition — commutative and
/// associative, so a merged histogram is bit-identical no matter how
/// the observations were sharded across recorders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < LOG_HIST_SUB as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - LOG_HIST_SUB_BITS;
            (((msb - LOG_HIST_SUB_BITS + 1) << LOG_HIST_SUB_BITS) as usize)
                + ((v >> shift) as usize & (LOG_HIST_SUB - 1))
        }
    }

    /// The smallest value mapping to bucket `index` (inverse of
    /// [`Self::bucket_index`], used to report quantiles).
    pub fn bucket_floor(index: usize) -> u64 {
        if index < LOG_HIST_SUB {
            index as u64
        } else {
            let octave = index / LOG_HIST_SUB;
            let sub = index % LOG_HIST_SUB;
            ((LOG_HIST_SUB + sub) as u64) << (octave - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank, reported as
    /// the floor of the bucket holding that rank (≤ ~3% below the true
    /// value). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed extremes so single-value
                // distributions report exactly that value.
                return Self::bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates `(bucket_floor, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }

    /// Iterates `(bucket_index, count)` over non-empty buckets, for
    /// compact wire encodings.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

/// Microseconds per unit when [`Summary`] folds its `f64` observations
/// into the quantile histogram (seconds-scale inputs keep ~µs grain).
const SUMMARY_HIST_SCALE: f64 = 1e6;

/// Streaming summary statistics (Welford's online algorithm) plus a
/// log-linear histogram for tail quantiles.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    hist: LogHistogram,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: LogHistogram::new(),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        // Negative observations clamp to bucket 0; the histogram only
        // serves the quantile view, moments above stay exact.
        self.hist
            .record((x * SUMMARY_HIST_SCALE).max(0.0).min(u64::MAX as f64) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// A quantile view over the recorded observations (nearest-rank on
    /// the internal log-linear histogram, ≤ ~3% quantization error).
    pub fn percentiles(&self) -> Percentiles<'_> {
        Percentiles { hist: &self.hist }
    }
}

/// Quantile view over a [`Summary`], backed by its [`LogHistogram`].
#[derive(Debug, Clone, Copy)]
pub struct Percentiles<'a> {
    hist: &'a LogHistogram,
}

impl Percentiles<'_> {
    /// The `q`-quantile (`q` in `[0, 1]`) in the summary's input units.
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q) as f64 / SUMMARY_HIST_SCALE
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// An empirical cumulative distribution function over latency samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples (takes ownership, sorts once).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank, or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        Some(self.sorted[idx])
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Iterates `(value, cumulative_fraction)` pairs for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// Downsamples the CDF to at most `max_points` evenly spaced points.
    pub fn sampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        if n <= max_points {
            return self.points().collect();
        }
        let mut out = Vec::with_capacity(max_points);
        for k in 1..=max_points {
            let i = k * n / max_points - 1;
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
        }
        out
    }
}

/// A fixed-bucket histogram over non-negative values.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets, each `bucket_width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation (negative values clamp to bucket 0).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let idx = (x.max(0.0) / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates `(bucket_start, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.bucket_width, c))
    }
}

/// A per-second time series of counters, used for throughput-over-time
/// plots like the workload graphs in the paper's Table 2.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries {
            buckets: Vec::new(),
        }
    }

    /// Increments the bucket containing `at` by `n`.
    pub fn record_at(&mut self, at: SimTime, n: u64) {
        let idx = at.second_bucket() as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// The value in second-bucket `sec` (0 if out of range).
    pub fn get(&self, sec: usize) -> u64 {
        self.buckets.get(sec).copied().unwrap_or(0)
    }

    /// Number of second buckets covered.
    pub fn seconds(&self) -> usize {
        self.buckets.len()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Maximum one-second value.
    pub fn peak(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// Mean events per second over the covered window, or 0 if empty.
    pub fn mean_rate(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.buckets.len() as f64
        }
    }

    /// Read-only view of the bucket values.
    pub fn values(&self) -> &[u64] {
        &self.buckets
    }
}

/// Converts a latency duration into seconds for statistics.
pub fn latency_secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge_matches_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn cdf_quantiles_and_fractions() {
        let cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(3.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert!((cdf.fraction_below(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
    }

    #[test]
    fn cdf_sampled_points_monotone() {
        let cdf = Cdf::from_samples((0..1000).map(|i| i as f64).collect());
        let pts = cdf.sampled_points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(1.0, 4);
        for x in [0.5, 1.5, 1.7, 3.9, 4.0, 100.0, -1.0] {
            h.record(x);
        }
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 2, 0, 1]); // -1 clamps to bucket 0
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn log_histogram_exact_below_32() {
        for v in 0..32u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn log_histogram_floor_inverts_index() {
        for v in [
            32u64,
            33,
            63,
            64,
            65,
            100,
            1_000,
            1_000_000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = LogHistogram::bucket_index(v);
            let floor = LogHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            assert_eq!(
                LogHistogram::bucket_index(floor),
                idx,
                "floor of bucket {idx} maps back to a different bucket"
            );
            // Log-linear guarantee: floor within ~3.2% (1/32) of value.
            assert!((v - floor) as f64 <= v as f64 / 32.0 + 1.0);
        }
    }

    #[test]
    fn log_histogram_indices_monotone() {
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
        }
        prev = 0;
        for s in 0..64 {
            let idx = LogHistogram::bucket_index(1u64 << s);
            assert!(idx >= prev, "index regressed at 2^{s}");
            prev = idx;
        }
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((468..=500).contains(&p50), "p50 = {p50}");
        assert!((959..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn log_histogram_merge_is_sharding_invariant() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 7919) % 100_000).collect();
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            [&mut a, &mut b, &mut c][i % 3].record(v);
        }
        // Merge in a different order than recording.
        c.merge(&a);
        c.merge(&b);
        assert_eq!(c, whole);
    }

    #[test]
    fn log_histogram_single_value_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record_n(777, 10);
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.quantile(0.99), 777);
    }

    #[test]
    fn summary_percentiles_track_tail() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.record(i as f64); // seconds-scale inputs
        }
        let p = s.percentiles();
        assert!((p.p50() - 50.0).abs() / 50.0 < 0.05, "p50 = {}", p.p50());
        assert!((p.p95() - 95.0).abs() / 95.0 < 0.05, "p95 = {}", p.p95());
        assert!((p.p99() - 99.0).abs() / 99.0 < 0.05, "p99 = {}", p.p99());
    }

    #[test]
    fn summary_merge_carries_percentiles() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        for i in 1..=50 {
            a.record(i as f64);
        }
        for i in 51..=100 {
            b.record(i as f64);
        }
        a.merge(&b);
        let p = a.percentiles();
        assert!((p.p99() - 99.0).abs() / 99.0 < 0.05, "p99 = {}", p.p99());
    }

    #[test]
    fn timeseries_buckets() {
        let mut ts = TimeSeries::new();
        ts.record_at(SimTime::from_millis(100), 1);
        ts.record_at(SimTime::from_millis(900), 2);
        ts.record_at(SimTime::from_secs(2), 5);
        assert_eq!(ts.get(0), 3);
        assert_eq!(ts.get(1), 0);
        assert_eq!(ts.get(2), 5);
        assert_eq!(ts.seconds(), 3);
        assert_eq!(ts.total(), 8);
        assert_eq!(ts.peak(), 5);
        assert!((ts.mean_rate() - 8.0 / 3.0).abs() < 1e-12);
    }
}
