//! Pending-event queue.
//!
//! A binary min-heap on `(time, sequence)` where the sequence number makes
//! ordering of simultaneous events stable (FIFO). Stability matters for
//! determinism: two events scheduled for the same instant are delivered in
//! the order they were scheduled, independent of heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) pair on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of pending events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` for delivery at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, with its delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1u8);
        q.schedule(SimTime::ZERO, 2u8);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
