//! Pending-event queue.
//!
//! Two interchangeable backends live behind the same [`EventQueue`] API:
//!
//! * [`QueueBackend::Wheel`] (the default) — a hierarchical timer wheel:
//!   11 levels of 64 power-of-two tick buckets (6 bits per level, so the
//!   levels together cover the full `u64` microsecond range). Level 0
//!   buckets hold exact ticks; level `l ≥ 1` buckets span `64^l` ticks
//!   and cascade lazily into finer levels as the wheel's cursor reaches
//!   them. Each level keeps a 64-bit occupancy bitmap, so finding the
//!   next non-empty bucket is a couple of bit ops instead of a heap
//!   sift; scheduling is O(1) and popping is O(1) amortized (each event
//!   cascades at most `LEVELS - 1` times). Bucket lists are intrusive
//!   singly-linked lists over an internal slab, so the steady-state hot
//!   path performs no allocation at all.
//!
//! * [`QueueBackend::Heap`] — the original binary min-heap on
//!   `(time, sequence)`, kept as the reference implementation. The
//!   differential property test in `tests/queue_differential.rs` proves
//!   the wheel pops the exact same `(time, event)` sequence.
//!
//! Both backends deliver simultaneous events in FIFO schedule order via
//! a monotone sequence number; stability matters for determinism. In the
//! wheel, FIFO falls out structurally: bucket lists append in schedule
//! (= sequence) order, and cascades redistribute a bucket front-to-back
//! into finer buckets that are provably empty at cascade time, so the
//! relative order of same-tick events is preserved end to end.
//!
//! # Monotone-insertion invariant
//!
//! `EventQueue::schedule` requires `at >=` the delivery time of the last
//! event popped (the *watermark*). The simulation engine upholds this by
//! construction — [`crate::Scheduler::at`] clamps to the current clock —
//! and the queue enforces it: a `debug_assert!` trips on violations in
//! debug builds, and release builds clamp the instant up to the
//! watermark, mirroring the engine's "the clock never runs backwards"
//! rule. The wheel's bucket arithmetic relies on this invariant: the
//! internal cursor only ever advances, and a scheduled tick below it
//! would land in an already-drained bucket and never be delivered.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Index bits per wheel level (64 slots each).
const SLOT_BITS: u32 = 6;
/// Buckets per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels: 11 × 6 bits = 66 bits, covering every `u64` tick.
const LEVELS: usize = 11;
/// Null link in the node slab.
const NIL: u32 = u32::MAX;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel (the default; O(1) schedule/pop).
    #[default]
    Wheel,
    /// Binary min-heap on `(time, seq)` (the reference implementation).
    Heap,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) pair on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Slab node for the wheel's intrusive bucket lists.
struct Node<E> {
    at: u64,
    seq: u64,
    next: u32,
    /// `None` only while the node sits on the free list.
    event: Option<E>,
}

/// The hierarchical timer wheel backend.
struct TimerWheel<E> {
    /// `(head, tail)` node indices per bucket, flat-indexed
    /// `level * SLOTS + slot`; `NIL` head marks an empty bucket.
    buckets: Vec<(u32, u32)>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ bucket `s` non-empty.
    occupied: [u64; LEVELS],
    /// Node slab; freed nodes chain through `free`.
    nodes: Vec<Node<E>>,
    free: u32,
    /// Lower bound (in ticks) on every pending event; advances only on
    /// cascade, and is always ≤ the queue watermark between operations.
    cursor: u64,
    len: usize,
}

impl<E> TimerWheel<E> {
    fn with_capacity(capacity: usize) -> Self {
        TimerWheel {
            buckets: vec![(NIL, NIL); LEVELS * SLOTS],
            occupied: [0; LEVELS],
            nodes: Vec::with_capacity(capacity),
            free: NIL,
            cursor: 0,
            len: 0,
        }
    }

    /// The level whose bucket granularity distinguishes `t` from the
    /// cursor, and the bucket index of `t` within that level.
    ///
    /// Requires `t >= self.cursor` (the monotone-insertion invariant):
    /// XOR then locates the highest differing 6-bit group.
    #[inline]
    fn level_and_slot(&self, t: u64) -> (usize, usize) {
        let diff = t ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((t >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.event = Some(event);
            idx
        } else {
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Appends node `idx` to the bucket its `at` tick maps to.
    fn link(&mut self, idx: u32) {
        let at = self.nodes[idx as usize].at;
        let (level, slot) = self.level_and_slot(at);
        let bi = level * SLOTS + slot;
        let (head, tail) = self.buckets[bi];
        if head == NIL {
            self.buckets[bi] = (idx, idx);
            self.occupied[level] |= 1 << slot;
        } else {
            self.nodes[tail as usize].next = idx;
            self.buckets[bi] = (head, idx);
        }
    }

    /// Schedules an event. `t` must be ≥ the cursor (guaranteed by the
    /// watermark clamp in [`EventQueue::schedule`]).
    fn push(&mut self, t: u64, seq: u64, event: E) {
        debug_assert!(t >= self.cursor, "wheel insert below cursor");
        let idx = self.alloc(t, seq, event);
        self.link(idx);
        self.len += 1;
    }

    /// The earliest pending delivery time, **without mutating** the
    /// wheel.
    ///
    /// Deliberately cascade-free: a cascade advances the cursor, and the
    /// engine's peek-then-break-on-deadline path may schedule between a
    /// peek and the next pop — an insert below an advanced cursor would
    /// land in a drained bucket. Level-0 buckets store exact ticks, so
    /// their minimum is exact; for a coarser level the first occupied
    /// bucket is min-scanned (amortized against the cascade that will
    /// walk the same list).
    fn peek(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
        let slot = self.occupied[level].trailing_zeros() as usize;
        if level == 0 {
            // Exact: reconstruct the tick from the cursor's window base.
            return Some((self.cursor & !(SLOTS as u64 - 1)) | slot as u64);
        }
        let (mut idx, _) = self.buckets[level * SLOTS + slot];
        let mut min = u64::MAX;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            min = min.min(node.at);
            idx = node.next;
        }
        Some(min)
    }

    /// Removes and returns the earliest `(tick, event)` pair; FIFO among
    /// same-tick events.
    fn pop(&mut self) -> Option<(u64, E)> {
        loop {
            if self.len == 0 {
                return None;
            }
            if self.occupied[0] != 0 {
                // Level 0 holds exact ticks; the lowest occupied bucket
                // is the earliest event, and its list head is the
                // earliest sequence number at that tick.
                let slot = self.occupied[0].trailing_zeros() as usize;
                let (head, tail) = self.buckets[slot];
                let node = &mut self.nodes[head as usize];
                let at = node.at;
                let event = node.event.take().expect("linked node carries an event");
                let next = node.next;
                node.next = self.free;
                self.free = head;
                if next == NIL {
                    self.buckets[slot] = (NIL, NIL);
                    self.occupied[0] &= !(1u64 << slot);
                } else {
                    self.buckets[slot] = (next, tail);
                }
                self.len -= 1;
                return Some((at, event));
            }
            // Level 0 empty: cascade the first occupied bucket of the
            // lowest occupied level down one step. Advancing the cursor
            // to that bucket's base is sound because every finer bucket
            // below it is empty (we just checked all lower levels).
            let level = (1..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("len > 0 implies an occupied level");
            let slot = self.occupied[level].trailing_zeros() as usize;
            let bi = level * SLOTS + slot;
            let (mut idx, _) = self.buckets[bi];
            self.buckets[bi] = (NIL, NIL);
            self.occupied[level] &= !(1u64 << slot);
            // New cursor: keep the bits above this level, set this
            // level's group to `slot`, zero everything finer.
            let group_shift = SLOT_BITS as usize * level;
            let above_shift = group_shift + SLOT_BITS as usize;
            let above = if above_shift >= 64 {
                0
            } else {
                (self.cursor >> above_shift) << above_shift
            };
            self.cursor = above | ((slot as u64) << group_shift);
            // Relink front-to-back: preserves schedule order within any
            // target bucket (all strictly finer buckets are empty here,
            // so cascaded nodes can only queue behind each other).
            while idx != NIL {
                let next = self.nodes[idx as usize].next;
                self.nodes[idx as usize].next = NIL;
                self.link(idx);
                idx = next;
            }
        }
    }
}

enum Backend<E> {
    Wheel(TimerWheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered queue of pending events.
///
/// Simultaneous events are delivered in the order they were scheduled
/// (FIFO), independent of backend internals. Insertions must respect the
/// monotone-insertion invariant documented at the [module level](self):
/// never schedule below the last popped time.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    /// Delivery time of the last popped event; the floor for inserts.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (timer wheel) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Wheel)
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_backend_and_capacity(backend, 0)
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend_and_capacity(QueueBackend::Wheel, capacity)
    }

    /// Creates an empty queue on an explicit backend, with room for
    /// `capacity` events.
    pub fn with_backend_and_capacity(backend: QueueBackend, capacity: usize) -> Self {
        let backend = match backend {
            QueueBackend::Wheel => Backend::Wheel(TimerWheel::with_capacity(capacity)),
            QueueBackend::Heap => Backend::Heap(BinaryHeap::with_capacity(capacity)),
        };
        EventQueue {
            backend,
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Wheel(_) => QueueBackend::Wheel,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Schedules `event` for delivery at `at`.
    ///
    /// `at` must be ≥ the delivery time of the last popped event (see
    /// the module-level invariant). Debug builds assert; release builds
    /// clamp up to the watermark, so a violating event is delivered at
    /// the earliest still-representable instant rather than lost.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.watermark,
            "EventQueue::schedule below watermark: {at:?} < {:?}",
            self.watermark
        );
        let at = at.max(self.watermark);
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Wheel(w) => w.push(at.0, seq, event),
            Backend::Heap(h) => h.push(Entry { at, seq, event }),
        }
    }

    /// Removes and returns the earliest event, with its delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Wheel(w) => w.pop().map(|(t, e)| (SimTime(t), e)),
            Backend::Heap(h) => h.pop().map(|e| (e.at, e.event)),
        };
        if let Some((at, _)) = popped {
            self.watermark = at;
        }
        popped
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek().map(SimTime),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Wheel, QueueBackend::Heap];

    #[test]
    fn pops_in_time_order() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime::from_secs(3), "c");
            q.schedule(SimTime::from_secs(1), "a");
            q.schedule(SimTime::from_secs(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{backend:?}");
        }
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_secs(5), ());
            q.schedule(SimTime::from_secs(2), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)), "{backend:?}");
            let (t, ()) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(2), "{backend:?}");
        }
    }

    #[test]
    fn len_and_empty() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            assert!(q.is_empty());
            q.schedule(SimTime::ZERO, 1u8);
            q.schedule(SimTime::ZERO, 2u8);
            assert_eq!(q.len(), 2, "{backend:?}");
            q.pop();
            q.pop();
            assert!(q.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        // Spread events across every wheel level, including ticks whose
        // high bits exercise the topmost (partial) level.
        let mut q = EventQueue::new();
        let ticks = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 30,
            (1 << 30) + 1,
            1 << 45,
            1 << 62,
            u64::MAX - 1,
            u64::MAX,
        ];
        for (i, &t) in ticks.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            ticks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        sorted.sort();
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.0, e))
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Re-scheduling after pops exercises cursor advance + re-insert
        // near the watermark (the engine's steady-state pattern).
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 0u32);
        q.schedule(SimTime(1_000_000), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.0, e), (10, 0));
        // Insert between the watermark and the far event.
        q.schedule(SimTime(500), 2);
        q.schedule(SimTime(10), 3); // exactly at the watermark
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.0, e)).collect();
        assert_eq!(order, vec![(10, 3), (500, 2), (1_000_000, 1)]);
    }

    #[test]
    fn same_tick_fifo_across_cascades() {
        // Events at one far tick scheduled before AND after unrelated
        // cascades must still pop in schedule order.
        let mut q = EventQueue::new();
        let far = 1u64 << 20;
        q.schedule(SimTime(far), 0u32);
        q.schedule(SimTime(5), 100);
        q.schedule(SimTime(far), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 100);
        q.schedule(SimTime(far), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "below watermark"))]
    fn schedule_below_watermark_asserts_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
        // Release builds clamp instead of panicking.
        assert_eq!(q.peek_time(), Some(SimTime(100)));
    }

    #[test]
    fn reuses_slab_nodes() {
        // A bounded schedule/pop cycle must not grow the slab without
        // bound: steady state allocates nothing.
        let mut q = EventQueue::new();
        for round in 0u64..10_000 {
            q.schedule(SimTime(round), round);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t.0, e), (round, round));
        }
        if let Backend::Wheel(w) = &q.backend {
            assert!(w.nodes.len() <= 2, "slab grew to {}", w.nodes.len());
        } else {
            panic!("default backend must be the wheel");
        }
    }
}
