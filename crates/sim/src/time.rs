//! Simulation time base.
//!
//! Simulated time is measured in integer microseconds since the start of
//! the experiment. Microsecond resolution is fine enough to express the
//! sub-millisecond datacenter round-trip times of the paper's Table 3
//! while keeping 64-bit arithmetic exact for multi-hour experiments.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time far in the future, usable as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from a float number of seconds, rounding up to
    /// the next microsecond (clamping below at zero).
    pub fn from_secs_f64_ceil(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime((secs * 1e6).ceil() as u64)
        }
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the one-second bucket this instant falls into.
    ///
    /// Used to build per-second throughput time series.
    pub const fn second_bucket(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from a float number of seconds, rounding to the
    /// nearest microsecond and saturating below at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1e6).round() as u64)
        }
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in this duration, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Component-wise maximum.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// Component-wise minimum.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::from_secs(1) - t, SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn second_buckets() {
        assert_eq!(SimTime::from_millis(999).second_bucket(), 0);
        assert_eq!(SimTime::from_millis(1000).second_bucket(), 1);
        assert_eq!(SimTime::from_secs(120).second_bucket(), 120);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000s");
    }
}
