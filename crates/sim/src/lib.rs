//! Deterministic discrete-event simulation kernel for the Diablo benchmark
//! suite.
//!
//! This crate provides the time base, the event queue, a deterministic
//! pseudo-random number generator and streaming statistics used by every
//! other simulation crate in the workspace. It has no dependencies and is
//! fully deterministic: running the same simulation with the same seed
//! always produces bit-identical results, which is what makes the
//! paper-reproduction benches in `diablo-bench` stable across machines.

#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use arena::{Arena, ArenaId};
pub use engine::{Scheduler, Simulation, World};
pub use queue::{EventQueue, QueueBackend};
pub use rng::DetRng;
pub use stats::{Cdf, Histogram, LogHistogram, Percentiles, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
