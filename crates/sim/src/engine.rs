//! The simulation executor.
//!
//! A [`World`] owns the mutable simulation state and handles events; the
//! [`Simulation`] drives the clock forward, delivering events in time
//! order. Handlers schedule follow-up events through a [`Scheduler`]
//! handle, which keeps borrowing simple (the world never holds the queue).

use crate::queue::{EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};

/// Mutable simulation state plus its event handler.
pub trait World {
    /// The event type this world reacts to.
    type Event;

    /// Handles one event delivered at `now`, scheduling any follow-up
    /// events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle used by event handlers to schedule future events.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
}

impl<E> Scheduler<E> {
    fn new(now: SimTime) -> Self {
        Scheduler {
            now,
            pending: Vec::new(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are delivered "now" instead; the
    /// simulation clock never runs backwards.
    pub fn at(&mut self, at: SimTime, event: E) {
        self.pending.push((at.max(self.now), event));
    }
}

/// The event-driven simulation executor.
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    delivered: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation around an initial world state, on the
    /// default (timer wheel) event queue.
    pub fn new(world: W) -> Self {
        Self::with_backend(world, QueueBackend::default())
    }

    /// Creates a simulation on an explicit event-queue backend.
    ///
    /// The wheel is the production default; the heap backend is kept for
    /// differential testing and benchmarking against the reference
    /// implementation.
    pub fn with_backend(world: W, backend: QueueBackend) -> Self {
        Simulation {
            world,
            queue: EventQueue::with_backend(backend),
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Schedules an initial event before the run starts (or between runs).
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        self.queue.schedule(at.max(self.now), event);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and inspection).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// The instant of the next queued event, if any.
    ///
    /// This is the pacing hook of live mode: a wall-clock driver peeks
    /// the next instant, sleeps until real time catches up, then
    /// delivers it with [`Simulation::step`].
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Delivers exactly the next queued event (advancing the clock to
    /// it), or returns `None` on an empty queue.
    ///
    /// A `step()` loop is observably identical to [`Simulation::run_until`]: same
    /// events, same order, same clock — only the caller controls when
    /// each delivery happens.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        let mut sched = Scheduler::new(at);
        self.world.handle(at, event, &mut sched);
        for (t, e) in sched.pending {
            self.queue.schedule(t, e);
        }
        self.delivered += 1;
        Some(at)
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    ///
    /// Events scheduled exactly at the deadline are delivered; later
    /// events remain queued. Returns the number of events delivered by
    /// this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut count = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            let mut sched = Scheduler::new(at);
            self.world.handle(at, event, &mut sched);
            for (t, e) in sched.pending {
                self.queue.schedule(t, e);
            }
            count += 1;
        }
        self.now = self
            .now
            .max(deadline.min(self.queue.peek_time().unwrap_or(deadline)));
        self.delivered += count;
        count
    }

    /// Runs until the queue is completely drained.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: every `Tick(n)` event with `n > 0` schedules
    /// `Tick(n - 1)` one second later and records the time.
    struct Countdown {
        log: Vec<(SimTime, u32)>,
    }

    #[derive(Debug)]
    struct Tick(u32);

    impl World for Countdown {
        type Event = Tick;

        fn handle(&mut self, now: SimTime, event: Tick, sched: &mut Scheduler<Tick>) {
            self.log.push((now, event.0));
            if event.0 > 0 {
                sched.after(SimDuration::from_secs(1), Tick(event.0 - 1));
            }
        }
    }

    #[test]
    fn chains_of_events_advance_the_clock() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(SimTime::ZERO, Tick(3));
        let delivered = sim.run_to_completion();
        assert_eq!(delivered, 4);
        let world = sim.into_world();
        assert_eq!(
            world.log,
            vec![
                (SimTime::from_secs(0), 3),
                (SimTime::from_secs(1), 2),
                (SimTime::from_secs(2), 1),
                (SimTime::from_secs(3), 0),
            ]
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(SimTime::ZERO, Tick(10));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.world().log.len(), 5); // t = 0..=4
        sim.run_to_completion();
        assert_eq!(sim.world().log.len(), 11);
    }

    #[test]
    fn stepping_is_identical_to_run_until() {
        let mut run = Simulation::new(Countdown { log: Vec::new() });
        run.schedule(SimTime::ZERO, Tick(5));
        run.run_to_completion();

        let mut stepped = Simulation::new(Countdown { log: Vec::new() });
        stepped.schedule(SimTime::ZERO, Tick(5));
        while let Some(next) = stepped.peek_time() {
            let delivered = stepped.step().unwrap();
            assert_eq!(delivered, next, "peek agrees with the delivered instant");
        }
        assert_eq!(stepped.world().log, run.world().log);
        assert_eq!(stepped.delivered(), run.delivered());
    }

    #[test]
    fn past_events_delivered_now() {
        struct Echo(Vec<SimTime>);
        impl World for Echo {
            type Event = bool;
            fn handle(&mut self, now: SimTime, first: bool, sched: &mut Scheduler<bool>) {
                self.0.push(now);
                if first {
                    // Attempt to schedule in the past; must clamp to now.
                    sched.at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(Echo(Vec::new()));
        sim.schedule(SimTime::from_secs(5), true);
        sim.run_to_completion();
        assert_eq!(
            sim.world().0,
            vec![SimTime::from_secs(5), SimTime::from_secs(5)]
        );
    }
}
