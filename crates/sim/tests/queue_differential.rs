//! Differential property test: the timer-wheel event queue pops the
//! exact same `(time, event)` sequence as the reference binary heap.
//!
//! Random schedule/pop interleavings — including same-tick FIFO bursts
//! and far-future ticks that land on every wheel level — are applied to
//! an [`EventQueue`] on each backend in lock-step. After every
//! operation the two queues must agree on `peek_time` and `len`, every
//! pop must return the identical `(time, event)` pair, and the final
//! drain must empty both in the same order. Schedules respect the
//! queue's monotone-insertion invariant (never below the last popped
//! time), exactly as the simulation engine guarantees by construction.
//!
//! Runs on the in-tree `diablo-testkit` harness: failures shrink and
//! print a `DIABLO_PROP_SEED=<seed>` line that replays the exact case;
//! `DIABLO_PROP_CASES` scales the case count.

use diablo_sim::{EventQueue, QueueBackend, SimTime};
use diablo_testkit::gen::{u64s, vecs};
use diablo_testkit::{prop_assert_eq, Property};

/// Decodes one generated word into an operation against the pair of
/// queues.
///
/// Two low bits select pop (one in four ops) vs schedule; for schedules
/// the next three bits pick a delay magnitude class so cases cover
/// same-tick bursts (delta 0), near ticks, and jumps that span every
/// wheel level up to the top.
fn decode(code: u64, watermark: u64) -> Op {
    if code & 0b11 == 0b11 {
        return Op::Pop;
    }
    let magnitude = (code >> 2) & 0b111;
    let raw = code >> 5;
    let delta = match magnitude {
        // Same-tick bursts: the FIFO-stability hot spot.
        0 | 1 => 0,
        2 => raw % 64,
        3 => raw % 4_096,
        4 => raw % (1 << 18),
        5 => raw % (1 << 30),
        6 => raw % (1 << 45),
        _ => raw, // arbitrary, up to ~2^59: exercises the top levels
    };
    Op::Schedule(watermark.saturating_add(delta))
}

enum Op {
    Schedule(u64),
    Pop,
}

#[test]
fn wheel_matches_heap_on_random_interleavings() {
    Property::new("sim::queue wheel ≡ heap")
        .cases(200)
        .check(&vecs(u64s(0..=u64::MAX), 0..=400), |codes| {
            let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            // The engine's invariant: never schedule below the last
            // popped time. Tracked here the same way the engine tracks
            // its clock.
            let mut watermark = 0u64;
            let mut next_event = 0u32;
            for &code in codes {
                match decode(code, watermark) {
                    Op::Schedule(at) => {
                        wheel.schedule(SimTime(at), next_event);
                        heap.schedule(SimTime(at), next_event);
                        next_event += 1;
                    }
                    Op::Pop => {
                        let w = wheel.pop();
                        let h = heap.pop();
                        prop_assert_eq!(&w, &h, "pop diverged");
                        if let Some((t, _)) = w {
                            watermark = t.0;
                        }
                    }
                }
                prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
                prop_assert_eq!(wheel.len(), heap.len(), "len diverged");
            }
            // Full drain: whatever remains must come out identically.
            loop {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(&w, &h, "drain diverged");
                if w.is_none() {
                    break;
                }
            }
            Ok(())
        });
}

#[test]
fn wheel_matches_heap_on_same_tick_bursts() {
    // A sharper version of the FIFO case: long runs of identical ticks
    // separated by occasional pops, where heap tie-breaking is carried
    // entirely by sequence numbers and wheel ordering by bucket lists.
    Property::new("sim::queue same-tick bursts")
        .cases(100)
        .check(
            &vecs(u64s(0..=u64::MAX), 1..=200),
            |codes| {
                let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
                let mut heap = EventQueue::with_backend(QueueBackend::Heap);
                let mut watermark = 0u64;
                let mut next_event = 0u32;
                for &code in codes {
                    // Three ops per word: two same-tick schedules and,
                    // every fourth word, a pop — dense bursts guaranteed.
                    let tick = watermark + (code >> 3) % 128;
                    for _ in 0..2 {
                        wheel.schedule(SimTime(tick), next_event);
                        heap.schedule(SimTime(tick), next_event);
                        next_event += 1;
                    }
                    if code & 0b11 == 0 {
                        let w = wheel.pop();
                        let h = heap.pop();
                        prop_assert_eq!(&w, &h, "pop diverged");
                        if let Some((t, _)) = w {
                            watermark = t.0;
                        }
                    }
                }
                loop {
                    let w = wheel.pop();
                    let h = heap.pop();
                    prop_assert_eq!(&w, &h, "drain diverged");
                    if w.is_none() {
                        break;
                    }
                }
                Ok(())
            },
        );
}
