//! Persistent contract state.
//!
//! A contract owns a word-keyed word store plus an accounting of opaque
//! payload bytes (for the video-sharing DApp). Flavors impose
//! [`StateLimits`]; exceeding them is a deploy-time or run-time error —
//! which is how the paper's "we could not implement the video sharing
//! DApp in TEAL" manifests in this reproduction.

use std::collections::HashMap;

use crate::Word;

/// Per-flavor limits on contract state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateLimits {
    /// Largest single opaque payload (bytes) the state can absorb.
    pub max_blob_bytes: u64,
    /// Maximum number of key-value entries.
    pub max_entries: usize,
}

impl StateLimits {
    /// Limits that our DApps can never hit.
    pub const fn unbounded() -> StateLimits {
        StateLimits {
            max_blob_bytes: u64::MAX / 2,
            max_entries: usize::MAX / 2,
        }
    }

    /// Whether a blob of `len` bytes fits.
    pub const fn blob_fits(&self, len: u64) -> bool {
        len <= self.max_blob_bytes
    }
}

/// The persistent state of one deployed contract.
#[derive(Debug, Clone, Default)]
pub struct ContractState {
    entries: HashMap<Word, Word>,
    blob_bytes: u64,
    blob_count: u64,
}

impl ContractState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        ContractState::default()
    }

    /// Reads `key`, returning 0 when absent (EVM semantics).
    pub fn load(&self, key: Word) -> Word {
        self.entries.get(&key).copied().unwrap_or(0)
    }

    /// Writes `key := value`. Returns `false` (and leaves the state
    /// untouched) when the entry count limit would be exceeded.
    pub fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        if !self.entries.contains_key(&key) && self.entries.len() >= limits.max_entries {
            return false;
        }
        self.entries.insert(key, value);
        true
    }

    /// Accounts for an opaque payload of `len` bytes. Returns `false`
    /// when the flavor's blob limit rejects it.
    pub fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        if !limits.blob_fits(len) {
            return false;
        }
        self.blob_bytes = self.blob_bytes.saturating_add(len);
        self.blob_count += 1;
        true
    }

    /// Reverses one [`ContractState::store_blob`] of `len` bytes
    /// (rollback support for the interpreter's journal).
    pub fn unstore_blob(&mut self, len: u64) {
        self.blob_bytes = self.blob_bytes.saturating_sub(len);
        self.blob_count = self.blob_count.saturating_sub(1);
    }

    /// Number of key-value entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total opaque payload bytes absorbed.
    pub fn blob_bytes(&self) -> u64 {
        self.blob_bytes
    }

    /// Number of opaque payloads absorbed.
    pub fn blob_count(&self) -> u64 {
        self.blob_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_keys_read_zero() {
        let s = ContractState::new();
        assert_eq!(s.load(42), 0);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let mut s = ContractState::new();
        let lim = StateLimits::unbounded();
        assert!(s.store(1, 10, &lim));
        assert!(s.store(2, -5, &lim));
        assert_eq!(s.load(1), 10);
        assert_eq!(s.load(2), -5);
        assert!(s.store(1, 11, &lim));
        assert_eq!(s.load(1), 11);
        assert_eq!(s.entry_count(), 2);
    }

    #[test]
    fn entry_limit_rejects_new_keys_but_allows_updates() {
        let mut s = ContractState::new();
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 2,
        };
        assert!(s.store(1, 1, &lim));
        assert!(s.store(2, 2, &lim));
        assert!(!s.store(3, 3, &lim));
        assert_eq!(s.load(3), 0);
        // Updating an existing key is still allowed.
        assert!(s.store(2, 20, &lim));
        assert_eq!(s.load(2), 20);
    }

    #[test]
    fn blob_limit_enforced() {
        let mut s = ContractState::new();
        let avm = StateLimits {
            max_blob_bytes: 128,
            max_entries: 64,
        };
        assert!(s.store_blob(128, &avm));
        assert!(!s.store_blob(129, &avm));
        assert_eq!(s.blob_bytes(), 128);
        assert_eq!(s.blob_count(), 1);
    }
}
