//! Persistent contract state.
//!
//! A contract owns a word-keyed word store plus an accounting of opaque
//! payload bytes (for the video-sharing DApp). Flavors impose
//! [`StateLimits`]; exceeding them is a deploy-time or run-time error —
//! which is how the paper's "we could not implement the video sharing
//! DApp in TEAL" manifests in this reproduction.
//!
//! Execution can target either the canonical [`ContractState`] or a
//! copy-on-write [`Overlay`] over it — the [`StateAccess`] trait is the
//! common surface. Overlays are how the parallel block executor in
//! `diablo-chains` isolates concurrently executing transactions: each
//! conflict-free group runs against its own overlay, and the resulting
//! [`OverlayDelta`]s are merged back into the base state afterwards.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::Word;

/// Per-flavor limits on contract state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateLimits {
    /// Largest single opaque payload (bytes) the state can absorb.
    pub max_blob_bytes: u64,
    /// Maximum number of key-value entries.
    pub max_entries: usize,
}

impl StateLimits {
    /// Limits that our DApps can never hit.
    pub const fn unbounded() -> StateLimits {
        StateLimits {
            max_blob_bytes: u64::MAX / 2,
            max_entries: usize::MAX / 2,
        }
    }

    /// Whether a blob of `len` bytes fits.
    pub const fn blob_fits(&self, len: u64) -> bool {
        len <= self.max_blob_bytes
    }
}

/// The common surface of executable state: the canonical
/// [`ContractState`] and the copy-on-write [`Overlay`] both implement
/// it, so the interpreter's prepared fast path can run against either.
pub trait StateAccess {
    /// Reads `key`, returning 0 when absent (EVM semantics).
    fn load(&self, key: Word) -> Word;

    /// Writes `key := value`. Returns `false` (and leaves the state
    /// untouched) when the entry count limit would be exceeded.
    fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool;

    /// Accounts for an opaque payload of `len` bytes. Returns `false`
    /// when the flavor's blob limit rejects it.
    fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool;

    /// Reverses one [`StateAccess::store_blob`] of `len` bytes
    /// (rollback support for the interpreter's journal).
    fn unstore_blob(&mut self, len: u64);
}

/// The persistent state of one deployed contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContractState {
    entries: HashMap<Word, Word>,
    blob_bytes: u64,
    blob_count: u64,
}

impl ContractState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        ContractState::default()
    }

    /// Reads `key`, returning 0 when absent (EVM semantics).
    pub fn load(&self, key: Word) -> Word {
        self.entries.get(&key).copied().unwrap_or(0)
    }

    /// Whether `key` holds an explicit entry (a stored 0 is
    /// distinguishable from an absent key, which also reads as 0).
    pub fn contains_key(&self, key: Word) -> bool {
        self.entries.contains_key(&key)
    }

    /// Writes `key := value`. Returns `false` (and leaves the state
    /// untouched) when the entry count limit would be exceeded.
    pub fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        // One hash lookup for both the limit check and the write: this
        // is the hottest state operation of an experiment.
        let len = self.entries.len();
        match self.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                slot.insert(value);
                true
            }
            Entry::Vacant(slot) => {
                if len >= limits.max_entries {
                    return false;
                }
                slot.insert(value);
                true
            }
        }
    }

    /// Merges the effects of one committed [`Overlay`] into this state.
    ///
    /// The parallel executor guarantees deltas of one block touch
    /// disjoint keys, so the merge order between deltas is irrelevant;
    /// blob accounting is additive and commutes.
    pub fn apply(&mut self, delta: OverlayDelta) {
        for (key, value) in delta.entries {
            self.entries.insert(key, value);
        }
        self.blob_bytes = self.blob_bytes.saturating_add(delta.blob_bytes);
        self.blob_count = self.blob_count.saturating_add(delta.blob_count);
    }

    /// Accounts for an opaque payload of `len` bytes. Returns `false`
    /// when the flavor's blob limit rejects it.
    pub fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        if !limits.blob_fits(len) {
            return false;
        }
        self.blob_bytes = self.blob_bytes.saturating_add(len);
        self.blob_count += 1;
        true
    }

    /// Reverses one [`ContractState::store_blob`] of `len` bytes
    /// (rollback support for the interpreter's journal).
    pub fn unstore_blob(&mut self, len: u64) {
        self.blob_bytes = self.blob_bytes.saturating_sub(len);
        self.blob_count = self.blob_count.saturating_sub(1);
    }

    /// Number of key-value entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The `(key, value)` entries sorted by key.
    ///
    /// `entries` is a `HashMap`, so its iteration order is
    /// nondeterministic; every serialization of a state — Merkle roots,
    /// JSON dumps, differential comparisons — must go through this
    /// helper so the output is stable by construction.
    pub fn sorted_entries(&self) -> Vec<(Word, Word)> {
        let mut pairs: Vec<(Word, Word)> = self.entries.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// Total opaque payload bytes absorbed.
    pub fn blob_bytes(&self) -> u64 {
        self.blob_bytes
    }

    /// Number of opaque payloads absorbed.
    pub fn blob_count(&self) -> u64 {
        self.blob_count
    }
}

impl StateAccess for ContractState {
    fn load(&self, key: Word) -> Word {
        ContractState::load(self, key)
    }

    fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        ContractState::store(self, key, value, limits)
    }

    fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        ContractState::store_blob(self, len, limits)
    }

    fn unstore_blob(&mut self, len: u64) {
        ContractState::unstore_blob(self, len)
    }
}

/// A copy-on-write view over a base [`ContractState`].
///
/// Reads fall through to the base; writes land in a private map. The
/// entry-count limit is enforced exactly against the base's entry count
/// plus this overlay's newly created keys — identical to executing the
/// same transactions directly against the base, as long as no *other*
/// overlay adds keys concurrently (the parallel executor falls back to
/// serial execution whenever a block could approach the entry limit).
#[derive(Debug)]
pub struct Overlay<'a> {
    base: &'a ContractState,
    entries: HashMap<Word, Word>,
    /// Keys in `entries` that have no entry in `base`.
    new_keys: usize,
    blob_bytes: u64,
    blob_count: u64,
}

/// The owned effects of one [`Overlay`], detached from the base borrow
/// so they can cross a thread-scope boundary and be merged via
/// [`ContractState::apply`].
#[derive(Debug, Default)]
pub struct OverlayDelta {
    entries: HashMap<Word, Word>,
    blob_bytes: u64,
    blob_count: u64,
}

impl OverlayDelta {
    /// Assembles a delta from raw parts (crate-internal: the
    /// speculative overlay in [`crate::mv`] builds its delta directly).
    pub(crate) fn from_parts(
        entries: HashMap<Word, Word>,
        blob_bytes: u64,
        blob_count: u64,
    ) -> OverlayDelta {
        OverlayDelta {
            entries,
            blob_bytes,
            blob_count,
        }
    }

    /// Whether the overlay recorded no effects at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.blob_bytes == 0 && self.blob_count == 0
    }

    /// Number of keys the overlay wrote.
    pub fn written_keys(&self) -> usize {
        self.entries.len()
    }

    /// The written `(key, value)` pairs, in no particular order. The
    /// optimistic executor uses this to count the keys a commit would
    /// newly create when checking the entry-count budget.
    pub fn entries(&self) -> impl Iterator<Item = (Word, Word)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }
}

impl<'a> Overlay<'a> {
    /// An empty overlay over `base`.
    pub fn new(base: &'a ContractState) -> Self {
        Overlay {
            base,
            entries: HashMap::new(),
            new_keys: 0,
            blob_bytes: 0,
            blob_count: 0,
        }
    }

    /// Detaches the recorded effects from the base borrow.
    pub fn into_delta(self) -> OverlayDelta {
        OverlayDelta {
            entries: self.entries,
            blob_bytes: self.blob_bytes,
            blob_count: self.blob_count,
        }
    }
}

impl StateAccess for Overlay<'_> {
    fn load(&self, key: Word) -> Word {
        match self.entries.get(&key) {
            Some(&v) => v,
            None => self.base.load(key),
        }
    }

    fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        match self.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                slot.insert(value);
                true
            }
            Entry::Vacant(slot) => {
                let is_new = !self.base.contains_key(key);
                if is_new && self.base.entry_count() + self.new_keys >= limits.max_entries {
                    return false;
                }
                slot.insert(value);
                if is_new {
                    self.new_keys += 1;
                }
                true
            }
        }
    }

    fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        if !limits.blob_fits(len) {
            return false;
        }
        self.blob_bytes = self.blob_bytes.saturating_add(len);
        self.blob_count += 1;
        true
    }

    fn unstore_blob(&mut self, len: u64) {
        self.blob_bytes = self.blob_bytes.saturating_sub(len);
        self.blob_count = self.blob_count.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_keys_read_zero() {
        let s = ContractState::new();
        assert_eq!(s.load(42), 0);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let mut s = ContractState::new();
        let lim = StateLimits::unbounded();
        assert!(s.store(1, 10, &lim));
        assert!(s.store(2, -5, &lim));
        assert_eq!(s.load(1), 10);
        assert_eq!(s.load(2), -5);
        assert!(s.store(1, 11, &lim));
        assert_eq!(s.load(1), 11);
        assert_eq!(s.entry_count(), 2);
    }

    #[test]
    fn entry_limit_rejects_new_keys_but_allows_updates() {
        let mut s = ContractState::new();
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 2,
        };
        assert!(s.store(1, 1, &lim));
        assert!(s.store(2, 2, &lim));
        assert!(!s.store(3, 3, &lim));
        assert_eq!(s.load(3), 0);
        // Updating an existing key is still allowed.
        assert!(s.store(2, 20, &lim));
        assert_eq!(s.load(2), 20);
    }

    #[test]
    fn overlay_reads_through_and_shadows() {
        let mut base = ContractState::new();
        let lim = StateLimits::unbounded();
        base.store(1, 10, &lim);
        let mut ov = Overlay::new(&base);
        assert_eq!(StateAccess::load(&ov, 1), 10);
        assert_eq!(StateAccess::load(&ov, 2), 0);
        assert!(ov.store(1, 99, &lim));
        assert_eq!(StateAccess::load(&ov, 1), 99);
        // The base is untouched until the delta is applied.
        assert_eq!(base.load(1), 10);
    }

    #[test]
    fn overlay_apply_matches_direct_execution() {
        let lim = StateLimits::unbounded();
        let mut direct = ContractState::new();
        direct.store(1, 10, &lim);
        let mut via_overlay = direct.clone();

        direct.store(1, 11, &lim);
        direct.store(7, 70, &lim);
        direct.store_blob(64, &lim);

        let mut ov = Overlay::new(&via_overlay);
        ov.store(1, 11, &lim);
        ov.store(7, 70, &lim);
        StateAccess::store_blob(&mut ov, 64, &lim);
        let delta = ov.into_delta();
        via_overlay.apply(delta);

        assert_eq!(direct, via_overlay);
    }

    #[test]
    fn overlay_enforces_entry_limit_against_base() {
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 2,
        };
        let mut base = ContractState::new();
        base.store(1, 1, &lim);
        let mut ov = Overlay::new(&base);
        // One new key fits (base has 1 of 2 slots used)...
        assert!(ov.store(2, 2, &lim));
        // ...a second does not, exactly like the base would reject it.
        assert!(!ov.store(3, 3, &lim));
        // Updating keys that already exist (in base or overlay) is fine.
        assert!(ov.store(1, 100, &lim));
        assert!(ov.store(2, 200, &lim));
    }

    #[test]
    fn blob_limit_enforced() {
        let mut s = ContractState::new();
        let avm = StateLimits {
            max_blob_bytes: 128,
            max_entries: 64,
        };
        assert!(s.store_blob(128, &avm));
        assert!(!s.store_blob(129, &avm));
        assert_eq!(s.blob_bytes(), 128);
        assert_eq!(s.blob_count(), 1);
    }
}
