//! VM execution errors.

use core::fmt;

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The flavor's hard per-transaction compute budget was exhausted.
    ///
    /// This is the "budget exceeded" / "computational budget exceeded"
    /// error of the paper's §6.4 and artifact appendix E2. It cannot be
    /// avoided by paying a larger fee.
    BudgetExceeded {
        /// Units consumed when the budget tripped.
        used: u64,
        /// The hard budget.
        budget: u64,
    },
    /// The gas allowance supplied with the transaction ran out
    /// (recoverable by paying for more gas — distinct from
    /// [`ExecError::BudgetExceeded`]).
    OutOfGas {
        /// Units consumed when the allowance tripped.
        used: u64,
        /// The transaction's allowance.
        limit: u64,
    },
    /// A pop on an empty stack.
    StackUnderflow {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// The stack grew past the interpreter limit.
    StackOverflow {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// Division or modulo by zero.
    DivisionByZero {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// Checked arithmetic overflowed the machine word.
    Overflow {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// A jump target outside the program.
    InvalidJump {
        /// The bad target.
        target: usize,
    },
    /// The program fell off the end without `Halt`.
    MissingTerminator,
    /// A local-register index outside the register file (caught at
    /// deploy time by `validate`; a runtime fault only for programs
    /// executed without deploy-time validation).
    InvalidLocal {
        /// Program counter of the faulting instruction.
        pc: usize,
        /// The out-of-range register index.
        index: u8,
    },
    /// The requested entry point does not exist.
    UnknownEntry {
        /// The requested function name.
        name: String,
    },
    /// A storage write violated the flavor's state limits (e.g. the AVM
    /// 128-byte key-value entries that made the YouTube DApp
    /// unimplementable in TEAL).
    StateLimitExceeded,
    /// The contract executed `Revert` with this application-level code.
    Reverted(u16),
}

impl ExecError {
    /// Whether this failure is the hard, fee-independent kind that makes
    /// a DApp impossible to run on the chain (paper §6.4).
    pub fn is_hard_budget(&self) -> bool {
        matches!(self, ExecError::BudgetExceeded { .. })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExceeded { used, budget } => {
                write!(
                    f,
                    "computational budget exceeded ({used} used, hard budget {budget})"
                )
            }
            ExecError::OutOfGas { used, limit } => {
                write!(f, "out of gas ({used} used, limit {limit})")
            }
            ExecError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            ExecError::StackOverflow { pc } => write!(f, "stack overflow at pc {pc}"),
            ExecError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            ExecError::Overflow { pc } => write!(f, "arithmetic overflow at pc {pc}"),
            ExecError::InvalidJump { target } => write!(f, "invalid jump target {target}"),
            ExecError::MissingTerminator => write!(f, "program ended without halt"),
            ExecError::InvalidLocal { pc, index } => {
                write!(f, "local register {index} out of range at pc {pc}")
            }
            ExecError::UnknownEntry { name } => write!(f, "unknown entry point `{name}`"),
            ExecError::StateLimitExceeded => write!(f, "contract state limit exceeded"),
            ExecError::Reverted(code) => write!(f, "reverted with code {code}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_errors_are_hard() {
        assert!(ExecError::BudgetExceeded {
            used: 701,
            budget: 700
        }
        .is_hard_budget());
        assert!(!ExecError::OutOfGas {
            used: 100,
            limit: 90
        }
        .is_hard_budget());
        assert!(!ExecError::Reverted(1).is_hard_budget());
    }

    #[test]
    fn display_mentions_the_paper_error_string() {
        let e = ExecError::BudgetExceeded {
            used: 701,
            budget: 700,
        };
        assert!(format!("{e}").contains("budget exceeded"));
    }
}
