//! Gas schedules.
//!
//! Each VM flavor charges different unit costs per instruction class.
//! The geth schedule follows the relative weights of the EVM (cheap
//! arithmetic, expensive storage); the AVM schedule is flat (TEAL counts
//! opcodes against its 700-op budget); MoveVM and eBPF sit in between.

use crate::op::Op;

/// Per-instruction-class unit costs for one VM flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasSchedule {
    /// Stack manipulation and trivial ops.
    pub base: u64,
    /// Add/sub/compare/bitwise.
    pub arith: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide/modulo.
    pub div: u64,
    /// Control flow.
    pub jump: u64,
    /// Local register access.
    pub local: u64,
    /// Persistent storage read.
    pub sload: u64,
    /// Persistent storage write.
    pub sstore: u64,
    /// Event emission, flat part.
    pub emit_base: u64,
    /// Event emission, per argument.
    pub emit_per_arg: u64,
    /// Payload storage, per byte.
    pub blob_per_byte: u64,
    /// Flat cost charged on top of execution for any transaction
    /// (the EVM's 21,000 intrinsic gas; zero where the ledger prices
    /// execution separately).
    pub intrinsic: u64,
    /// Cost per byte of call data.
    pub calldata_per_byte: u64,
}

impl GasSchedule {
    /// The go-ethereum (EVM) schedule, used by Avalanche, Ethereum and
    /// Quorum. Relative weights follow the yellow paper: storage writes
    /// cost three orders of magnitude more than arithmetic.
    pub const GETH: GasSchedule = GasSchedule {
        base: 2,
        arith: 3,
        mul: 5,
        div: 5,
        jump: 8,
        local: 3,
        sload: 800,
        sstore: 5000,
        emit_base: 375,
        emit_per_arg: 375,
        blob_per_byte: 20,
        intrinsic: 21_000,
        calldata_per_byte: 16,
    };

    /// The Algorand AVM schedule: every TEAL op counts one unit against
    /// the application-call budget.
    pub const AVM: GasSchedule = GasSchedule {
        base: 1,
        arith: 1,
        mul: 1,
        div: 1,
        jump: 1,
        local: 1,
        sload: 1,
        sstore: 1,
        emit_base: 1,
        emit_per_arg: 1,
        blob_per_byte: 1,
        intrinsic: 0,
        calldata_per_byte: 0,
    };

    /// The Diem MoveVM schedule: metered gas units with storage access
    /// markedly more expensive than computation.
    pub const MOVE_VM: GasSchedule = GasSchedule {
        base: 15,
        arith: 25,
        mul: 30,
        div: 30,
        jump: 25,
        local: 20,
        sload: 800,
        sstore: 2_000,
        emit_base: 500,
        emit_per_arg: 100,
        blob_per_byte: 10,
        intrinsic: 600,
        calldata_per_byte: 4,
    };

    /// The Solana eBPF (SBF) schedule: compute units, one-ish per
    /// instruction with syscalls (storage, logging) costing more.
    pub const EBPF: GasSchedule = GasSchedule {
        base: 1,
        arith: 1,
        mul: 2,
        div: 4,
        jump: 1,
        local: 1,
        sload: 25,
        sstore: 100,
        emit_base: 100,
        emit_per_arg: 10,
        blob_per_byte: 1,
        intrinsic: 0,
        calldata_per_byte: 0,
    };

    /// Execution cost of one instruction (not counting per-transaction
    /// intrinsics, which the ledger charges at admission).
    pub fn cost(&self, op: Op) -> u64 {
        match op {
            Op::Push(_) | Op::Pop | Op::Dup(_) | Op::Swap(_) | Op::Nop => self.base,
            Op::Add
            | Op::Sub
            | Op::Neg
            | Op::Lt
            | Op::Gt
            | Op::Eq
            | Op::IsZero
            | Op::And
            | Op::Or
            | Op::Shl(_)
            | Op::Shr(_) => self.arith,
            Op::Mul => self.mul,
            Op::Div | Op::Mod => self.div,
            Op::Jump(_) | Op::JumpIfZero(_) | Op::JumpIfNotZero(_) => self.jump,
            Op::Load(_) | Op::Store(_) | Op::Arg(_) | Op::Caller => self.local,
            Op::SLoad => self.sload,
            Op::SStore => self.sstore,
            Op::Emit { arity, .. } => self.emit_base + self.emit_per_arg * arity as u64,
            Op::StoreBlob => self.base, // per-byte part charged separately
            Op::Halt | Op::Revert(_) => 0,
        }
    }

    /// Total static cost of a straight-line run of instructions
    /// (saturating). This is the amount a prepared basic block
    /// pre-charges on entry; [`Op::StoreBlob`]'s per-byte part stays
    /// dynamic and is charged at the instruction.
    pub fn block_cost(&self, ops: &[Op]) -> u64 {
        ops.iter()
            .fold(0u64, |acc, &op| acc.saturating_add(self.cost(op)))
    }

    /// Cost of storing `len` payload bytes via [`Op::StoreBlob`].
    pub fn blob_cost(&self, len: u64) -> u64 {
        self.blob_per_byte.saturating_mul(len)
    }

    /// Intrinsic admission cost of a transaction carrying `calldata`
    /// bytes of input.
    pub fn intrinsic_cost(&self, calldata: u64) -> u64 {
        self.intrinsic + self.calldata_per_byte.saturating_mul(calldata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geth_storage_dwarfs_arithmetic() {
        let g = GasSchedule::GETH;
        assert!(g.cost(Op::SStore) > 1000 * g.cost(Op::Add) / 3);
        assert!(g.cost(Op::SLoad) > 100 * g.cost(Op::Add));
    }

    #[test]
    fn avm_is_flat() {
        let a = GasSchedule::AVM;
        for op in [
            Op::Add,
            Op::Mul,
            Op::Div,
            Op::SLoad,
            Op::SStore,
            Op::Jump(0),
        ] {
            assert_eq!(a.cost(op), 1);
        }
        assert_eq!(a.intrinsic_cost(100), 0);
    }

    #[test]
    fn emit_scales_with_arity() {
        let g = GasSchedule::GETH;
        let e0 = g.cost(Op::Emit { tag: 1, arity: 0 });
        let e3 = g.cost(Op::Emit { tag: 1, arity: 3 });
        assert_eq!(e3, e0 + 3 * g.emit_per_arg);
    }

    #[test]
    fn terminators_are_free() {
        for sched in [
            GasSchedule::GETH,
            GasSchedule::AVM,
            GasSchedule::MOVE_VM,
            GasSchedule::EBPF,
        ] {
            assert_eq!(sched.cost(Op::Halt), 0);
            assert_eq!(sched.cost(Op::Revert(1)), 0);
        }
    }

    #[test]
    fn intrinsic_includes_calldata() {
        let g = GasSchedule::GETH;
        assert_eq!(g.intrinsic_cost(0), 21_000);
        assert_eq!(g.intrinsic_cost(10), 21_000 + 160);
    }

    #[test]
    fn block_cost_is_the_sum_of_op_costs() {
        let g = GasSchedule::GETH;
        let ops = [Op::Push(1), Op::Push(2), Op::Add, Op::SStore, Op::Halt];
        let expected: u64 = ops.iter().map(|&op| g.cost(op)).sum();
        assert_eq!(g.block_cost(&ops), expected);
        assert_eq!(g.block_cost(&[]), 0);
    }

    #[test]
    fn blob_cost_scales() {
        let g = GasSchedule::GETH;
        assert_eq!(g.blob_cost(32), 640);
        assert_eq!(GasSchedule::EBPF.blob_cost(1000), 1000);
    }
}
