//! Gas-metered smart-contract virtual machine for the Diablo benchmark
//! suite.
//!
//! The paper runs its five DApps on four different execution engines
//! (Table 4): the go-ethereum EVM (Avalanche, Ethereum, Quorum), the
//! Algorand AVM executing TEAL, the Diem MoveVM, and Solana's eBPF
//! runtime. The decisive behavioural difference between them — the one
//! §6.4 and Figure 5 hinge on — is the *cost model*: geth has no hard
//! per-transaction compute cap (only the block gas limit applies), while
//! AVM, MoveVM and eBPF enforce a hard, non-negotiable per-transaction
//! budget that the computationally intensive Mobility DApp exceeds
//! ("budget exceeded").
//!
//! This crate implements one stack-based bytecode interpreter with four
//! pluggable cost schedules and budgets ([`VmFlavor`]). Contracts are
//! real programs (loops, Newton's integer square root, storage access);
//! gas exhaustion and budget violations arise from actually executing
//! them, not from table lookups.

#![warn(missing_docs)]

pub mod analyze;
pub mod error;
pub mod flavor;
pub mod gas;
pub mod interp;
pub mod lang;
pub mod mv;
pub mod op;
pub mod paged;
pub mod prepared;
pub mod program;
pub mod state;

pub use analyze::{basic_blocks, disassemble, rw_set, validate, RwSet, ValidateError};
pub use error::ExecError;
pub use flavor::VmFlavor;
pub use gas::GasSchedule;
pub use interp::{Interpreter, Receipt, TxContext, MAX_LOCALS, MAX_OPS, MAX_STACK};
pub use mv::{MvMemory, ReadSet, SpeculativeOverlay};
pub use op::Op;
pub use paged::PagedState;
pub use prepared::{prepare, EntryId, PreparedProgram};
pub use program::{Asm, Label, Program};
pub use state::{ContractState, Overlay, OverlayDelta, StateAccess, StateLimits};

/// The machine word: all stack values, storage keys and storage values.
pub type Word = i64;
