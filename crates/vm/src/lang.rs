//! A small structured contract language compiled to VM bytecode.
//!
//! The paper's third contribution discusses how hard it is to write
//! DApps against low-level contract languages ("some of the supported
//! programming languages are too low-level to be written easily without
//! a higher-level programming language", §1). This module provides that
//! higher level for the Diablo VM: an expression/statement AST with
//! `let`, `if`, `while`, storage access and event emission, compiled to
//! the same [`Op`] stream the hand-assembled DApps use — no floating
//! point and no built-in √, exactly like Solidity/PyTeal/Move.
//!
//! ```
//! use diablo_vm::lang::{Compiler, Expr, Stmt};
//! use diablo_vm::{ContractState, Interpreter, TxContext, VmFlavor};
//!
//! // counter: storage[0] += arg0; return storage[0]
//! let program = Compiler::new()
//!     .function(
//!         "add",
//!         vec![
//!             Stmt::StoreState(
//!                 Expr::lit(0),
//!                 Expr::load_state(Expr::lit(0)).add(Expr::arg(0)),
//!             ),
//!             Stmt::Return(Expr::load_state(Expr::lit(0))),
//!         ],
//!     )
//!     .compile();
//! let mut state = ContractState::new();
//! let vm = Interpreter::new(VmFlavor::Geth);
//! let r = vm.execute(&program, "add", &TxContext::simple(1, vec![5]), &mut state).unwrap();
//! assert_eq!(r.ret, Some(5));
//! let r = vm.execute(&program, "add", &TxContext::simple(1, vec![3]), &mut state).unwrap();
//! assert_eq!(r.ret, Some(8));
//! ```

use crate::op::Op;
use crate::program::{Asm, Program};
use crate::Word;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// bitwise and
    And,
    /// bitwise or
    Or,
}

/// An expression, evaluated onto the VM stack.
///
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Word),
    /// A local variable (by register index).
    Local(u8),
    /// A transaction argument.
    Arg(u8),
    /// The calling account.
    Caller,
    /// A storage read: `storage[key]`.
    State(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation of zero/non-zero.
    Not(Box<Expr>),
}

// The builder methods `add`/`sub`/`mul`/`div`/`rem` intentionally
// mirror the operator names: this is an expression language, and the
// operands are owned AST nodes, not numbers.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A literal.
    pub fn lit(v: Word) -> Expr {
        Expr::Lit(v)
    }

    /// A local variable.
    pub fn local(i: u8) -> Expr {
        Expr::Local(i)
    }

    /// A transaction argument.
    pub fn arg(i: u8) -> Expr {
        Expr::Arg(i)
    }

    /// A storage read.
    pub fn load_state(key: Expr) -> Expr {
        Expr::State(Box::new(key))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mod, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local[i] = expr`.
    Assign(u8, Expr),
    /// `storage[key] = value`.
    StoreState(Expr, Expr),
    /// `if cond { then } else { otherwise }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { body }`.
    While(Expr, Vec<Stmt>),
    /// Emit an event with a tag and arguments.
    Emit(u16, Vec<Expr>),
    /// Terminate successfully, returning the expression.
    Return(Expr),
    /// Terminate successfully with no return value.
    Stop,
    /// Abort with an application error code.
    Revert(u16),
}

/// Compiles functions into one [`Program`].
#[derive(Debug, Default)]
pub struct Compiler {
    asm: Asm,
}

impl Compiler {
    /// An empty compiler.
    pub fn new() -> Self {
        Compiler { asm: Asm::new() }
    }

    /// Adds a function (entry point) with a statement body.
    ///
    /// Bodies that can fall off the end get an implicit `Stop`, so the
    /// produced program always passes static validation.
    pub fn function(mut self, name: &str, body: Vec<Stmt>) -> Self {
        self.asm.entry(name);
        let terminated = body.last().is_some_and(Self::stmt_terminates);
        for stmt in body {
            Self::emit_stmt(&mut self.asm, &stmt);
        }
        if !terminated {
            self.asm.op(Op::Halt);
        }
        self
    }

    /// Freezes the compiled program.
    pub fn compile(self) -> Program {
        self.asm.finish()
    }

    /// Whether a statement ends every control path.
    fn stmt_terminates(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Return(_) | Stmt::Stop | Stmt::Revert(_) => true,
            Stmt::If(_, t, e) => {
                t.last().is_some_and(Self::stmt_terminates)
                    && e.last().is_some_and(Self::stmt_terminates)
            }
            _ => false,
        }
    }

    fn emit_expr(asm: &mut Asm, expr: &Expr) {
        match expr {
            Expr::Lit(v) => {
                asm.op(Op::Push(*v));
            }
            Expr::Local(i) => {
                asm.op(Op::Load(*i));
            }
            Expr::Arg(i) => {
                asm.op(Op::Arg(*i));
            }
            Expr::Caller => {
                asm.op(Op::Caller);
            }
            Expr::State(key) => {
                Self::emit_expr(asm, key);
                asm.op(Op::SLoad);
            }
            Expr::Bin(op, lhs, rhs) => {
                Self::emit_expr(asm, lhs);
                Self::emit_expr(asm, rhs);
                asm.op(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Lt => Op::Lt,
                    BinOp::Gt => Op::Gt,
                    BinOp::Eq => Op::Eq,
                    BinOp::And => Op::And,
                    BinOp::Or => Op::Or,
                });
            }
            Expr::Not(inner) => {
                Self::emit_expr(asm, inner);
                asm.op(Op::IsZero);
            }
        }
    }

    fn emit_stmt(asm: &mut Asm, stmt: &Stmt) {
        match stmt {
            Stmt::Assign(i, expr) => {
                Self::emit_expr(asm, expr);
                asm.op(Op::Store(*i));
            }
            Stmt::StoreState(key, value) => {
                Self::emit_expr(asm, key);
                Self::emit_expr(asm, value);
                asm.op(Op::SStore);
            }
            Stmt::If(cond, then_body, else_body) => {
                let else_label = asm.new_label();
                let end_label = asm.new_label();
                Self::emit_expr(asm, cond);
                asm.jump_if_zero(else_label);
                for s in then_body {
                    Self::emit_stmt(asm, s);
                }
                // No jump over the else branch when the then branch
                // already terminated — it would target past the end of
                // a fully terminated function.
                if !then_body.last().is_some_and(Self::stmt_terminates) {
                    asm.jump(end_label);
                }
                asm.bind(else_label);
                for s in else_body {
                    Self::emit_stmt(asm, s);
                }
                asm.bind(end_label);
            }
            Stmt::While(cond, body) => {
                let top = asm.here();
                let done = asm.new_label();
                Self::emit_expr(asm, cond);
                asm.jump_if_zero(done);
                for s in body {
                    Self::emit_stmt(asm, s);
                }
                asm.jump(top);
                asm.bind(done);
            }
            Stmt::Emit(tag, args) => {
                for arg in args {
                    Self::emit_expr(asm, arg);
                }
                asm.op(Op::Emit {
                    tag: *tag,
                    arity: args.len() as u8,
                });
            }
            Stmt::Return(expr) => {
                Self::emit_expr(asm, expr);
                asm.op(Op::Halt);
            }
            Stmt::Stop => {
                asm.op(Op::Halt);
            }
            Stmt::Revert(code) => {
                asm.op(Op::Revert(*code));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::validate;
    use crate::interp::{Interpreter, TxContext};
    use crate::state::ContractState;
    use crate::VmFlavor;

    fn exec(program: &Program, entry: &str, args: Vec<Word>) -> Option<Word> {
        let mut state = ContractState::new();
        Interpreter::new(VmFlavor::Geth)
            .execute(program, entry, &TxContext::simple(1, args), &mut state)
            .expect("executes")
            .ret
    }

    #[test]
    fn arithmetic_compiles() {
        let p = Compiler::new()
            .function(
                "f",
                vec![Stmt::Return(
                    Expr::arg(0).add(Expr::arg(1)).mul(Expr::lit(3)),
                )],
            )
            .compile();
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(exec(&p, "f", vec![2, 5]), Some(21));
    }

    #[test]
    fn while_loop_compiles() {
        // sum = 0; i = arg0; while i > 0 { sum += i; i -= 1 } return sum
        let p = Compiler::new()
            .function(
                "sum",
                vec![
                    Stmt::Assign(0, Expr::lit(0)),
                    Stmt::Assign(1, Expr::arg(0)),
                    Stmt::While(
                        Expr::local(1).gt(Expr::lit(0)),
                        vec![
                            Stmt::Assign(0, Expr::local(0).add(Expr::local(1))),
                            Stmt::Assign(1, Expr::local(1).sub(Expr::lit(1))),
                        ],
                    ),
                    Stmt::Return(Expr::local(0)),
                ],
            )
            .compile();
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(exec(&p, "sum", vec![10]), Some(55));
        assert_eq!(exec(&p, "sum", vec![0]), Some(0));
    }

    #[test]
    fn if_else_compiles() {
        let p = Compiler::new()
            .function(
                "max",
                vec![Stmt::If(
                    Expr::arg(0).gt(Expr::arg(1)),
                    vec![Stmt::Return(Expr::arg(0))],
                    vec![Stmt::Return(Expr::arg(1))],
                )],
            )
            .compile();
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(exec(&p, "max", vec![9, 4]), Some(9));
        assert_eq!(exec(&p, "max", vec![4, 9]), Some(9));
    }

    #[test]
    fn storage_and_events_compile() {
        let p = Compiler::new()
            .function(
                "add",
                vec![
                    Stmt::StoreState(
                        Expr::lit(0),
                        Expr::load_state(Expr::lit(0)).add(Expr::lit(1)),
                    ),
                    Stmt::Emit(30, vec![Expr::load_state(Expr::lit(0))]),
                    Stmt::Stop,
                ],
            )
            .compile();
        let mut state = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        for expected in 1..=5 {
            let r = vm
                .execute(&p, "add", &TxContext::simple(1, vec![]), &mut state)
                .unwrap();
            assert_eq!(r.events, vec![(30, vec![expected])]);
        }
        assert_eq!(state.load(0), 5);
    }

    #[test]
    fn compiled_counter_matches_handwritten_semantics() {
        // The compiled counter behaves exactly like the hand-assembled
        // web-service contract: final value == number of adds.
        let compiled = Compiler::new()
            .function(
                "add",
                vec![
                    Stmt::StoreState(
                        Expr::lit(0),
                        Expr::load_state(Expr::lit(0)).add(Expr::lit(1)),
                    ),
                    Stmt::Stop,
                ],
            )
            .compile();
        let mut state = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        for _ in 0..42 {
            vm.execute(&compiled, "add", &TxContext::simple(1, vec![]), &mut state)
                .unwrap();
        }
        assert_eq!(state.load(0), 42);
    }

    #[test]
    fn revert_and_not_compile() {
        let p = Compiler::new()
            .function(
                "buy",
                vec![Stmt::If(
                    Expr::Not(Box::new(Expr::load_state(Expr::lit(7)))),
                    vec![Stmt::Revert(1)],
                    vec![Stmt::Stop],
                )],
            )
            .compile();
        let mut state = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        let err = vm
            .execute(&p, "buy", &TxContext::simple(1, vec![]), &mut state)
            .unwrap_err();
        assert_eq!(err, crate::ExecError::Reverted(1));
    }

    #[test]
    fn implicit_stop_keeps_programs_valid() {
        let p = Compiler::new()
            .function("noop", vec![Stmt::Assign(0, Expr::lit(1))])
            .function("other", vec![Stmt::Stop])
            .compile();
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(exec(&p, "noop", vec![]), None);
    }
}
