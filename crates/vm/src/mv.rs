//! Multi-version memory for optimistic (Block-STM-style) execution.
//!
//! The static parallel executor in `diablo-chains` only schedules
//! transactions whose storage footprint is known at deploy time; a
//! dynamic footprint (keys computed from arguments, like the gaming
//! DApp's per-player cells) forces it serial. The optimistic executor
//! removes that restriction by *speculating*: every transaction of a
//! block executes against a [`SpeculativeOverlay`] — a copy-on-write
//! view that resolves reads through a frozen [`MvMemory`] of the other
//! transactions' speculative writes — while recording the exact
//! `(key, value)` pairs it observed. A commit-order validation pass then
//! checks each recorded read against the committed state; a transaction
//! whose observed values all match is, by determinism of the
//! interpreter, bit-identical to a serial execution and can commit its
//! buffered delta as-is.
//!
//! The types here are deliberately execution-agnostic: `diablo-vm` owns
//! the view and the read-set capture (both sit under the [`StateAccess`]
//! trait the interpreter executes against), while the scheduling loop —
//! rounds, validation, re-execution — lives in
//! `diablo_chains::optimistic`. `docs/EXECUTION.md` specifies the full
//! protocol and its determinism argument.

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::state::{ContractState, OverlayDelta, StateAccess, StateLimits};
use crate::Word;

/// Multi-version speculative memory: for every storage key, the ordered
/// speculative writes of a block's uncommitted transactions, keyed by
/// `(location, tx_index)`.
///
/// A reader at transaction index `i` resolves a key to the value written
/// by the *highest-indexed writer below `i`*, falling back to the
/// committed base state when no such writer exists — exactly the value a
/// serial execution would observe if every recorded speculation were
/// correct. The structure is immutable during a speculation round (the
/// executor rebuilds it between rounds from the surviving deltas), which
/// is what makes a round's outcome a pure function of `(state, txs)`
/// rather than of the worker schedule.
#[derive(Debug, Default)]
pub struct MvMemory {
    /// key → writes as `(tx_index, value)`, ascending by `tx_index`.
    versions: HashMap<Word, Vec<(u32, Word)>>,
}

impl MvMemory {
    /// An empty view (every read falls through to the committed state).
    pub fn new() -> MvMemory {
        MvMemory::default()
    }

    /// Registers the speculative writes of transaction `tx`.
    ///
    /// Deltas must be inserted in ascending `tx` order so each key's
    /// version list stays sorted (the executor walks its transactions in
    /// canonical order, so this holds for free).
    pub fn insert_delta(&mut self, tx: u32, delta: &OverlayDelta) {
        for (key, value) in delta.entries() {
            let versions = self.versions.entry(key).or_default();
            debug_assert!(versions.last().is_none_or(|&(last, _)| last < tx));
            versions.push((tx, value));
        }
    }

    /// The value the highest-indexed writer *below* `reader` wrote to
    /// `key`, or `None` when no speculative write precedes the reader.
    pub fn read(&self, key: Word, reader: u32) -> Option<Word> {
        let versions = self.versions.get(&key)?;
        let idx = versions.partition_point(|&(tx, _)| tx < reader);
        idx.checked_sub(1).map(|i| versions[i].1)
    }

    /// Number of keys with at least one speculative write.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no speculative writes are registered.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

/// The sorted external read-set one speculative execution observed:
/// every `(key, value)` the transaction loaded from *outside its own
/// writes*, deduplicated by key.
///
/// The interpreter is a deterministic function of its entry point, its
/// transaction context and the values its loads return — so if every
/// recorded value equals what the committed state holds when the
/// transaction's turn comes, the speculation's receipt, gas and writes
/// are bit-identical to a fresh serial execution and need not be
/// repeated. Validation is therefore value-based, not version-based: a
/// different transaction writing the *same* value back does not abort
/// the reader.
pub type ReadSet = Vec<(Word, Word)>;

/// A copy-on-write view for one speculative transaction execution.
///
/// Reads check the transaction's own buffered writes first, then resolve
/// through the frozen [`MvMemory`], then fall back to the committed
/// base; every external read is recorded once into the [`ReadSet`].
/// Writes land in a private buffer and never escape until the executor
/// commits the extracted [`OverlayDelta`].
///
/// The entry-count limit is enforced exactly like [`crate::Overlay`]:
/// against the committed base's entry count plus this view's newly
/// created keys, ignoring other in-flight speculations. That is exact
/// when no lower-indexed transaction is still uncommitted; in every
/// other case the executor distrusts limit-related outcomes and
/// re-executes serially (see `docs/EXECUTION.md`).
#[derive(Debug)]
pub struct SpeculativeOverlay<'a> {
    committed: &'a ContractState,
    mv: &'a MvMemory,
    tx_index: u32,
    writes: HashMap<Word, Word>,
    /// First observed external value per key. Interior-mutable because
    /// [`StateAccess::load`] takes `&self`; the overlay itself is used
    /// by exactly one worker thread.
    reads: RefCell<HashMap<Word, Word>>,
    /// Keys in `writes` absent from the committed base.
    new_keys: usize,
    blob_bytes: u64,
    blob_count: u64,
}

impl<'a> SpeculativeOverlay<'a> {
    /// A fresh view for the transaction at `tx_index`, reading through
    /// `mv` over `committed`.
    pub fn new(committed: &'a ContractState, mv: &'a MvMemory, tx_index: u32) -> Self {
        SpeculativeOverlay {
            committed,
            mv,
            tx_index,
            writes: HashMap::new(),
            reads: RefCell::new(HashMap::new()),
            new_keys: 0,
            blob_bytes: 0,
            blob_count: 0,
        }
    }

    /// Detaches the recorded effects: the external read-set (sorted by
    /// key, for deterministic downstream iteration) and the buffered
    /// write delta.
    pub fn into_parts(self) -> (ReadSet, OverlayDelta) {
        let mut reads: ReadSet = self.reads.into_inner().into_iter().collect();
        reads.sort_unstable_by_key(|&(key, _)| key);
        let delta = OverlayDelta::from_parts(self.writes, self.blob_bytes, self.blob_count);
        (reads, delta)
    }
}

impl StateAccess for SpeculativeOverlay<'_> {
    fn load(&self, key: Word) -> Word {
        if let Some(&own) = self.writes.get(&key) {
            // Reading back an own write observes nothing external: the
            // value is a function of this very execution, so it needs no
            // validation.
            return own;
        }
        let external = self
            .mv
            .read(key, self.tx_index)
            .unwrap_or_else(|| self.committed.load(key));
        self.reads.borrow_mut().entry(key).or_insert(external);
        external
    }

    fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        match self.writes.entry(key) {
            Entry::Occupied(mut slot) => {
                slot.insert(value);
                true
            }
            Entry::Vacant(slot) => {
                let is_new = !self.committed.contains_key(key);
                if is_new && self.committed.entry_count() + self.new_keys >= limits.max_entries {
                    return false;
                }
                slot.insert(value);
                if is_new {
                    self.new_keys += 1;
                }
                true
            }
        }
    }

    fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        // `blob_fits` depends only on the payload length, never on
        // accumulated state, so the speculative outcome always equals
        // the serial one.
        if !limits.blob_fits(len) {
            return false;
        }
        self.blob_bytes = self.blob_bytes.saturating_add(len);
        self.blob_count += 1;
        true
    }

    fn unstore_blob(&mut self, len: u64) {
        self.blob_bytes = self.blob_bytes.saturating_sub(len);
        self.blob_count = self.blob_count.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_of(pairs: &[(Word, Word)]) -> OverlayDelta {
        OverlayDelta::from_parts(pairs.iter().copied().collect(), 0, 0)
    }

    #[test]
    fn mv_reads_resolve_to_highest_writer_below() {
        let mut mv = MvMemory::new();
        mv.insert_delta(1, &delta_of(&[(10, 100)]));
        mv.insert_delta(3, &delta_of(&[(10, 300), (20, 23)]));
        mv.insert_delta(5, &delta_of(&[(10, 500)]));

        // Reader below every writer sees nothing.
        assert_eq!(mv.read(10, 0), None);
        assert_eq!(mv.read(10, 1), None);
        // Readers between writers see the closest one below.
        assert_eq!(mv.read(10, 2), Some(100));
        assert_eq!(mv.read(10, 3), Some(100));
        assert_eq!(mv.read(10, 4), Some(300));
        assert_eq!(mv.read(10, 9), Some(500));
        assert_eq!(mv.read(20, 9), Some(23));
        // Untouched keys fall through.
        assert_eq!(mv.read(99, 9), None);
        assert_eq!(mv.len(), 2);
    }

    #[test]
    fn speculative_overlay_records_external_reads_only() {
        let lim = StateLimits::unbounded();
        let mut committed = ContractState::new();
        committed.store(1, 10, &lim);
        let mut mv = MvMemory::new();
        mv.insert_delta(0, &delta_of(&[(2, 22)]));

        let mut view = SpeculativeOverlay::new(&committed, &mv, 1);
        // Committed read, speculative read, absent-key read.
        assert_eq!(view.load(1), 10);
        assert_eq!(view.load(2), 22);
        assert_eq!(view.load(3), 0);
        // Own write shadows and is not recorded as a read.
        assert!(view.store(4, 44, &lim));
        assert_eq!(view.load(4), 44);
        // A key read before being written records its external value.
        assert!(view.store(1, 11, &lim));
        assert_eq!(view.load(1), 11);

        let (reads, delta) = view.into_parts();
        assert_eq!(reads, vec![(1, 10), (2, 22), (3, 0)]);
        let written: Vec<(Word, Word)> = {
            let mut v: Vec<_> = delta.entries().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(written, vec![(1, 11), (4, 44)]);
    }

    #[test]
    fn speculative_overlay_enforces_entry_limit_against_committed() {
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 2,
        };
        let mut committed = ContractState::new();
        committed.store(1, 1, &lim);
        let mv = MvMemory::new();
        let mut view = SpeculativeOverlay::new(&committed, &mv, 0);
        // One new key fits (committed holds 1 of 2 slots)...
        assert!(view.store(2, 2, &lim));
        // ...a second new key does not, exactly like the base.
        assert!(!view.store(3, 3, &lim));
        // Updates to existing keys are always allowed.
        assert!(view.store(1, 100, &lim));
        assert!(view.store(2, 200, &lim));
    }

    #[test]
    fn mv_values_do_not_count_toward_entry_limit() {
        // The limit basis is the committed state plus own new keys; a
        // speculative write by another transaction neither satisfies
        // `contains_key` nor raises the count. The executor compensates
        // at commit time (see entry-budget check in diablo-chains).
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 1,
        };
        let committed = ContractState::new();
        let mut mv = MvMemory::new();
        mv.insert_delta(0, &delta_of(&[(7, 70)]));
        let mut view = SpeculativeOverlay::new(&committed, &mv, 1);
        assert_eq!(view.load(7), 70);
        // Key 7 exists only speculatively: storing it is a *new* key for
        // this view and takes the single slot.
        assert!(view.store(7, 71, &lim));
        assert!(!view.store(8, 80, &lim));
    }

    #[test]
    fn read_set_captures_value_at_first_observation() {
        let lim = StateLimits::unbounded();
        let mut committed = ContractState::new();
        committed.store(5, 50, &lim);
        let mv = MvMemory::new();
        let mut view = SpeculativeOverlay::new(&committed, &mv, 0);
        assert_eq!(view.load(5), 50);
        assert!(view.store(5, 51, &lim));
        // Later loads see the own write; the read-set keeps the
        // original external observation.
        assert_eq!(view.load(5), 51);
        let (reads, _) = view.into_parts();
        assert_eq!(reads, vec![(5, 50)]);
    }

    #[test]
    fn blob_accounting_is_additive() {
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 64,
        };
        let committed = ContractState::new();
        let mv = MvMemory::new();
        let mut view = SpeculativeOverlay::new(&committed, &mv, 0);
        assert!(view.store_blob(128, &lim));
        assert!(!view.store_blob(129, &lim));
        view.unstore_blob(128);
        let (_, delta) = view.into_parts();
        assert!(delta.is_empty());
    }
}
