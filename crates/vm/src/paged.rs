//! A paged backend behind [`StateAccess`].
//!
//! [`PagedState`] stores word-keyed words in fixed 256-slot pages
//! instead of one flat `HashMap` entry per key: a lookup hashes the
//! *page* index (`key >> 8`), then indexes into a dense slot array. A
//! presence bitmap per page distinguishes a stored 0 from an absent key,
//! exactly like `ContractState`'s map does.
//!
//! This is the storage-table layout `diablo-store`'s persist stage uses
//! for the flat contract-storage mirror: clustered keys (the common DApp
//! pattern — counters, per-caller slots, dense arrays) share pages, so a
//! million entries cost thousands of page allocations rather than a
//! million hashed nodes. Behind the [`StateAccess`] trait it is
//! behaviourally identical to [`crate::ContractState`] — same EVM read-as-zero
//! semantics, same entry-count limit enforcement — which the
//! differential property test in `tests/paged_differential.rs` proves,
//! keeping the serial/static/optimistic executors bit-identical no
//! matter which backend holds the committed state.

use std::collections::HashMap;

use crate::state::{StateAccess, StateLimits};
use crate::Word;

/// Keys per page (64-word presence bitmap × 4).
const PAGE_SLOTS: usize = 256;
/// Bits of the key consumed by the in-page offset.
const PAGE_BITS: u32 = 8;

/// One 256-slot page: dense values plus a presence bitmap.
#[derive(Clone)]
struct Page {
    values: Box<[Word; PAGE_SLOTS]>,
    /// Bit `i` set ⇔ slot `i` holds an explicit entry.
    present: [u64; PAGE_SLOTS / 64],
}

impl Page {
    fn new() -> Page {
        Page {
            values: Box::new([0; PAGE_SLOTS]),
            present: [0; PAGE_SLOTS / 64],
        }
    }

    fn is_present(&self, slot: usize) -> bool {
        self.present[slot / 64] & (1 << (slot % 64)) != 0
    }

    fn mark(&mut self, slot: usize) {
        self.present[slot / 64] |= 1 << (slot % 64);
    }
}

/// Word-keyed word storage over fixed-size pages.
///
/// Implements [`StateAccess`] with the exact semantics of
/// [`ContractState`](crate::ContractState): absent keys read 0, a stored
/// 0 still counts as an entry, and `store` rejects (only) *new* keys
/// once the entry-count limit is reached.
#[derive(Clone, Default)]
pub struct PagedState {
    /// Page index (`key >> 8`, arithmetic shift) → page.
    pages: HashMap<i64, Page>,
    entry_count: usize,
    blob_bytes: u64,
    blob_count: u64,
}

impl PagedState {
    /// Fresh, empty state.
    pub fn new() -> PagedState {
        PagedState::default()
    }

    fn locate(key: Word) -> (i64, usize) {
        (key >> PAGE_BITS, (key & (PAGE_SLOTS as i64 - 1)) as usize)
    }

    /// Reads `key`, returning 0 when absent (EVM semantics).
    pub fn load(&self, key: Word) -> Word {
        let (page, slot) = Self::locate(key);
        match self.pages.get(&page) {
            Some(p) => p.values[slot],
            None => 0,
        }
    }

    /// Whether `key` holds an explicit entry.
    pub fn contains_key(&self, key: Word) -> bool {
        let (page, slot) = Self::locate(key);
        self.pages.get(&page).is_some_and(|p| p.is_present(slot))
    }

    /// Writes `key := value`. Returns `false` (and leaves the state
    /// untouched) when the entry count limit would be exceeded.
    pub fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        let (page, slot) = Self::locate(key);
        let count = self.entry_count;
        let p = self.pages.entry(page).or_insert_with(Page::new);
        if !p.is_present(slot) {
            if count >= limits.max_entries {
                return false;
            }
            p.mark(slot);
            self.entry_count += 1;
        }
        p.values[slot] = value;
        true
    }

    /// Number of explicit entries.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Number of resident pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total opaque payload bytes absorbed.
    pub fn blob_bytes(&self) -> u64 {
        self.blob_bytes
    }

    /// Number of opaque payloads absorbed.
    pub fn blob_count(&self) -> u64 {
        self.blob_count
    }

    /// The `(key, value)` entries sorted by key.
    ///
    /// `(page, slot)` lexicographic order *is* key order (the in-page
    /// offset holds the key's low bits under an arithmetic page shift),
    /// so only the page indices need sorting.
    pub fn sorted_entries(&self) -> Vec<(Word, Word)> {
        let mut page_ids: Vec<i64> = self.pages.keys().copied().collect();
        page_ids.sort_unstable();
        let mut out = Vec::with_capacity(self.entry_count);
        for id in page_ids {
            let p = &self.pages[&id];
            for slot in 0..PAGE_SLOTS {
                if p.is_present(slot) {
                    out.push((id << PAGE_BITS | slot as i64, p.values[slot]));
                }
            }
        }
        out
    }
}

impl StateAccess for PagedState {
    fn load(&self, key: Word) -> Word {
        PagedState::load(self, key)
    }

    fn store(&mut self, key: Word, value: Word, limits: &StateLimits) -> bool {
        PagedState::store(self, key, value, limits)
    }

    fn store_blob(&mut self, len: u64, limits: &StateLimits) -> bool {
        if !limits.blob_fits(len) {
            return false;
        }
        self.blob_bytes = self.blob_bytes.saturating_add(len);
        self.blob_count += 1;
        true
    }

    fn unstore_blob(&mut self, len: u64) {
        self.blob_bytes = self.blob_bytes.saturating_sub(len);
        self.blob_count = self.blob_count.saturating_sub(1);
    }
}

impl std::fmt::Debug for PagedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedState")
            .field("entries", &self.entry_count)
            .field("pages", &self.pages.len())
            .field("blob_bytes", &self.blob_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_keys_read_zero() {
        let s = PagedState::new();
        assert_eq!(s.load(42), 0);
        assert_eq!(s.load(-42), 0);
        assert!(!s.contains_key(0));
    }

    #[test]
    fn store_and_load_roundtrip_across_pages() {
        let mut s = PagedState::new();
        let lim = StateLimits::unbounded();
        for key in [0i64, 1, 255, 256, 1000, -1, -256, -257, i64::MAX >> 1] {
            assert!(s.store(key, key.wrapping_mul(3), &lim));
        }
        for key in [0i64, 1, 255, 256, 1000, -1, -256, -257, i64::MAX >> 1] {
            assert_eq!(s.load(key), key.wrapping_mul(3));
            assert!(s.contains_key(key));
        }
        assert_eq!(s.entry_count(), 9);
    }

    #[test]
    fn stored_zero_is_an_entry() {
        let mut s = PagedState::new();
        let lim = StateLimits::unbounded();
        assert!(s.store(7, 0, &lim));
        assert!(s.contains_key(7));
        assert_eq!(s.entry_count(), 1);
    }

    #[test]
    fn entry_limit_rejects_new_keys_but_allows_updates() {
        let mut s = PagedState::new();
        let lim = StateLimits {
            max_blob_bytes: 128,
            max_entries: 2,
        };
        assert!(s.store(1, 1, &lim));
        assert!(s.store(500, 2, &lim));
        assert!(!s.store(3, 3, &lim));
        assert_eq!(s.load(3), 0);
        assert!(s.store(500, 20, &lim));
        assert_eq!(s.load(500), 20);
    }

    #[test]
    fn sorted_entries_are_key_ordered_including_negatives() {
        let mut s = PagedState::new();
        let lim = StateLimits::unbounded();
        for key in [300i64, -1, 5, -300, 0, 256] {
            s.store(key, key, &lim);
        }
        let entries = s.sorted_entries();
        let keys: Vec<i64> = entries.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![-300, -1, 0, 5, 256, 300]);
        assert!(entries.iter().all(|&(k, v)| k == v));
    }

    #[test]
    fn clustered_keys_share_pages() {
        let mut s = PagedState::new();
        let lim = StateLimits::unbounded();
        for key in 0..1024i64 {
            s.store(key, 1, &lim);
        }
        assert_eq!(s.entry_count(), 1024);
        assert_eq!(s.page_count(), 4);
    }
}
