//! The bytecode interpreter.
//!
//! Executes one transaction against one contract's state, metering every
//! instruction against (a) the transaction's gas allowance and (b) the
//! flavor's hard per-transaction budget. State writes are journaled and
//! rolled back on any failure, so a reverted or failed transaction leaves
//! no trace (other than the fee its chain may charge).

use crate::error::ExecError;
use crate::flavor::VmFlavor;
use crate::op::Op;
use crate::program::Program;
use crate::state::ContractState;
use crate::Word;

/// Maximum operand stack depth (matches the EVM's 1024).
pub const MAX_STACK: usize = 1024;

/// Safety valve against non-terminating programs: no DApp of the suite
/// comes close to this many instructions in one call.
pub const MAX_OPS: u64 = 50_000_000;

/// Size of the local register file addressed by [`Op::Load`] and
/// [`Op::Store`]. Larger indices are rejected at deploy time by
/// [`crate::analyze::validate`] and fault at run time.
pub const MAX_LOCALS: usize = 32;

/// Per-transaction inputs to an execution.
#[derive(Debug, Clone)]
pub struct TxContext {
    /// The calling account id.
    pub caller: Word,
    /// Call arguments (the paper's `invoke_D_Xs` parameters).
    pub args: Vec<Word>,
    /// Size of the opaque payload shipped with the call (the video data
    /// of the YouTube DApp), in bytes.
    pub payload_bytes: u64,
    /// Gas the sender is willing to pay for execution. For flavors with
    /// a hard budget the effective limit is the smaller of the two.
    pub gas_limit: u64,
}

impl TxContext {
    /// A context with generous gas, no payload, the given caller/args.
    pub fn simple(caller: Word, args: Vec<Word>) -> Self {
        TxContext {
            caller,
            args,
            payload_bytes: 0,
            gas_limit: u64::MAX,
        }
    }
}

/// The result of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Gas units consumed by execution (excluding the chain's intrinsic
    /// admission cost).
    pub gas_used: u64,
    /// Number of instructions executed (the CPU-time proxy used by the
    /// machine model in `diablo-chains`).
    pub ops_executed: u64,
    /// Events emitted, in order: `(tag, arguments)`.
    pub events: Vec<(u16, Vec<Word>)>,
    /// Return value (top of stack at `Halt`), if any.
    pub ret: Option<Word>,
}

/// A journaled undo record for one storage write.
pub(crate) enum Undo {
    /// Key previously held this value.
    Entry(Word, Word),
    /// A blob of this many bytes was recorded.
    Blob(u64),
}

/// Rolls a journal back against `state`, newest write first. Shared by
/// [`Interpreter::execute`] and the prepared fast path.
pub(crate) fn rollback<S: crate::state::StateAccess>(journal: Vec<Undo>, state: &mut S) {
    for undo in journal.into_iter().rev() {
        match undo {
            Undo::Entry(key, old) => {
                let ok = state.store(key, old, &crate::state::StateLimits::unbounded());
                debug_assert!(ok, "rollback writes cannot exceed limits");
            }
            Undo::Blob(len) => state.unstore_blob(len),
        }
    }
}

/// The interpreter for one VM flavor.
#[derive(Debug, Clone, Copy)]
pub struct Interpreter {
    flavor: VmFlavor,
}

impl Interpreter {
    /// An interpreter for the given flavor.
    pub fn new(flavor: VmFlavor) -> Self {
        Interpreter { flavor }
    }

    /// The flavor this interpreter meters against.
    pub fn flavor(&self) -> VmFlavor {
        self.flavor
    }

    /// Executes `entry` of `program` under `ctx` against `state`.
    ///
    /// On any error the state is rolled back to its pre-call contents.
    pub fn execute(
        &self,
        program: &Program,
        entry: &str,
        ctx: &TxContext,
        state: &mut ContractState,
    ) -> Result<Receipt, ExecError> {
        let Some(mut pc) = program.entry(entry) else {
            return Err(ExecError::UnknownEntry {
                name: entry.to_string(),
            });
        };
        let schedule = self.flavor.schedule();
        let limits = self.flavor.state_limits();
        let budget = self.flavor.per_tx_budget();

        let mut stack: Vec<Word> = Vec::with_capacity(32);
        let mut locals = [0 as Word; MAX_LOCALS];
        let mut gas: u64 = 0;
        let mut ops: u64 = 0;
        let mut events: Vec<(u16, Vec<Word>)> = Vec::new();
        let mut journal: Vec<Undo> = Vec::new();

        let result = loop {
            let Some(op) = program.op(pc) else {
                break Err(ExecError::MissingTerminator);
            };
            ops += 1;
            if ops > MAX_OPS {
                break Err(ExecError::OutOfGas {
                    used: gas,
                    limit: ctx.gas_limit,
                });
            }
            gas = gas.saturating_add(schedule.cost(op));
            if let Some(b) = budget {
                if gas > b {
                    break Err(ExecError::BudgetExceeded {
                        used: gas,
                        budget: b,
                    });
                }
            }
            if gas > ctx.gas_limit {
                break Err(ExecError::OutOfGas {
                    used: gas,
                    limit: ctx.gas_limit,
                });
            }

            macro_rules! pop {
                () => {
                    match stack.pop() {
                        Some(v) => v,
                        None => break Err(ExecError::StackUnderflow { pc }),
                    }
                };
            }
            macro_rules! push {
                ($v:expr) => {{
                    if stack.len() >= MAX_STACK {
                        break Err(ExecError::StackOverflow { pc });
                    }
                    stack.push($v);
                }};
            }
            macro_rules! binop {
                ($f:expr) => {{
                    let b = pop!();
                    let a = pop!();
                    match $f(a, b) {
                        Some(v) => push!(v),
                        None => break Err(ExecError::Overflow { pc }),
                    }
                }};
            }

            let mut next_pc = pc + 1;
            match op {
                Op::Push(v) => push!(v),
                Op::Pop => {
                    let _ = pop!();
                }
                Op::Dup(n) => {
                    let idx = stack.len().checked_sub(1 + n as usize);
                    match idx {
                        Some(i) => {
                            let v = stack[i];
                            push!(v);
                        }
                        None => break Err(ExecError::StackUnderflow { pc }),
                    }
                }
                Op::Swap(n) => {
                    let top = stack.len().checked_sub(1);
                    let other = stack.len().checked_sub(2 + n as usize);
                    match (top, other) {
                        (Some(t), Some(o)) => stack.swap(t, o),
                        _ => break Err(ExecError::StackUnderflow { pc }),
                    }
                }
                Op::Add => binop!(|a: Word, b: Word| a.checked_add(b)),
                Op::Sub => binop!(|a: Word, b: Word| a.checked_sub(b)),
                Op::Mul => binop!(|a: Word, b: Word| a.checked_mul(b)),
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        break Err(ExecError::DivisionByZero { pc });
                    }
                    match a.checked_div(b) {
                        Some(v) => push!(v),
                        None => break Err(ExecError::Overflow { pc }),
                    }
                }
                Op::Mod => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        break Err(ExecError::DivisionByZero { pc });
                    }
                    match a.checked_rem(b) {
                        Some(v) => push!(v),
                        None => break Err(ExecError::Overflow { pc }),
                    }
                }
                Op::Neg => {
                    let a = pop!();
                    match a.checked_neg() {
                        Some(v) => push!(v),
                        None => break Err(ExecError::Overflow { pc }),
                    }
                }
                Op::Lt => binop!(|a: Word, b: Word| Some((a < b) as Word)),
                Op::Gt => binop!(|a: Word, b: Word| Some((a > b) as Word)),
                Op::Eq => binop!(|a: Word, b: Word| Some((a == b) as Word)),
                Op::IsZero => {
                    let a = pop!();
                    push!((a == 0) as Word);
                }
                Op::And => binop!(|a: Word, b: Word| Some(a & b)),
                Op::Or => binop!(|a: Word, b: Word| Some(a | b)),
                Op::Shl(n) => {
                    let a = pop!();
                    push!(a.wrapping_shl(n as u32));
                }
                Op::Shr(n) => {
                    let a = pop!();
                    push!(a.wrapping_shr(n as u32));
                }
                Op::Jump(t) => {
                    if t >= program.len() {
                        break Err(ExecError::InvalidJump { target: t });
                    }
                    next_pc = t;
                }
                Op::JumpIfZero(t) => {
                    if t >= program.len() {
                        break Err(ExecError::InvalidJump { target: t });
                    }
                    let c = pop!();
                    if c == 0 {
                        next_pc = t;
                    }
                }
                Op::JumpIfNotZero(t) => {
                    if t >= program.len() {
                        break Err(ExecError::InvalidJump { target: t });
                    }
                    let c = pop!();
                    if c != 0 {
                        next_pc = t;
                    }
                }
                Op::Load(i) => match locals.get(i as usize) {
                    Some(&v) => push!(v),
                    None => break Err(ExecError::InvalidLocal { pc, index: i }),
                },
                Op::Store(i) => {
                    let v = pop!();
                    match locals.get_mut(i as usize) {
                        Some(slot) => *slot = v,
                        None => break Err(ExecError::InvalidLocal { pc, index: i }),
                    }
                }
                Op::SLoad => {
                    let key = pop!();
                    push!(state.load(key));
                }
                Op::SStore => {
                    let value = pop!();
                    let key = pop!();
                    journal.push(Undo::Entry(key, state.load(key)));
                    if !state.store(key, value, &limits) {
                        journal.pop();
                        break Err(ExecError::StateLimitExceeded);
                    }
                }
                Op::Arg(i) => push!(ctx.args.get(i as usize).copied().unwrap_or(0)),
                Op::Caller => push!(ctx.caller),
                Op::Emit { tag, arity } => {
                    if stack.len() < arity as usize {
                        break Err(ExecError::StackUnderflow { pc });
                    }
                    let args = stack.split_off(stack.len() - arity as usize);
                    events.push((tag, args));
                }
                Op::StoreBlob => {
                    let len = pop!();
                    let len = len.max(0) as u64;
                    gas = gas.saturating_add(schedule.blob_cost(len));
                    if let Some(b) = budget {
                        if gas > b {
                            break Err(ExecError::BudgetExceeded {
                                used: gas,
                                budget: b,
                            });
                        }
                    }
                    if gas > ctx.gas_limit {
                        break Err(ExecError::OutOfGas {
                            used: gas,
                            limit: ctx.gas_limit,
                        });
                    }
                    if !state.store_blob(len, &limits) {
                        break Err(ExecError::StateLimitExceeded);
                    }
                    journal.push(Undo::Blob(len));
                }
                Op::Halt => {
                    break Ok(Receipt {
                        gas_used: gas,
                        ops_executed: ops,
                        events,
                        ret: stack.pop(),
                    });
                }
                Op::Revert(code) => break Err(ExecError::Reverted(code)),
                Op::Nop => {}
            }
            pc = next_pc;
        };

        if result.is_err() {
            rollback(journal, state);
        }
        diablo_telemetry::counter!("vm.metered.calls");
        if let Ok(receipt) = &result {
            diablo_telemetry::record!("vm.metered.gas_per_call", receipt.gas_used);
        }
        result
    }

    /// Executes against a scratch copy of `state` and reports the cost,
    /// without mutating anything. Used by chain adapters to classify a
    /// DApp as runnable or "budget exceeded" before an experiment.
    pub fn dry_run(
        &self,
        program: &Program,
        entry: &str,
        ctx: &TxContext,
        state: &ContractState,
    ) -> Result<Receipt, ExecError> {
        let mut scratch = state.clone();
        self.execute(program, entry, ctx, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;

    fn run(flavor: VmFlavor, build: impl FnOnce(&mut Asm)) -> Result<Receipt, ExecError> {
        let mut asm = Asm::new();
        asm.entry("main");
        build(&mut asm);
        let program = asm.finish();
        let mut state = ContractState::new();
        Interpreter::new(flavor).execute(
            &program,
            "main",
            &TxContext::simple(7, vec![10, 20]),
            &mut state,
        )
    }

    #[test]
    fn arithmetic_and_return() {
        let r = run(VmFlavor::Geth, |a| {
            a.ops(&[
                Op::Push(2),
                Op::Push(3),
                Op::Add,
                Op::Push(4),
                Op::Mul,
                Op::Halt,
            ]);
        })
        .unwrap();
        assert_eq!(r.ret, Some(20));
        assert!(r.gas_used > 0);
        assert_eq!(r.ops_executed, 6);
    }

    #[test]
    fn args_and_caller() {
        let r = run(VmFlavor::Geth, |a| {
            a.ops(&[
                Op::Arg(0),
                Op::Arg(1),
                Op::Add,
                Op::Caller,
                Op::Add,
                Op::Halt,
            ]);
        })
        .unwrap();
        assert_eq!(r.ret, Some(37)); // 10 + 20 + 7
    }

    #[test]
    fn missing_arg_reads_zero() {
        let r = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Arg(9), Op::Halt]);
        })
        .unwrap();
        assert_eq!(r.ret, Some(0));
    }

    #[test]
    fn loops_terminate() {
        // Sum 1..=5 with a loop.
        let r = run(VmFlavor::Geth, |a| {
            a.op(Op::Push(5)).op(Op::Store(0)); // i = 5
            a.op(Op::Push(0)).op(Op::Store(1)); // acc = 0
            let top = a.here();
            let done = a.new_label();
            a.op(Op::Load(0));
            a.jump_if_zero(done);
            a.op(Op::Load(1))
                .op(Op::Load(0))
                .op(Op::Add)
                .op(Op::Store(1));
            a.op(Op::Load(0))
                .op(Op::Push(1))
                .op(Op::Sub)
                .op(Op::Store(0));
            a.jump(top);
            a.bind(done);
            a.op(Op::Load(1)).op(Op::Halt);
        })
        .unwrap();
        assert_eq!(r.ret, Some(15));
    }

    #[test]
    fn storage_roundtrip_and_events() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[
            Op::Push(100),
            Op::Push(42),
            Op::SStore, // [100] = 42
            Op::Push(100),
            Op::SLoad,
            Op::Emit { tag: 9, arity: 1 },
            Op::Halt,
        ]);
        let program = asm.finish();
        let mut state = ContractState::new();
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(&program, "main", &TxContext::simple(1, vec![]), &mut state)
            .unwrap();
        assert_eq!(state.load(100), 42);
        assert_eq!(r.events, vec![(9, vec![42])]);
    }

    #[test]
    fn revert_rolls_back_storage() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(5), Op::Push(1), Op::SStore, Op::Revert(3)]);
        let program = asm.finish();
        let mut state = ContractState::new();
        state.store(5, 77, &StateLimits::unbounded());
        let err = Interpreter::new(VmFlavor::Geth)
            .execute(&program, "main", &TxContext::simple(1, vec![]), &mut state)
            .unwrap_err();
        assert_eq!(err, ExecError::Reverted(3));
        assert_eq!(state.load(5), 77, "revert must restore the old value");
    }

    use crate::state::StateLimits;

    #[test]
    fn avm_budget_trips_on_long_loops() {
        // A 1000-iteration loop exceeds the 700-op AVM budget but runs
        // fine on geth.
        let build = |a: &mut Asm| {
            a.op(Op::Push(1000)).op(Op::Store(0));
            let top = a.here();
            let done = a.new_label();
            a.op(Op::Load(0));
            a.jump_if_zero(done);
            a.op(Op::Load(0))
                .op(Op::Push(1))
                .op(Op::Sub)
                .op(Op::Store(0));
            a.jump(top);
            a.bind(done);
            a.op(Op::Halt);
        };
        let err = run(VmFlavor::Avm, build).unwrap_err();
        assert!(err.is_hard_budget(), "got {err}");
        assert!(run(VmFlavor::Geth, build).is_ok());
    }

    #[test]
    fn gas_limit_trips_out_of_gas() {
        let mut asm = Asm::new();
        asm.entry("main");
        for _ in 0..100 {
            asm.op(Op::Push(1)).op(Op::Pop);
        }
        asm.op(Op::Halt);
        let program = asm.finish();
        let mut state = ContractState::new();
        let ctx = TxContext {
            caller: 1,
            args: vec![],
            payload_bytes: 0,
            gas_limit: 50,
        };
        let err = Interpreter::new(VmFlavor::Geth)
            .execute(&program, "main", &ctx, &mut state)
            .unwrap_err();
        assert!(matches!(err, ExecError::OutOfGas { .. }), "got {err}");
    }

    #[test]
    fn division_by_zero_faults() {
        let err = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Push(1), Op::Push(0), Op::Div, Op::Halt]);
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::DivisionByZero { .. }));
    }

    #[test]
    fn stack_underflow_faults() {
        let err = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Add, Op::Halt]);
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::StackUnderflow { .. }));
    }

    #[test]
    fn overflow_faults() {
        let err = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Push(Word::MAX), Op::Push(1), Op::Add, Op::Halt]);
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::Overflow { .. }));
    }

    #[test]
    fn out_of_range_locals_fault_instead_of_wrapping() {
        // Register 40 is outside the 32-register file; historically this
        // wrapped to register 8 and silently hid the contract bug.
        let err = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Load(40), Op::Halt]);
        })
        .unwrap_err();
        assert_eq!(err, ExecError::InvalidLocal { pc: 0, index: 40 });
        let err = run(VmFlavor::Geth, |a| {
            a.ops(&[Op::Push(1), Op::Store(255), Op::Halt]);
        })
        .unwrap_err();
        assert_eq!(err, ExecError::InvalidLocal { pc: 1, index: 255 });
        // The highest valid register still works.
        let r = run(VmFlavor::Geth, |a| {
            a.ops(&[
                Op::Push(9),
                Op::Store(MAX_LOCALS as u8 - 1),
                Op::Load(MAX_LOCALS as u8 - 1),
                Op::Halt,
            ]);
        })
        .unwrap();
        assert_eq!(r.ret, Some(9));
    }

    #[test]
    fn unknown_entry_is_reported() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Halt);
        let program = asm.finish();
        let mut state = ContractState::new();
        let err = Interpreter::new(VmFlavor::Geth)
            .execute(&program, "nope", &TxContext::simple(1, vec![]), &mut state)
            .unwrap_err();
        assert!(matches!(err, ExecError::UnknownEntry { .. }));
    }

    #[test]
    fn blob_respects_avm_state_limit() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(1024), Op::StoreBlob, Op::Halt]);
        let program = asm.finish();
        let mut state = ContractState::new();
        let err = Interpreter::new(VmFlavor::Avm)
            .execute(&program, "main", &TxContext::simple(1, vec![]), &mut state)
            .unwrap_err();
        // 1024 ops of blob cost also exceed the 700 budget, but the
        // budget check fires first — either way it is a hard failure.
        assert!(
            matches!(
                err,
                ExecError::StateLimitExceeded | ExecError::BudgetExceeded { .. }
            ),
            "got {err}"
        );
        assert_eq!(state.blob_bytes(), 0);
    }

    #[test]
    fn blob_succeeds_on_geth() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(1024), Op::StoreBlob, Op::Halt]);
        let program = asm.finish();
        let mut state = ContractState::new();
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(&program, "main", &TxContext::simple(1, vec![]), &mut state)
            .unwrap();
        assert_eq!(state.blob_bytes(), 1024);
        assert!(r.gas_used >= GasScheduleBlob::blob(1024));
    }

    /// Helper for the expected blob cost in the test above.
    struct GasScheduleBlob;
    impl GasScheduleBlob {
        fn blob(len: u64) -> u64 {
            crate::gas::GasSchedule::GETH.blob_cost(len)
        }
    }

    #[test]
    fn dry_run_does_not_mutate() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(1), Op::Push(99), Op::SStore, Op::Halt]);
        let program = asm.finish();
        let state = ContractState::new();
        let r = Interpreter::new(VmFlavor::Geth)
            .dry_run(&program, "main", &TxContext::simple(1, vec![]), &state)
            .unwrap();
        assert!(r.gas_used > 0);
        assert_eq!(state.load(1), 0);
    }
}
