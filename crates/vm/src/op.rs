//! The instruction set of the Diablo contract VM.
//!
//! A small stack machine, rich enough to express the paper's five DApps:
//! arithmetic (including the building blocks of Newton's integer square
//! root), control flow for loops, function-local registers, persistent
//! key-value storage, event emission and opaque payload storage (for the
//! video-sharing DApp's upload data).

use crate::Word;

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push an immediate value.
    Push(Word),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the value `n` slots below the top (0 = top).
    Dup(u8),
    /// Swap the top with the value `n + 1` slots below it.
    Swap(u8),

    /// `a + b` (checked).
    Add,
    /// `a - b` (checked).
    Sub,
    /// `a * b` (checked).
    Mul,
    /// `a / b` (checked, errors on division by zero).
    Div,
    /// `a % b` (checked, errors on division by zero).
    Mod,
    /// Arithmetic negation.
    Neg,

    /// `1` if `a < b`, else `0`.
    Lt,
    /// `1` if `a > b`, else `0`.
    Gt,
    /// `1` if `a == b`, else `0`.
    Eq,
    /// `1` if `a == 0`, else `0`.
    IsZero,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Logical shift left by immediate.
    Shl(u8),
    /// Arithmetic shift right by immediate.
    Shr(u8),

    /// Unconditional jump to instruction index.
    Jump(usize),
    /// Jump if the popped value is zero.
    JumpIfZero(usize),
    /// Jump if the popped value is non-zero.
    JumpIfNotZero(usize),

    /// Push local register `i`.
    Load(u8),
    /// Pop into local register `i`.
    Store(u8),

    /// Pop a key, push the stored value (0 if absent).
    SLoad,
    /// Pop a value, pop a key, write `key := value`.
    SStore,

    /// Push transaction argument `i` (0 if absent).
    Arg(u8),
    /// Push the caller's account id.
    Caller,

    /// Emit an event with tag `tag`, popping `arity` arguments.
    Emit {
        /// Application-defined event tag.
        tag: u16,
        /// Number of stack arguments attached.
        arity: u8,
    },
    /// Pop a byte length; record storing that many payload bytes.
    ///
    /// Models the video-sharing DApp assigning uploaded data to the
    /// requester. Subject to per-flavor state limits (the AVM key-value
    /// store caps entries at 128 bytes, which is why the paper could not
    /// implement the YouTube DApp in TEAL).
    StoreBlob,

    /// Successful termination; the top of stack (if any) is the return
    /// value.
    Halt,
    /// Abort with a user-level revert code (e.g. "out of stock").
    Revert(u16),
    /// No operation (padding; still charged base cost).
    Nop,
}

impl Op {
    /// Whether this opcode terminates execution.
    pub fn is_terminator(self) -> bool {
        matches!(self, Op::Halt | Op::Revert(_))
    }

    /// A short mnemonic for disassembly and error messages.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Push(_) => "push",
            Op::Pop => "pop",
            Op::Dup(_) => "dup",
            Op::Swap(_) => "swap",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Mod => "mod",
            Op::Neg => "neg",
            Op::Lt => "lt",
            Op::Gt => "gt",
            Op::Eq => "eq",
            Op::IsZero => "iszero",
            Op::And => "and",
            Op::Or => "or",
            Op::Shl(_) => "shl",
            Op::Shr(_) => "shr",
            Op::Jump(_) => "jump",
            Op::JumpIfZero(_) => "jz",
            Op::JumpIfNotZero(_) => "jnz",
            Op::Load(_) => "load",
            Op::Store(_) => "store",
            Op::SLoad => "sload",
            Op::SStore => "sstore",
            Op::Arg(_) => "arg",
            Op::Caller => "caller",
            Op::Emit { .. } => "emit",
            Op::StoreBlob => "storeblob",
            Op::Halt => "halt",
            Op::Revert(_) => "revert",
            Op::Nop => "nop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Op::Halt.is_terminator());
        assert!(Op::Revert(3).is_terminator());
        assert!(!Op::Add.is_terminator());
        assert!(!Op::Jump(0).is_terminator());
    }

    #[test]
    fn mnemonics_are_distinctive() {
        assert_eq!(Op::Push(7).mnemonic(), "push");
        assert_eq!(Op::SStore.mnemonic(), "sstore");
        assert_eq!(Op::Emit { tag: 1, arity: 2 }.mnemonic(), "emit");
    }
}
