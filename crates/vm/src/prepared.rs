//! Prepared-program execution: deploy-time lowering for a checked-once
//! interpreter fast path.
//!
//! Contracts are deployed once and executed millions of times per
//! experiment (a single Mobility call is ~1.4 M instructions), so the
//! per-instruction overhead of [`Interpreter::execute`] — an `Option`
//! bounds check per fetch, a [`GasSchedule::cost`] match per op, and two
//! budget/limit comparisons per op — bounds how large an experiment the
//! suite can simulate. Everything that overhead re-checks is already
//! proven safe by [`validate`] at deploy time.
//!
//! [`prepare`] lowers a validated [`Program`] into a [`PreparedProgram`]:
//!
//! - **jump targets are verified once** and rewritten to basic-block
//!   indices, so execution never range-checks a target again;
//! - **basic blocks are discovered** ([`crate::analyze::basic_blocks`])
//!   and each block's static gas is folded into a per-block sum, so gas
//!   and the flavor's hard budget are charged and checked **once per
//!   block** instead of once per instruction;
//! - **entry points are interned** to dense [`EntryId`]s resolved by
//!   binary search over sorted names — no string hashing on the call
//!   path.
//!
//! # Pre-charging semantics
//!
//! Conceptually, pre-charging moves the gas charge of every instruction
//! in a block to the block's entry. That could move an `OutOfGas` /
//! `BudgetExceeded` fault earlier within the block (and report a larger
//! `used`), so the fast path refuses to pre-charge any block whose full
//! static cost could trip a meter: such a block is executed with
//! per-instruction metering identical to [`Interpreter::execute`]. The
//! observable behaviour is therefore **exactly** the unprepared one —
//! same [`Receipt`], same [`ExecError`] with the same fields, same state
//! effects — which the differential property test in
//! `tests/vm_prepared_differential.rs` asserts across all four flavors.
//! The metered fallback runs at most for the final blocks of an
//! exhausted execution, so the fast path covers essentially the whole
//! run. [`Op::StoreBlob`] terminates a block because its per-byte cost
//! is dynamic: ending the block there makes the pre-charged prefix equal
//! the unprepared cumulative gas at the blob-store, so the dynamic meter
//! check observes identical values on both paths.

use crate::analyze::{basic_blocks, rw_set, validate, RwSet, ValidateError};
use crate::error::ExecError;
use crate::flavor::VmFlavor;
use crate::gas::GasSchedule;
use crate::interp::{rollback, Interpreter, Receipt, TxContext, Undo};
use crate::interp::{MAX_LOCALS, MAX_OPS, MAX_STACK};
use crate::op::Op;
use crate::program::Program;
use crate::state::{ContractState, StateAccess, StateLimits};
use crate::Word;

/// A dense handle for one entry point of one [`PreparedProgram`],
/// resolved once via [`PreparedProgram::entry_id`] and valid only for
/// the program that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(u32);

impl EntryId {
    /// The dense index of this entry (0-based, in sorted-name order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One basic block of a prepared program: a maximal straight-line run
/// of instructions entered only at its first instruction.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Index of the first instruction.
    start: u32,
    /// One past the last instruction.
    end: u32,
    /// Saturating sum of the static gas cost of every instruction in
    /// the block (excluding `StoreBlob`'s dynamic per-byte part).
    static_gas: u64,
}

impl Block {
    fn len(self) -> u64 {
        (self.end - self.start) as u64
    }
}

/// A validated program lowered for one VM flavor, ready for
/// [`Interpreter::execute_prepared`].
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    flavor: VmFlavor,
    /// The instruction stream with every jump operand rewritten from a
    /// program counter to the index of its target basic block.
    code: Vec<Op>,
    blocks: Vec<Block>,
    /// `(name, start block)` pairs, sorted by name; an [`EntryId`] is an
    /// index into this table.
    entries: Vec<(String, u32)>,
    /// Per-entry storage footprint, parallel to `entries` — the static
    /// read/write sets feeding the parallel executor's scheduling.
    rw_sets: Vec<RwSet>,
}

/// Lowers a program for `flavor`. Fails with the same
/// [`ValidateError`]s as [`validate`] — preparation only accepts
/// programs that deploy-time validation accepts.
pub fn prepare(program: &Program, flavor: VmFlavor) -> Result<PreparedProgram, ValidateError> {
    validate(program)?;
    let schedule = flavor.schedule();
    let leaders = basic_blocks(program);
    let n = program.len();
    // Leader pc -> block index, for rewriting jump targets. Every jump
    // target is a leader by construction.
    let mut block_of_pc = vec![u32::MAX; n];
    let mut blocks = Vec::with_capacity(leaders.len());
    for (i, &start) in leaders.iter().enumerate() {
        let end = leaders.get(i + 1).copied().unwrap_or(n);
        block_of_pc[start] = i as u32;
        blocks.push(Block {
            start: start as u32,
            end: end as u32,
            static_gas: schedule.block_cost(&program.ops()[start..end]),
        });
    }
    let code = program
        .ops()
        .iter()
        .map(|&op| match op {
            Op::Jump(t) => Op::Jump(block_of_pc[t] as usize),
            Op::JumpIfZero(t) => Op::JumpIfZero(block_of_pc[t] as usize),
            Op::JumpIfNotZero(t) => Op::JumpIfNotZero(block_of_pc[t] as usize),
            other => other,
        })
        .collect();
    let entries: Vec<(String, u32)> = program
        .entries_sorted()
        .into_iter()
        .map(|(name, pc)| (name.to_string(), block_of_pc[pc]))
        .collect();
    let rw_sets = entries
        .iter()
        .map(|(name, _)| rw_set(program, name).expect("entry exists: validated above"))
        .collect();
    Ok(PreparedProgram {
        flavor,
        code,
        blocks,
        entries,
        rw_sets,
    })
}

impl PreparedProgram {
    /// The flavor whose gas schedule is folded into the blocks.
    pub fn flavor(&self) -> VmFlavor {
        self.flavor
    }

    /// Program length in instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of basic blocks discovered.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Resolves an entry-point name to its dense id (binary search over
    /// sorted names — no hashing).
    pub fn entry_id(&self, name: &str) -> Option<EntryId> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| EntryId(i as u32))
    }

    /// Iterates the entry point names in [`EntryId`] order.
    pub fn entry_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of entry points ([`EntryId::index`] values are `0..len`).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The storage footprint of `entry`, computed at prepare time.
    ///
    /// # Panics
    ///
    /// Panics if `entry` came from a different program (an [`EntryId`]
    /// is only valid for the program whose `entry_id` produced it).
    pub fn rw_set(&self, entry: EntryId) -> &RwSet {
        &self.rw_sets[entry.index()]
    }
}

/// What happens after a basic block finishes.
enum Next {
    /// Continue at this block (a taken jump).
    Goto(usize),
    /// Continue at the next block in program order.
    FallThrough,
    /// `Halt` executed; carries the return value.
    Done(Option<Word>),
}

/// Per-execution mutable state shared by the fast and metered paths.
struct Frame<'a> {
    stack: Vec<Word>,
    locals: [Word; MAX_LOCALS],
    gas: u64,
    ops: u64,
    events: Vec<(u16, Vec<Word>)>,
    journal: Vec<Undo>,
    ctx: &'a TxContext,
    schedule: GasSchedule,
    limits: StateLimits,
    budget: Option<u64>,
}

impl Frame<'_> {
    /// The budget and allowance checks of the unprepared interpreter, in
    /// the same order (hard budget first).
    #[inline]
    fn check_meters(&self) -> Result<(), ExecError> {
        if let Some(b) = self.budget {
            if self.gas > b {
                return Err(ExecError::BudgetExceeded {
                    used: self.gas,
                    budget: b,
                });
            }
        }
        if self.gas > self.ctx.gas_limit {
            return Err(ExecError::OutOfGas {
                used: self.gas,
                limit: self.ctx.gas_limit,
            });
        }
        Ok(())
    }
}

/// Executes one basic block. With `METERED == false` the caller has
/// already pre-charged the block's static gas and instruction count and
/// proven that no meter can trip; with `METERED == true` every
/// instruction is charged and checked exactly like
/// [`Interpreter::execute`] does, so meter faults surface at the same
/// instruction with the same fields.
#[inline(always)]
fn run_block<const METERED: bool, S: StateAccess>(
    f: &mut Frame<'_>,
    code: &[Op],
    block_start: usize,
    state: &mut S,
) -> Result<Next, ExecError> {
    for (off, &op) in code.iter().enumerate() {
        let pc = block_start + off;
        if METERED {
            f.ops += 1;
            if f.ops > MAX_OPS {
                return Err(ExecError::OutOfGas {
                    used: f.gas,
                    limit: f.ctx.gas_limit,
                });
            }
            f.gas = f.gas.saturating_add(f.schedule.cost(op));
            f.check_meters()?;
        }

        macro_rules! pop {
            () => {
                match f.stack.pop() {
                    Some(v) => v,
                    None => return Err(ExecError::StackUnderflow { pc }),
                }
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if f.stack.len() >= MAX_STACK {
                    return Err(ExecError::StackOverflow { pc });
                }
                f.stack.push($v);
            }};
        }
        macro_rules! binop {
            ($op:expr) => {{
                let b = pop!();
                let a = pop!();
                match $op(a, b) {
                    Some(v) => push!(v),
                    None => return Err(ExecError::Overflow { pc }),
                }
            }};
        }

        match op {
            Op::Push(v) => push!(v),
            Op::Pop => {
                let _ = pop!();
            }
            Op::Dup(n) => match f.stack.len().checked_sub(1 + n as usize) {
                Some(i) => {
                    let v = f.stack[i];
                    push!(v);
                }
                None => return Err(ExecError::StackUnderflow { pc }),
            },
            Op::Swap(n) => {
                let top = f.stack.len().checked_sub(1);
                let other = f.stack.len().checked_sub(2 + n as usize);
                match (top, other) {
                    (Some(t), Some(o)) => f.stack.swap(t, o),
                    _ => return Err(ExecError::StackUnderflow { pc }),
                }
            }
            Op::Add => binop!(|a: Word, b: Word| a.checked_add(b)),
            Op::Sub => binop!(|a: Word, b: Word| a.checked_sub(b)),
            Op::Mul => binop!(|a: Word, b: Word| a.checked_mul(b)),
            Op::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(ExecError::DivisionByZero { pc });
                }
                match a.checked_div(b) {
                    Some(v) => push!(v),
                    None => return Err(ExecError::Overflow { pc }),
                }
            }
            Op::Mod => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(ExecError::DivisionByZero { pc });
                }
                match a.checked_rem(b) {
                    Some(v) => push!(v),
                    None => return Err(ExecError::Overflow { pc }),
                }
            }
            Op::Neg => {
                let a = pop!();
                match a.checked_neg() {
                    Some(v) => push!(v),
                    None => return Err(ExecError::Overflow { pc }),
                }
            }
            Op::Lt => binop!(|a: Word, b: Word| Some((a < b) as Word)),
            Op::Gt => binop!(|a: Word, b: Word| Some((a > b) as Word)),
            Op::Eq => binop!(|a: Word, b: Word| Some((a == b) as Word)),
            Op::IsZero => {
                let a = pop!();
                push!((a == 0) as Word);
            }
            Op::And => binop!(|a: Word, b: Word| Some(a & b)),
            Op::Or => binop!(|a: Word, b: Word| Some(a | b)),
            Op::Shl(n) => {
                let a = pop!();
                push!(a.wrapping_shl(n as u32));
            }
            Op::Shr(n) => {
                let a = pop!();
                push!(a.wrapping_shr(n as u32));
            }
            // Jump operands were rewritten to block indices at prepare
            // time; targets were range-verified once, so no check here.
            Op::Jump(b) => return Ok(Next::Goto(b)),
            Op::JumpIfZero(b) => {
                let c = pop!();
                if c == 0 {
                    return Ok(Next::Goto(b));
                }
                // Not taken: a conditional jump is always the last
                // instruction of its block, so fall through below.
            }
            Op::JumpIfNotZero(b) => {
                let c = pop!();
                if c != 0 {
                    return Ok(Next::Goto(b));
                }
            }
            Op::Load(i) => match f.locals.get(i as usize) {
                Some(&v) => push!(v),
                None => return Err(ExecError::InvalidLocal { pc, index: i }),
            },
            Op::Store(i) => {
                let v = pop!();
                match f.locals.get_mut(i as usize) {
                    Some(slot) => *slot = v,
                    None => return Err(ExecError::InvalidLocal { pc, index: i }),
                }
            }
            Op::SLoad => {
                let key = pop!();
                push!(state.load(key));
            }
            Op::SStore => {
                let value = pop!();
                let key = pop!();
                f.journal.push(Undo::Entry(key, state.load(key)));
                if !state.store(key, value, &f.limits) {
                    f.journal.pop();
                    return Err(ExecError::StateLimitExceeded);
                }
            }
            Op::Arg(i) => push!(f.ctx.args.get(i as usize).copied().unwrap_or(0)),
            Op::Caller => push!(f.ctx.caller),
            Op::Emit { tag, arity } => {
                if f.stack.len() < arity as usize {
                    return Err(ExecError::StackUnderflow { pc });
                }
                let args = f.stack.split_off(f.stack.len() - arity as usize);
                f.events.push((tag, args));
            }
            Op::StoreBlob => {
                // The per-byte part is dynamic and metered on both
                // paths. StoreBlob ends its block, so the pre-charged
                // prefix equals the unprepared cumulative gas here and
                // the checks observe identical values.
                let len = pop!();
                let len = len.max(0) as u64;
                f.gas = f.gas.saturating_add(f.schedule.blob_cost(len));
                f.check_meters()?;
                if !state.store_blob(len, &f.limits) {
                    return Err(ExecError::StateLimitExceeded);
                }
                f.journal.push(Undo::Blob(len));
            }
            Op::Halt => return Ok(Next::Done(f.stack.pop())),
            Op::Revert(code) => return Err(ExecError::Reverted(code)),
            Op::Nop => {}
        }
    }
    Ok(Next::FallThrough)
}

/// Telemetry histogram name for per-entry gas. Entry ids are dense and
/// small (contracts expose a handful of entry points); everything past
/// the table collapses into the last bucket.
fn entry_gas_metric(entry: EntryId) -> &'static str {
    const NAMES: [&str; 8] = [
        "vm.prepared.gas.entry0",
        "vm.prepared.gas.entry1",
        "vm.prepared.gas.entry2",
        "vm.prepared.gas.entry3",
        "vm.prepared.gas.entry4",
        "vm.prepared.gas.entry5",
        "vm.prepared.gas.entry6",
        "vm.prepared.gas.entry7plus",
    ];
    NAMES[entry.index().min(NAMES.len() - 1)]
}

impl Interpreter {
    /// Executes `entry` of a prepared program under `ctx` against
    /// `state` — the fast path equivalent of
    /// [`Interpreter::execute`]: identical `Receipt`s, identical
    /// `ExecError`s at the same observable points, identical state
    /// effects (rollback on failure included). Generic over
    /// [`StateAccess`] so the parallel executor can run it against a
    /// copy-on-write [`crate::state::Overlay`].
    ///
    /// # Panics
    ///
    /// Panics if `prepared` was lowered for a different flavor than this
    /// interpreter meters (a programming error: the fold-in of gas
    /// costs is per flavor).
    pub fn execute_prepared<S: StateAccess>(
        &self,
        prepared: &PreparedProgram,
        entry: EntryId,
        ctx: &TxContext,
        state: &mut S,
    ) -> Result<Receipt, ExecError> {
        assert_eq!(
            self.flavor(),
            prepared.flavor,
            "prepared program was lowered for {} but executed on {}",
            prepared.flavor,
            self.flavor()
        );
        let mut frame = Frame {
            stack: Vec::with_capacity(32),
            locals: [0 as Word; MAX_LOCALS],
            gas: 0,
            ops: 0,
            events: Vec::new(),
            journal: Vec::new(),
            ctx,
            schedule: prepared.flavor.schedule(),
            limits: prepared.flavor.state_limits(),
            budget: prepared.flavor.per_tx_budget(),
        };
        let Some(&(_, start_block)) = prepared.entries.get(entry.index()) else {
            // A foreign or stale EntryId; entry_id() never produces one.
            return Err(ExecError::UnknownEntry {
                name: format!("#{}", entry.index()),
            });
        };

        // The effective gas ceiling: the tighter of the hard budget and
        // the transaction's allowance. Exceeding it means some meter
        // trips — which one (and with which fields) is decided by the
        // per-instruction fallback.
        let allowance = frame.budget.unwrap_or(u64::MAX).min(ctx.gas_limit);
        let blocks = prepared.blocks.as_slice();
        let mut bi = start_block as usize;
        let mut fell_back = false;
        let result = loop {
            let block = blocks[bi];
            let code = &prepared.code[block.start as usize..block.end as usize];
            // Pre-charge the whole block iff no meter can trip inside
            // it; otherwise run it with per-instruction metering so any
            // meter fault is observed exactly where the unprepared
            // interpreter observes it.
            let charged = frame.gas.saturating_add(block.static_gas);
            let fast = charged <= allowance && frame.ops + block.len() <= MAX_OPS;
            let next = if fast {
                frame.gas = charged;
                frame.ops += block.len();
                run_block::<false, S>(&mut frame, code, block.start as usize, state)
            } else {
                fell_back = true;
                run_block::<true, S>(&mut frame, code, block.start as usize, state)
            };
            match next {
                Ok(Next::Goto(b)) => bi = b,
                Ok(Next::FallThrough) => {
                    bi += 1;
                    if bi == blocks.len() {
                        break Err(ExecError::MissingTerminator);
                    }
                }
                Ok(Next::Done(ret)) => {
                    break Ok(Receipt {
                        gas_used: frame.gas,
                        ops_executed: frame.ops,
                        events: std::mem::take(&mut frame.events),
                        ret,
                    });
                }
                Err(e) => break Err(e),
            }
        };

        if result.is_err() {
            rollback(frame.journal, state);
        }
        diablo_telemetry::counter!("vm.prepared.calls");
        if fell_back {
            diablo_telemetry::counter!("vm.prepared.precharge_fallbacks");
        }
        if let Ok(receipt) = &result {
            diablo_telemetry::record!(entry_gas_metric(entry), receipt.gas_used);
        }
        result
    }

    /// Prepared-path counterpart of [`Interpreter::dry_run`]: executes
    /// against a scratch copy of `state` and reports the cost without
    /// mutating anything.
    pub fn dry_run_prepared(
        &self,
        prepared: &PreparedProgram,
        entry: EntryId,
        ctx: &TxContext,
        state: &ContractState,
    ) -> Result<Receipt, ExecError> {
        let mut scratch = state.clone();
        self.execute_prepared(prepared, entry, ctx, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;

    /// A counting loop: sum 1..=n, return the sum.
    fn sum_loop(n: Word) -> Program {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(n)).op(Op::Store(0));
        asm.op(Op::Push(0)).op(Op::Store(1));
        let top = asm.here();
        let done = asm.new_label();
        asm.op(Op::Load(0));
        asm.jump_if_zero(done);
        asm.op(Op::Load(1)).op(Op::Load(0)).op(Op::Add).op(Op::Store(1));
        asm.op(Op::Load(0)).op(Op::Push(1)).op(Op::Sub).op(Op::Store(0));
        asm.jump(top);
        asm.bind(done);
        asm.op(Op::Load(1)).op(Op::Halt);
    asm.finish()
    }

    fn both(
        program: &Program,
        flavor: VmFlavor,
        ctx: &TxContext,
    ) -> (
        Result<Receipt, ExecError>,
        Result<Receipt, ExecError>,
        ContractState,
        ContractState,
    ) {
        let prepared = prepare(program, flavor).expect("valid program");
        let entry = prepared.entry_id("main").expect("main exists");
        let vm = Interpreter::new(flavor);
        let mut s1 = ContractState::new();
        let mut s2 = ContractState::new();
        let r1 = vm.execute(program, "main", ctx, &mut s1);
        let r2 = vm.execute_prepared(&prepared, entry, ctx, &mut s2);
        (r1, r2, s1, s2)
    }

    #[test]
    fn prepare_rejects_what_validate_rejects() {
        // Dangling jump.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Jump(99)).op(Op::Halt);
        let p = asm.finish();
        assert!(matches!(
            prepare(&p, VmFlavor::Geth),
            Err(ValidateError::JumpOutOfRange { .. })
        ));
        // Out-of-range local.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Load(200)).op(Op::Halt);
        let p = asm.finish();
        assert!(matches!(
            prepare(&p, VmFlavor::Geth),
            Err(ValidateError::LocalOutOfRange { .. })
        ));
    }

    #[test]
    fn entry_ids_are_dense_and_sorted() {
        let mut asm = Asm::new();
        asm.entry("zeta");
        asm.op(Op::Halt);
        asm.entry("alpha");
        asm.op(Op::Push(1)).op(Op::Halt);
        let prepared = prepare(&asm.finish(), VmFlavor::Geth).unwrap();
        let names: Vec<&str> = prepared.entry_names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(prepared.entry_id("alpha"), Some(EntryId(0)));
        assert_eq!(prepared.entry_id("zeta"), Some(EntryId(1)));
        assert_eq!(prepared.entry_id("nope"), None);
    }

    #[test]
    fn loop_receipts_match_baseline_on_every_flavor() {
        let program = sum_loop(50);
        for flavor in VmFlavor::ALL {
            let ctx = TxContext::simple(7, vec![]);
            let (r1, r2, s1, s2) = both(&program, flavor, &ctx);
            assert_eq!(r1, r2, "{flavor}");
            assert_eq!(s1.load(0), s2.load(0));
        }
        // On geth the loop succeeds and returns 1275.
        let ctx = TxContext::simple(7, vec![]);
        let (r1, _, _, _) = both(&program, VmFlavor::Geth, &ctx);
        assert_eq!(r1.unwrap().ret, Some(1275));
    }

    #[test]
    fn gas_exhaustion_faults_exactly_like_baseline() {
        // A straight-line block long enough that a mid-block limit is
        // meaningful: the metered fallback must report the same `used`
        // as the unprepared interpreter, not the block's full cost.
        let mut asm = Asm::new();
        asm.entry("main");
        for _ in 0..50 {
            asm.op(Op::Push(1)).op(Op::Pop);
        }
        asm.op(Op::Halt);
        let program = asm.finish();
        for limit in [0, 1, 2, 3, 7, 50, 99, 100, 101, 150] {
            let ctx = TxContext {
                caller: 1,
                args: vec![],
                payload_bytes: 0,
                gas_limit: limit,
            };
            let (r1, r2, _, _) = both(&program, VmFlavor::Geth, &ctx);
            assert_eq!(r1, r2, "limit {limit}");
        }
    }

    #[test]
    fn hard_budget_faults_exactly_like_baseline() {
        // The AVM's 700-op budget trips mid-loop; the prepared path must
        // produce the identical BudgetExceeded { used, budget }.
        let program = sum_loop(1000);
        let ctx = TxContext::simple(1, vec![]);
        let (r1, r2, _, _) = both(&program, VmFlavor::Avm, &ctx);
        assert!(r1.as_ref().unwrap_err().is_hard_budget());
        assert_eq!(r1, r2);
    }

    #[test]
    fn storeblob_dynamic_gas_matches_baseline() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(1024), Op::StoreBlob, Op::Push(7), Op::Halt]);
        let program = asm.finish();
        for flavor in VmFlavor::ALL {
            for limit in [10, 20_000, 20_486, 20_487, u64::MAX] {
                let ctx = TxContext {
                    caller: 1,
                    args: vec![],
                    payload_bytes: 0,
                    gas_limit: limit,
                };
                let (r1, r2, s1, s2) = both(&program, flavor, &ctx);
                assert_eq!(r1, r2, "{flavor} limit {limit}");
                assert_eq!(s1.blob_bytes(), s2.blob_bytes());
            }
        }
    }

    #[test]
    fn rollback_on_failure_matches_baseline() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(5), Op::Push(42), Op::SStore, Op::Revert(9)]);
        let program = asm.finish();
        let prepared = prepare(&program, VmFlavor::Geth).unwrap();
        let entry = prepared.entry_id("main").unwrap();
        let mut state = ContractState::new();
        state.store(5, 77, &StateLimits::unbounded());
        let err = Interpreter::new(VmFlavor::Geth)
            .execute_prepared(&prepared, entry, &TxContext::simple(1, vec![]), &mut state)
            .unwrap_err();
        assert_eq!(err, ExecError::Reverted(9));
        assert_eq!(state.load(5), 77, "revert must restore the old value");
    }

    #[test]
    #[should_panic(expected = "lowered for")]
    fn flavor_mismatch_panics() {
        let program = sum_loop(3);
        let prepared = prepare(&program, VmFlavor::Avm).unwrap();
        let entry = prepared.entry_id("main").unwrap();
        let mut state = ContractState::new();
        let _ = Interpreter::new(VmFlavor::Geth).execute_prepared(
            &prepared,
            entry,
            &TxContext::simple(1, vec![]),
            &mut state,
        );
    }

    #[test]
    fn dry_run_prepared_does_not_mutate() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(1), Op::Push(99), Op::SStore, Op::Halt]);
        let program = asm.finish();
        let prepared = prepare(&program, VmFlavor::Geth).unwrap();
        let entry = prepared.entry_id("main").unwrap();
        let state = ContractState::new();
        let r = Interpreter::new(VmFlavor::Geth)
            .dry_run_prepared(&prepared, entry, &TxContext::simple(1, vec![]), &state)
            .unwrap();
        assert!(r.gas_used > 0);
        assert_eq!(state.load(1), 0);
    }

    #[test]
    fn block_structure_of_a_loop() {
        let program = sum_loop(5);
        let prepared = prepare(&program, VmFlavor::Geth).unwrap();
        // Blocks: [0..4) prologue, [4..6) header, [6..15) body+backedge,
        // [15..17) exit — 4 blocks.
        assert_eq!(prepared.block_count(), 4);
        // Blocks partition the program and their folded static costs sum
        // to the whole program's static cost (operand rewriting does not
        // change any instruction's cost class).
        let total_blocks: u64 = prepared.blocks.iter().map(|b| b.static_gas).sum();
        let schedule = VmFlavor::Geth.schedule();
        assert_eq!(total_blocks, schedule.block_cost(program.ops()));
        assert_eq!(
            prepared.blocks.last().unwrap().end as usize,
            prepared.len()
        );
    }
}
