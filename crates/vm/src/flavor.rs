//! The four execution engines of the paper's Table 4.

use core::fmt;

use crate::gas::GasSchedule;
use crate::state::StateLimits;

/// A virtual-machine flavor: cost schedule, hard per-transaction compute
/// budget (if any) and contract-state limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmFlavor {
    /// go-ethereum EVM (Avalanche C-Chain, Ethereum, Quorum). Solidity
    /// DApps. No hard per-transaction compute cap — only the block gas
    /// limit applies, which is exactly why §6.4 finds that only the
    /// geth-based chains can execute the Mobility DApp.
    Geth,
    /// Algorand AVM executing TEAL (written via PyTeal). Hard 700-op
    /// application-call budget; key-value state limited to 128-byte
    /// entries (which made the paper's YouTube DApp unimplementable).
    Avm,
    /// Diem MoveVM. Hard maximum gas per transaction.
    MoveVm,
    /// Solana eBPF/SBF runtime. Hard compute-unit budget per transaction.
    Ebpf,
}

impl VmFlavor {
    /// All four flavors.
    pub const ALL: [VmFlavor; 4] = [
        VmFlavor::Geth,
        VmFlavor::Avm,
        VmFlavor::MoveVm,
        VmFlavor::Ebpf,
    ];

    /// The flavor's cost schedule.
    pub const fn schedule(self) -> GasSchedule {
        match self {
            VmFlavor::Geth => GasSchedule::GETH,
            VmFlavor::Avm => GasSchedule::AVM,
            VmFlavor::MoveVm => GasSchedule::MOVE_VM,
            VmFlavor::Ebpf => GasSchedule::EBPF,
        }
    }

    /// Hard per-transaction compute budget, or `None` for geth.
    ///
    /// These limits are protocol constants that cannot be lifted by
    /// paying a larger fee (§6.4: "This execution limit is hard-coded").
    pub const fn per_tx_budget(self) -> Option<u64> {
        match self {
            VmFlavor::Geth => None,
            // 700 TEAL ops per application call.
            VmFlavor::Avm => Some(700),
            // Maximum gas units per Diem transaction.
            VmFlavor::MoveVm => Some(4_000_000),
            // Solana compute units per transaction.
            VmFlavor::Ebpf => Some(200_000),
        }
    }

    /// Contract-state limits for this flavor.
    pub const fn state_limits(self) -> StateLimits {
        match self {
            // Geth, MoveVM, eBPF: effectively unbounded for our DApps.
            VmFlavor::Geth | VmFlavor::MoveVm | VmFlavor::Ebpf => StateLimits::unbounded(),
            // Algorand: key-value store with 128 bytes per entry and a
            // small number of entries per application.
            VmFlavor::Avm => StateLimits {
                max_blob_bytes: 128,
                max_entries: 64,
            },
        }
    }

    /// The VM name as printed in the paper's Table 4.
    pub const fn name(self) -> &'static str {
        match self {
            VmFlavor::Geth => "geth",
            VmFlavor::Avm => "AVM",
            VmFlavor::MoveVm => "MoveVM",
            VmFlavor::Ebpf => "eBPF",
        }
    }

    /// The DApp source language compiled to this VM (Table 4).
    pub const fn dapp_language(self) -> &'static str {
        match self {
            VmFlavor::Geth => "Solidity",
            VmFlavor::Avm => "PyTeal",
            VmFlavor::MoveVm => "Move",
            VmFlavor::Ebpf => "Solidity",
        }
    }
}

impl fmt::Display for VmFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_geth_is_uncapped() {
        assert_eq!(VmFlavor::Geth.per_tx_budget(), None);
        for f in [VmFlavor::Avm, VmFlavor::MoveVm, VmFlavor::Ebpf] {
            assert!(f.per_tx_budget().is_some(), "{f} must have a hard budget");
        }
    }

    #[test]
    fn avm_budget_is_700_ops() {
        assert_eq!(VmFlavor::Avm.per_tx_budget(), Some(700));
    }

    #[test]
    fn avm_state_is_tiny() {
        let lim = VmFlavor::Avm.state_limits();
        assert_eq!(lim.max_blob_bytes, 128);
        assert!(VmFlavor::Geth.state_limits().max_blob_bytes > 1_000_000);
    }

    #[test]
    fn names_match_table4() {
        assert_eq!(VmFlavor::Geth.name(), "geth");
        assert_eq!(VmFlavor::Avm.dapp_language(), "PyTeal");
        assert_eq!(VmFlavor::MoveVm.dapp_language(), "Move");
        assert_eq!(VmFlavor::Ebpf.name(), "eBPF");
    }
}
