//! Programs and the assembler used to build them.
//!
//! The DApps in `diablo-contracts` are written against [`Asm`], a tiny
//! two-pass assembler with named entry points and forward-referencing
//! labels, then frozen into an immutable [`Program`].

use std::collections::HashMap;

use crate::op::Op;

/// A label handle produced by [`Asm::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// An immutable, validated program with named entry points.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    entries: HashMap<String, usize>,
}

impl Program {
    /// The instruction stream.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The instruction at `pc`, if in range.
    pub fn op(&self, pc: usize) -> Option<Op> {
        self.ops.get(pc).copied()
    }

    /// Program length in instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The program counter of a named entry point.
    pub fn entry(&self, name: &str) -> Option<usize> {
        self.entries.get(name).copied()
    }

    /// Iterates the entry point names.
    pub fn entry_names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Entry points as `(name, pc)` pairs in a deterministic (sorted by
    /// name) order — the interning order of prepared-program
    /// [`EntryId`](crate::prepared::EntryId)s.
    pub fn entries_sorted(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self
            .entries
            .iter()
            .map(|(name, &pc)| (name.as_str(), pc))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Two-pass assembler: emit instructions, bind labels, finish.
#[derive(Debug, Default)]
pub struct Asm {
    ops: Vec<Op>,
    entries: HashMap<String, usize>,
    /// Resolved label positions (`usize::MAX` = unbound).
    labels: Vec<usize>,
    /// Instruction slots whose jump target is `Label(i)`.
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    /// An empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Declares a named entry point at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the name was already declared (a programming error in
    /// the contract source).
    pub fn entry(&mut self, name: &str) -> &mut Self {
        let prev = self.entries.insert(name.to_string(), self.ops.len());
        assert!(prev.is_none(), "duplicate entry point `{name}`");
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(usize::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert_eq!(self.labels[label.0], usize::MAX, "label bound twice");
        self.labels[label.0] = self.ops.len();
        self
    }

    /// Convenience: allocates a label bound right here.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Emits one instruction.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Emits several instructions.
    pub fn ops(&mut self, ops: &[Op]) -> &mut Self {
        self.ops.extend_from_slice(ops);
        self
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label.0));
        self.ops.push(Op::Jump(usize::MAX));
        self
    }

    /// Emits a jump-if-zero to `label`.
    pub fn jump_if_zero(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label.0));
        self.ops.push(Op::JumpIfZero(usize::MAX));
        self
    }

    /// Emits a jump-if-not-zero to `label`.
    pub fn jump_if_not_zero(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label.0));
        self.ops.push(Op::JumpIfNotZero(usize::MAX));
        self
    }

    /// Resolves labels and freezes the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> Program {
        let mut ops = self.ops;
        for (slot, label) in self.fixups {
            let target = self.labels[label];
            assert_ne!(target, usize::MAX, "label {label} used but never bound");
            ops[slot] = match ops[slot] {
                Op::Jump(_) => Op::Jump(target),
                Op::JumpIfZero(_) => Op::JumpIfZero(target),
                Op::JumpIfNotZero(_) => Op::JumpIfNotZero(target),
                other => unreachable!("fixup on non-jump {other:?}"),
            };
        }
        Program {
            ops,
            entries: self.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_and_ops() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Halt);
        asm.entry("other");
        asm.op(Op::Push(2)).op(Op::Halt);
        let p = asm.finish();
        assert_eq!(p.entry("main"), Some(0));
        assert_eq!(p.entry("other"), Some(2));
        assert_eq!(p.entry("nope"), None);
        assert_eq!(p.len(), 4);
        let mut names: Vec<&str> = p.entry_names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["main", "other"]);
    }

    #[test]
    fn forward_labels_resolve() {
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(0));
        asm.jump_if_zero(end);
        asm.op(Op::Push(99)); // skipped
        asm.bind(end);
        asm.op(Op::Halt);
        let p = asm.finish();
        assert_eq!(p.op(1), Some(Op::JumpIfZero(3)));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut asm = Asm::new();
        asm.entry("main");
        let top = asm.here();
        asm.op(Op::Nop);
        asm.jump(top);
        let p = asm.finish();
        assert_eq!(p.op(1), Some(Op::Jump(0)));
    }

    #[test]
    #[should_panic(expected = "duplicate entry point")]
    fn duplicate_entry_panics() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.entry("main");
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut asm = Asm::new();
        asm.entry("main");
        let l = asm.new_label();
        asm.jump(l);
        let _ = asm.finish();
    }
}
