//! Static analysis of VM programs: validation and disassembly.
//!
//! Contracts are deployed once and run millions of times in a benchmark;
//! [`validate`] catches malformed programs (dangling jumps, fall-through
//! past the end, unreachable entry points) at deploy time instead of
//! mid-experiment, and [`disassemble`] renders programs for inspection —
//! the closest thing a benchmark suite needs to a contract debugger.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::op::Op;
use crate::program::Program;

/// A static-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A jump targets an instruction index outside the program.
    JumpOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The bad target.
        target: usize,
    },
    /// Execution can fall off the end of the program from this entry.
    FallThrough {
        /// The entry point whose flow reaches the end.
        entry: String,
    },
    /// An entry point's index lies outside the program.
    EntryOutOfRange {
        /// The entry point name.
        entry: String,
    },
    /// The program has no entry points at all.
    NoEntryPoints,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::JumpOutOfRange { pc, target } => {
                write!(f, "jump at pc {pc} targets out-of-range index {target}")
            }
            ValidateError::FallThrough { entry } => {
                write!(f, "entry `{entry}` can fall off the end of the program")
            }
            ValidateError::EntryOutOfRange { entry } => {
                write!(f, "entry `{entry}` points outside the program")
            }
            ValidateError::NoEntryPoints => write!(f, "program has no entry points"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Statically validates a program: every jump lands inside the program
/// and no instruction reachable from an entry point can fall off the
/// end (every path ends in `Halt` or `Revert`).
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let n = program.len();
    if program.entry_names().next().is_none() {
        return Err(ValidateError::NoEntryPoints);
    }
    // Jump-range check over the whole program.
    for (pc, &op) in program.ops().iter().enumerate() {
        if let Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) = op {
            if t >= n {
                return Err(ValidateError::JumpOutOfRange { pc, target: t });
            }
        }
    }
    // Reachability per entry: breadth-first over the control-flow graph.
    let entries: Vec<String> = program.entry_names().map(str::to_string).collect();
    for entry in entries {
        let Some(start) = program.entry(&entry) else {
            return Err(ValidateError::EntryOutOfRange { entry });
        };
        if start >= n {
            return Err(ValidateError::EntryOutOfRange { entry });
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        while let Some(pc) = queue.pop_front() {
            if pc >= n {
                return Err(ValidateError::FallThrough { entry });
            }
            if std::mem::replace(&mut seen[pc], true) {
                continue;
            }
            match program.op(pc).expect("pc < n") {
                Op::Halt | Op::Revert(_) => {}
                Op::Jump(t) => queue.push_back(t),
                Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                    queue.push_back(t);
                    queue.push_back(pc + 1);
                }
                _ => queue.push_back(pc + 1),
            }
        }
    }
    Ok(())
}

/// Renders a program as human-readable assembly, one instruction per
/// line, with entry points annotated.
pub fn disassemble(program: &Program) -> String {
    let mut entries: Vec<(usize, &str)> = program
        .entry_names()
        .filter_map(|n| program.entry(n).map(|pc| (pc, n)))
        .collect();
    entries.sort_unstable();
    let mut out = String::new();
    for (pc, &op) in program.ops().iter().enumerate() {
        for &(epc, name) in &entries {
            if epc == pc {
                let _ = writeln!(out, "{name}:");
            }
        }
        let operand = match op {
            Op::Push(v) => format!(" {v}"),
            Op::Dup(n) | Op::Swap(n) => format!(" {n}"),
            Op::Shl(n) | Op::Shr(n) => format!(" {n}"),
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => format!(" @{t}"),
            Op::Load(i) | Op::Store(i) | Op::Arg(i) => format!(" {i}"),
            Op::Emit { tag, arity } => format!(" tag={tag} arity={arity}"),
            Op::Revert(code) => format!(" {code}"),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {pc:>5}  {}{operand}", op.mnemonic());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;

    fn halting() -> Program {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Halt);
        asm.finish()
    }

    #[test]
    fn valid_program_passes() {
        assert_eq!(validate(&halting()), Ok(()));
    }

    #[test]
    fn all_dapp_contracts_validate() {
        use diablo_contracts_check::*;
        // (See the contracts crate's own tests; here we validate the
        // assembler building blocks directly.)
        for program in sample_programs() {
            assert_eq!(validate(&program), Ok(()));
        }
    }

    /// Local stand-in module building representative programs (loops,
    /// branches) without a dependency cycle on `diablo-contracts`.
    mod diablo_contracts_check {
        use super::*;

        pub fn sample_programs() -> Vec<Program> {
            let mut v = Vec::new();
            v.push(super::halting());
            // A loop with a conditional exit.
            let mut asm = Asm::new();
            asm.entry("loop");
            asm.op(Op::Push(10)).op(Op::Store(0));
            let top = asm.here();
            let done = asm.new_label();
            asm.op(Op::Load(0));
            asm.jump_if_zero(done);
            asm.op(Op::Load(0))
                .op(Op::Push(1))
                .op(Op::Sub)
                .op(Op::Store(0));
            asm.jump(top);
            asm.bind(done);
            asm.op(Op::Halt);
            v.push(asm.finish());
            // Multiple entries, one reverting.
            let mut asm = Asm::new();
            asm.entry("ok");
            asm.op(Op::Halt);
            asm.entry("fail");
            asm.op(Op::Revert(9));
            v.push(asm.finish());
            v
        }
    }

    #[test]
    fn fall_through_is_rejected() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Pop);
        // No terminator.
        let program = asm.finish();
        assert_eq!(
            validate(&program),
            Err(ValidateError::FallThrough {
                entry: "main".to_string()
            })
        );
    }

    #[test]
    fn conditional_fall_through_is_rejected() {
        // The taken branch halts, the fall-through path runs off the end.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Nop); // falls through past `end`'s Halt? No: end is after.
        asm.bind(end);
        asm.op(Op::Halt);
        // This one is fine...
        assert_eq!(validate(&asm.finish()), Ok(()));
        // ...but dropping the final Halt is not.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Halt);
        asm.bind(end);
        asm.op(Op::Nop);
        let program = asm.finish();
        assert!(matches!(
            validate(&program),
            Err(ValidateError::FallThrough { .. })
        ));
    }

    #[test]
    fn empty_program_is_rejected() {
        let program = Asm::new().finish();
        assert_eq!(validate(&program), Err(ValidateError::NoEntryPoints));
    }

    #[test]
    fn disassembly_mentions_entries_and_targets() {
        let mut asm = Asm::new();
        asm.entry("main");
        let top = asm.here();
        asm.op(Op::Push(5));
        asm.jump(top);
        let text = disassemble(&asm.finish());
        assert!(text.contains("main:"), "{text}");
        assert!(text.contains("push 5"), "{text}");
        assert!(text.contains("jump @0"), "{text}");
    }
}
