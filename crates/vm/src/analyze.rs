//! Static analysis of VM programs: validation and disassembly.
//!
//! Contracts are deployed once and run millions of times in a benchmark;
//! [`validate`] catches malformed programs (dangling jumps, fall-through
//! past the end, unreachable entry points) at deploy time instead of
//! mid-experiment, and [`disassemble`] renders programs for inspection —
//! the closest thing a benchmark suite needs to a contract debugger.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::interp::MAX_LOCALS;
use crate::op::Op;
use crate::program::Program;

/// A static-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A jump targets an instruction index outside the program.
    JumpOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The bad target.
        target: usize,
    },
    /// Execution can fall off the end of the program from this entry.
    FallThrough {
        /// The entry point whose flow reaches the end.
        entry: String,
    },
    /// An entry point's index lies outside the program.
    EntryOutOfRange {
        /// The entry point name.
        entry: String,
    },
    /// The program has no entry points at all.
    NoEntryPoints,
    /// A `Load`/`Store` addresses a register outside the register file
    /// (`>= MAX_LOCALS`). Historically the interpreter wrapped the index
    /// modulo the file size, silently masking contract bugs.
    LocalOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The out-of-range register index.
        index: u8,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::JumpOutOfRange { pc, target } => {
                write!(f, "jump at pc {pc} targets out-of-range index {target}")
            }
            ValidateError::FallThrough { entry } => {
                write!(f, "entry `{entry}` can fall off the end of the program")
            }
            ValidateError::EntryOutOfRange { entry } => {
                write!(f, "entry `{entry}` points outside the program")
            }
            ValidateError::NoEntryPoints => write!(f, "program has no entry points"),
            ValidateError::LocalOutOfRange { pc, index } => {
                write!(
                    f,
                    "instruction at pc {pc} addresses local register {index} \
                     (register file has {MAX_LOCALS})"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Statically validates a program: every jump lands inside the program
/// and no instruction reachable from an entry point can fall off the
/// end (every path ends in `Halt` or `Revert`).
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let n = program.len();
    if program.entry_names().next().is_none() {
        return Err(ValidateError::NoEntryPoints);
    }
    // Jump-range and local-register checks over the whole program.
    for (pc, &op) in program.ops().iter().enumerate() {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                if t >= n {
                    return Err(ValidateError::JumpOutOfRange { pc, target: t });
                }
            }
            Op::Load(i) | Op::Store(i) => {
                if i as usize >= MAX_LOCALS {
                    return Err(ValidateError::LocalOutOfRange { pc, index: i });
                }
            }
            _ => {}
        }
    }
    // Reachability per entry: breadth-first over the control-flow graph.
    let entries: Vec<String> = program.entry_names().map(str::to_string).collect();
    for entry in entries {
        let Some(start) = program.entry(&entry) else {
            return Err(ValidateError::EntryOutOfRange { entry });
        };
        if start >= n {
            return Err(ValidateError::EntryOutOfRange { entry });
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        while let Some(pc) = queue.pop_front() {
            if pc >= n {
                return Err(ValidateError::FallThrough { entry });
            }
            if std::mem::replace(&mut seen[pc], true) {
                continue;
            }
            match program.op(pc).expect("pc < n") {
                Op::Halt | Op::Revert(_) => {}
                Op::Jump(t) => queue.push_back(t),
                Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                    queue.push_back(t);
                    queue.push_back(pc + 1);
                }
                _ => queue.push_back(pc + 1),
            }
        }
    }
    Ok(())
}

/// Discovers the basic-block leaders of a program: the sorted list of
/// instruction indices at which a block starts. Blocks partition
/// `[0, len)`; each block runs from its leader to the instruction
/// before the next leader (or the program end).
///
/// Leaders are:
/// - instruction 0 and every entry point (execution can start there),
/// - every jump target (control can arrive there from elsewhere),
/// - the instruction after any jump, conditional jump or terminator
///   (the fall-through / resume point ends the previous block),
/// - the instruction after [`Op::StoreBlob`]. A blob store charges
///   *dynamic* gas (per payload byte), so gas pre-charging must stop at
///   it for the dynamic meter check to observe the same cumulative gas
///   as unprepared execution (see [`crate::prepared`]).
pub fn basic_blocks(program: &Program) -> Vec<usize> {
    let n = program.len();
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n];
    leader[0] = true;
    for name in program.entry_names() {
        if let Some(pc) = program.entry(name) {
            if pc < n {
                leader[pc] = true;
            }
        }
    }
    for (pc, &op) in program.ops().iter().enumerate() {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                if t < n {
                    leader[t] = true;
                }
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Op::Halt | Op::Revert(_) | Op::StoreBlob => {
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            _ => {}
        }
    }
    leader
        .iter()
        .enumerate()
        .filter_map(|(pc, &is_leader)| is_leader.then_some(pc))
        .collect()
}

/// Renders a program as human-readable assembly, one instruction per
/// line, with entry points annotated.
pub fn disassemble(program: &Program) -> String {
    let mut entries: Vec<(usize, &str)> = program
        .entry_names()
        .filter_map(|n| program.entry(n).map(|pc| (pc, n)))
        .collect();
    entries.sort_unstable();
    let mut out = String::new();
    for (pc, &op) in program.ops().iter().enumerate() {
        for &(epc, name) in &entries {
            if epc == pc {
                let _ = writeln!(out, "{name}:");
            }
        }
        let operand = match op {
            Op::Push(v) => format!(" {v}"),
            Op::Dup(n) | Op::Swap(n) => format!(" {n}"),
            Op::Shl(n) | Op::Shr(n) => format!(" {n}"),
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => format!(" @{t}"),
            Op::Load(i) | Op::Store(i) | Op::Arg(i) => format!(" {i}"),
            Op::Emit { tag, arity } => format!(" tag={tag} arity={arity}"),
            Op::Revert(code) => format!(" {code}"),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {pc:>5}  {}{operand}", op.mnemonic());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;

    fn halting() -> Program {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Halt);
        asm.finish()
    }

    #[test]
    fn valid_program_passes() {
        assert_eq!(validate(&halting()), Ok(()));
    }

    #[test]
    fn all_dapp_contracts_validate() {
        use diablo_contracts_check::*;
        // (See the contracts crate's own tests; here we validate the
        // assembler building blocks directly.)
        for program in sample_programs() {
            assert_eq!(validate(&program), Ok(()));
        }
    }

    /// Local stand-in module building representative programs (loops,
    /// branches) without a dependency cycle on `diablo-contracts`.
    mod diablo_contracts_check {
        use super::*;

        pub fn sample_programs() -> Vec<Program> {
            let mut v = Vec::new();
            v.push(super::halting());
            // A loop with a conditional exit.
            let mut asm = Asm::new();
            asm.entry("loop");
            asm.op(Op::Push(10)).op(Op::Store(0));
            let top = asm.here();
            let done = asm.new_label();
            asm.op(Op::Load(0));
            asm.jump_if_zero(done);
            asm.op(Op::Load(0))
                .op(Op::Push(1))
                .op(Op::Sub)
                .op(Op::Store(0));
            asm.jump(top);
            asm.bind(done);
            asm.op(Op::Halt);
            v.push(asm.finish());
            // Multiple entries, one reverting.
            let mut asm = Asm::new();
            asm.entry("ok");
            asm.op(Op::Halt);
            asm.entry("fail");
            asm.op(Op::Revert(9));
            v.push(asm.finish());
            v
        }
    }

    #[test]
    fn fall_through_is_rejected() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Pop);
        // No terminator.
        let program = asm.finish();
        assert_eq!(
            validate(&program),
            Err(ValidateError::FallThrough {
                entry: "main".to_string()
            })
        );
    }

    #[test]
    fn conditional_fall_through_is_rejected() {
        // The taken branch halts, the fall-through path runs off the end.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Nop); // falls through past `end`'s Halt? No: end is after.
        asm.bind(end);
        asm.op(Op::Halt);
        // This one is fine...
        assert_eq!(validate(&asm.finish()), Ok(()));
        // ...but dropping the final Halt is not.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Halt);
        asm.bind(end);
        asm.op(Op::Nop);
        let program = asm.finish();
        assert!(matches!(
            validate(&program),
            Err(ValidateError::FallThrough { .. })
        ));
    }

    #[test]
    fn out_of_range_locals_are_rejected_at_deploy_time() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Store(99)).op(Op::Halt);
        assert_eq!(
            validate(&asm.finish()),
            Err(ValidateError::LocalOutOfRange { pc: 1, index: 99 })
        );
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Load(32)).op(Op::Halt);
        assert_eq!(
            validate(&asm.finish()),
            Err(ValidateError::LocalOutOfRange { pc: 0, index: 32 })
        );
        // The highest valid register passes.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Load(31)).op(Op::Halt);
        assert_eq!(validate(&asm.finish()), Ok(()));
    }

    #[test]
    fn basic_blocks_split_at_jumps_targets_and_terminators() {
        // 0: push 10     <- leader (pc 0, entry)
        // 1: store 0
        // 2: load 0      <- leader (target of jump at 8)
        // 3: jz @9
        // 4: load 0      <- leader (fall-through of jz)
        // 5: push 1
        // 6: sub
        // 7: store 0
        // 8: jump @2
        // 9: halt        <- leader (target of jz, after jump)
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(10)).op(Op::Store(0));
        let top = asm.here();
        let done = asm.new_label();
        asm.op(Op::Load(0));
        asm.jump_if_zero(done);
        asm.op(Op::Load(0)).op(Op::Push(1)).op(Op::Sub).op(Op::Store(0));
        asm.jump(top);
        asm.bind(done);
        asm.op(Op::Halt);
        assert_eq!(basic_blocks(&asm.finish()), vec![0, 2, 4, 9]);
    }

    #[test]
    fn basic_blocks_split_after_storeblob() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(64), Op::StoreBlob, Op::Push(1), Op::Halt]);
        // StoreBlob's dynamic gas forces a block boundary after pc 1.
        assert_eq!(basic_blocks(&asm.finish()), vec![0, 2]);
    }

    #[test]
    fn empty_program_is_rejected() {
        let program = Asm::new().finish();
        assert_eq!(validate(&program), Err(ValidateError::NoEntryPoints));
    }

    #[test]
    fn disassembly_mentions_entries_and_targets() {
        let mut asm = Asm::new();
        asm.entry("main");
        let top = asm.here();
        asm.op(Op::Push(5));
        asm.jump(top);
        let text = disassemble(&asm.finish());
        assert!(text.contains("main:"), "{text}");
        assert!(text.contains("push 5"), "{text}");
        assert!(text.contains("jump @0"), "{text}");
    }
}
