//! Static analysis of VM programs: validation, disassembly and
//! read/write-set extraction.
//!
//! Contracts are deployed once and run millions of times in a benchmark;
//! [`validate`] catches malformed programs (dangling jumps, fall-through
//! past the end, unreachable entry points) at deploy time instead of
//! mid-experiment, and [`disassemble`] renders programs for inspection —
//! the closest thing a benchmark suite needs to a contract debugger.
//! [`rw_set`] computes the storage footprint of an entry point — which
//! keys it can touch — feeding the parallel block executor's conflict
//! scheduling in `diablo-chains`.

use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::interp::MAX_LOCALS;
use crate::op::Op;
use crate::program::Program;
use crate::Word;

/// A static-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A jump targets an instruction index outside the program.
    JumpOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The bad target.
        target: usize,
    },
    /// Execution can fall off the end of the program from this entry.
    FallThrough {
        /// The entry point whose flow reaches the end.
        entry: String,
    },
    /// An entry point's index lies outside the program.
    EntryOutOfRange {
        /// The entry point name.
        entry: String,
    },
    /// The program has no entry points at all.
    NoEntryPoints,
    /// A `Load`/`Store` addresses a register outside the register file
    /// (`>= MAX_LOCALS`). Historically the interpreter wrapped the index
    /// modulo the file size, silently masking contract bugs.
    LocalOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The out-of-range register index.
        index: u8,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::JumpOutOfRange { pc, target } => {
                write!(f, "jump at pc {pc} targets out-of-range index {target}")
            }
            ValidateError::FallThrough { entry } => {
                write!(f, "entry `{entry}` can fall off the end of the program")
            }
            ValidateError::EntryOutOfRange { entry } => {
                write!(f, "entry `{entry}` points outside the program")
            }
            ValidateError::NoEntryPoints => write!(f, "program has no entry points"),
            ValidateError::LocalOutOfRange { pc, index } => {
                write!(
                    f,
                    "instruction at pc {pc} addresses local register {index} \
                     (register file has {MAX_LOCALS})"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Statically validates a program: every jump lands inside the program
/// and no instruction reachable from an entry point can fall off the
/// end (every path ends in `Halt` or `Revert`).
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let n = program.len();
    if program.entry_names().next().is_none() {
        return Err(ValidateError::NoEntryPoints);
    }
    // Jump-range and local-register checks over the whole program.
    for (pc, &op) in program.ops().iter().enumerate() {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                if t >= n {
                    return Err(ValidateError::JumpOutOfRange { pc, target: t });
                }
            }
            Op::Load(i) | Op::Store(i) => {
                if i as usize >= MAX_LOCALS {
                    return Err(ValidateError::LocalOutOfRange { pc, index: i });
                }
            }
            _ => {}
        }
    }
    // Reachability per entry: breadth-first over the control-flow graph.
    let entries: Vec<String> = program.entry_names().map(str::to_string).collect();
    for entry in entries {
        let Some(start) = program.entry(&entry) else {
            return Err(ValidateError::EntryOutOfRange { entry });
        };
        if start >= n {
            return Err(ValidateError::EntryOutOfRange { entry });
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        while let Some(pc) = queue.pop_front() {
            if pc >= n {
                return Err(ValidateError::FallThrough { entry });
            }
            if std::mem::replace(&mut seen[pc], true) {
                continue;
            }
            match program.op(pc).expect("pc < n") {
                Op::Halt | Op::Revert(_) => {}
                Op::Jump(t) => queue.push_back(t),
                Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                    queue.push_back(t);
                    queue.push_back(pc + 1);
                }
                _ => queue.push_back(pc + 1),
            }
        }
    }
    Ok(())
}

/// Discovers the basic-block leaders of a program: the sorted list of
/// instruction indices at which a block starts. Blocks partition
/// `[0, len)`; each block runs from its leader to the instruction
/// before the next leader (or the program end).
///
/// Leaders are:
/// - instruction 0 and every entry point (execution can start there),
/// - every jump target (control can arrive there from elsewhere),
/// - the instruction after any jump, conditional jump or terminator
///   (the fall-through / resume point ends the previous block),
/// - the instruction after [`Op::StoreBlob`]. A blob store charges
///   *dynamic* gas (per payload byte), so gas pre-charging must stop at
///   it for the dynamic meter check to observe the same cumulative gas
///   as unprepared execution (see [`crate::prepared`]).
pub fn basic_blocks(program: &Program) -> Vec<usize> {
    let n = program.len();
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n];
    leader[0] = true;
    for name in program.entry_names() {
        if let Some(pc) = program.entry(name) {
            if pc < n {
                leader[pc] = true;
            }
        }
    }
    for (pc, &op) in program.ops().iter().enumerate() {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                if t < n {
                    leader[t] = true;
                }
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Op::Halt | Op::Revert(_) | Op::StoreBlob => {
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            _ => {}
        }
    }
    leader
        .iter()
        .enumerate()
        .filter_map(|(pc, &is_leader)| is_leader.then_some(pc))
        .collect()
}

/// The statically derived storage footprint of one entry point: the
/// state keys it can read or write, plus flags for accesses whose key
/// could not be constant-folded at deploy time.
///
/// Derived by abstract interpretation of every reachable basic block
/// with an *unknown* block-entry stack: `Push` produces a known value,
/// the arithmetic and comparison ops fold known operands with the
/// interpreter's exact checked semantics, and everything else — locals,
/// arguments, the caller id, loaded storage values, anything left on the
/// stack by a predecessor block — is unknown. An `SLoad`/`SStore` whose
/// key is unknown sets the matching `dynamic_*` flag; such entries have
/// no static schedule and force the parallel executor onto the serial
/// path. The result is a sound over-approximation: the entry can never
/// touch a key outside `reads`/`writes` unless a dynamic flag is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// Keys the entry may read (sorted, deduplicated).
    pub reads: Vec<Word>,
    /// Keys the entry may write (sorted, deduplicated).
    pub writes: Vec<Word>,
    /// An `SLoad` with a non-constant key is reachable.
    pub dynamic_reads: bool,
    /// An `SStore` with a non-constant key is reachable.
    pub dynamic_writes: bool,
    /// A `StoreBlob` is reachable (blob accounting is shared state).
    pub stores_blob: bool,
}

impl RwSet {
    /// Whether every reachable storage access has a deploy-time-known
    /// key, i.e. the footprint is exact enough to schedule statically.
    pub fn is_static(&self) -> bool {
        !self.dynamic_reads && !self.dynamic_writes
    }

    /// Whether transactions with these footprints may fail to commute:
    /// write/write or read/write key overlap, both storing blobs, or
    /// either side having a dynamic access (an unknown key conflicts
    /// with everything). Read/read sharing is *not* a conflict.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        if !self.is_static() || !other.is_static() {
            return true;
        }
        if self.stores_blob && other.stores_blob {
            return true;
        }
        intersects(&self.writes, &other.writes)
            || intersects(&self.writes, &other.reads)
            || intersects(&self.reads, &other.writes)
    }
}

/// Whether two sorted slices share an element (linear merge scan).
fn intersects(a: &[Word], b: &[Word]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Computes the [`RwSet`] of `entry`, or `None` if the program has no
/// such entry point. Every basic block reachable from the entry is
/// abstractly interpreted once; see [`RwSet`] for the value semantics.
pub fn rw_set(program: &Program, entry: &str) -> Option<RwSet> {
    let start = program.entry(entry)?;
    let n = program.len();
    if start >= n {
        return None;
    }
    let leaders = basic_blocks(program);
    let block_of = |pc: usize| {
        leaders
            .binary_search(&pc)
            .expect("jump targets and entries are leaders")
    };

    let mut set = RwSet::default();
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut seen = vec![false; leaders.len()];
    let mut queue = VecDeque::from([block_of(start)]);

    while let Some(bi) = queue.pop_front() {
        if std::mem::replace(&mut seen[bi], true) {
            continue;
        }
        let lo = leaders[bi];
        let hi = leaders.get(bi + 1).copied().unwrap_or(n);
        // Abstract operand stack for this block: `Some(v)` is a value
        // known to be the constant `v`; `None` is unknown. The stack
        // models only values pushed *within* the block — popping past
        // its bottom reaches predecessor-supplied values, which are
        // unknown by construction.
        let mut stack: Vec<Option<Word>> = Vec::new();
        let mut falls_through = true;
        for &op in &program.ops()[lo..hi] {
            match op {
                Op::Push(v) => stack.push(Some(v)),
                Op::Pop => {
                    apop(&mut stack);
                }
                Op::Dup(d) => {
                    let v = if stack.len() > d as usize {
                        stack[stack.len() - 1 - d as usize]
                    } else {
                        None
                    };
                    stack.push(v);
                }
                Op::Swap(d) => {
                    let len = stack.len();
                    if len >= 2 + d as usize {
                        stack.swap(len - 1, len - 2 - d as usize);
                    } else if len >= 1 {
                        // The partner slot is below the block entry: an
                        // unknown value surfaces to the top.
                        stack[len - 1] = None;
                    }
                }
                Op::Add => bin(&mut stack, |a, b| a.checked_add(b)),
                Op::Sub => bin(&mut stack, |a, b| a.checked_sub(b)),
                Op::Mul => bin(&mut stack, |a, b| a.checked_mul(b)),
                Op::Div => bin(&mut stack, |a, b| if b == 0 { None } else { a.checked_div(b) }),
                Op::Mod => bin(&mut stack, |a, b| if b == 0 { None } else { a.checked_rem(b) }),
                Op::Neg => un(&mut stack, |a| a.checked_neg()),
                Op::Lt => bin(&mut stack, |a, b| Some((a < b) as Word)),
                Op::Gt => bin(&mut stack, |a, b| Some((a > b) as Word)),
                Op::Eq => bin(&mut stack, |a, b| Some((a == b) as Word)),
                Op::IsZero => un(&mut stack, |a| Some((a == 0) as Word)),
                Op::And => bin(&mut stack, |a, b| Some(a & b)),
                Op::Or => bin(&mut stack, |a, b| Some(a | b)),
                Op::Shl(k) => un(&mut stack, |a| Some(a.wrapping_shl(k as u32))),
                Op::Shr(k) => un(&mut stack, |a| Some(a.wrapping_shr(k as u32))),
                Op::Jump(t) => {
                    queue.push_back(block_of(t));
                    falls_through = false;
                    break;
                }
                Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => {
                    // Conservatively explore both arms even when the
                    // condition folds: a superset footprint stays sound.
                    apop(&mut stack);
                    queue.push_back(block_of(t));
                    // A conditional jump always ends its block; the
                    // fall-through successor is pushed below.
                }
                Op::Load(_) | Op::Arg(_) | Op::Caller => stack.push(None),
                Op::Store(_) => {
                    apop(&mut stack);
                }
                Op::SLoad => {
                    match apop(&mut stack) {
                        Some(key) => {
                            reads.insert(key);
                        }
                        None => set.dynamic_reads = true,
                    }
                    stack.push(None);
                }
                Op::SStore => {
                    let _value = apop(&mut stack);
                    match apop(&mut stack) {
                        Some(key) => {
                            writes.insert(key);
                        }
                        None => set.dynamic_writes = true,
                    }
                }
                Op::Emit { arity, .. } => {
                    for _ in 0..arity {
                        apop(&mut stack);
                    }
                }
                Op::StoreBlob => {
                    apop(&mut stack);
                    set.stores_blob = true;
                }
                Op::Halt | Op::Revert(_) => {
                    falls_through = false;
                    break;
                }
                Op::Nop => {}
            }
        }
        if falls_through && hi < n {
            queue.push_back(block_of(hi));
        }
    }

    set.reads = reads.into_iter().collect();
    set.writes = writes.into_iter().collect();
    Some(set)
}

/// Abstract pop: popping past the block's own pushes yields an unknown.
fn apop(stack: &mut Vec<Option<Word>>) -> Option<Word> {
    stack.pop().flatten()
}

/// Abstract binary op: folds when both operands are known and the
/// runtime operation would succeed; unknown otherwise (a folding failure
/// means the runtime would fault — unknown is a sound answer there too).
fn bin(stack: &mut Vec<Option<Word>>, f: impl Fn(Word, Word) -> Option<Word>) {
    let b = apop(stack);
    let a = apop(stack);
    let r = match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    };
    stack.push(r);
}

/// Abstract unary op; see [`bin`].
fn un(stack: &mut Vec<Option<Word>>, f: impl Fn(Word) -> Option<Word>) {
    let a = apop(stack);
    stack.push(a.and_then(f));
}

/// Renders a program as human-readable assembly, one instruction per
/// line, with entry points annotated.
pub fn disassemble(program: &Program) -> String {
    let mut entries: Vec<(usize, &str)> = program
        .entry_names()
        .filter_map(|n| program.entry(n).map(|pc| (pc, n)))
        .collect();
    entries.sort_unstable();
    let mut out = String::new();
    for (pc, &op) in program.ops().iter().enumerate() {
        for &(epc, name) in &entries {
            if epc == pc {
                let _ = writeln!(out, "{name}:");
            }
        }
        let operand = match op {
            Op::Push(v) => format!(" {v}"),
            Op::Dup(n) | Op::Swap(n) => format!(" {n}"),
            Op::Shl(n) | Op::Shr(n) => format!(" {n}"),
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNotZero(t) => format!(" @{t}"),
            Op::Load(i) | Op::Store(i) | Op::Arg(i) => format!(" {i}"),
            Op::Emit { tag, arity } => format!(" tag={tag} arity={arity}"),
            Op::Revert(code) => format!(" {code}"),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {pc:>5}  {}{operand}", op.mnemonic());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;

    fn halting() -> Program {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Halt);
        asm.finish()
    }

    #[test]
    fn valid_program_passes() {
        assert_eq!(validate(&halting()), Ok(()));
    }

    #[test]
    fn all_dapp_contracts_validate() {
        use diablo_contracts_check::*;
        // (See the contracts crate's own tests; here we validate the
        // assembler building blocks directly.)
        for program in sample_programs() {
            assert_eq!(validate(&program), Ok(()));
        }
    }

    /// Local stand-in module building representative programs (loops,
    /// branches) without a dependency cycle on `diablo-contracts`.
    mod diablo_contracts_check {
        use super::*;

        pub fn sample_programs() -> Vec<Program> {
            let mut v = Vec::new();
            v.push(super::halting());
            // A loop with a conditional exit.
            let mut asm = Asm::new();
            asm.entry("loop");
            asm.op(Op::Push(10)).op(Op::Store(0));
            let top = asm.here();
            let done = asm.new_label();
            asm.op(Op::Load(0));
            asm.jump_if_zero(done);
            asm.op(Op::Load(0))
                .op(Op::Push(1))
                .op(Op::Sub)
                .op(Op::Store(0));
            asm.jump(top);
            asm.bind(done);
            asm.op(Op::Halt);
            v.push(asm.finish());
            // Multiple entries, one reverting.
            let mut asm = Asm::new();
            asm.entry("ok");
            asm.op(Op::Halt);
            asm.entry("fail");
            asm.op(Op::Revert(9));
            v.push(asm.finish());
            v
        }
    }

    #[test]
    fn fall_through_is_rejected() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Pop);
        // No terminator.
        let program = asm.finish();
        assert_eq!(
            validate(&program),
            Err(ValidateError::FallThrough {
                entry: "main".to_string()
            })
        );
    }

    #[test]
    fn conditional_fall_through_is_rejected() {
        // The taken branch halts, the fall-through path runs off the end.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Nop); // falls through past `end`'s Halt? No: end is after.
        asm.bind(end);
        asm.op(Op::Halt);
        // This one is fine...
        assert_eq!(validate(&asm.finish()), Ok(()));
        // ...but dropping the final Halt is not.
        let mut asm = Asm::new();
        asm.entry("main");
        let end = asm.new_label();
        asm.op(Op::Push(1));
        asm.jump_if_zero(end);
        asm.op(Op::Halt);
        asm.bind(end);
        asm.op(Op::Nop);
        let program = asm.finish();
        assert!(matches!(
            validate(&program),
            Err(ValidateError::FallThrough { .. })
        ));
    }

    #[test]
    fn out_of_range_locals_are_rejected_at_deploy_time() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(1)).op(Op::Store(99)).op(Op::Halt);
        assert_eq!(
            validate(&asm.finish()),
            Err(ValidateError::LocalOutOfRange { pc: 1, index: 99 })
        );
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Load(32)).op(Op::Halt);
        assert_eq!(
            validate(&asm.finish()),
            Err(ValidateError::LocalOutOfRange { pc: 0, index: 32 })
        );
        // The highest valid register passes.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Load(31)).op(Op::Halt);
        assert_eq!(validate(&asm.finish()), Ok(()));
    }

    #[test]
    fn basic_blocks_split_at_jumps_targets_and_terminators() {
        // 0: push 10     <- leader (pc 0, entry)
        // 1: store 0
        // 2: load 0      <- leader (target of jump at 8)
        // 3: jz @9
        // 4: load 0      <- leader (fall-through of jz)
        // 5: push 1
        // 6: sub
        // 7: store 0
        // 8: jump @2
        // 9: halt        <- leader (target of jz, after jump)
        let mut asm = Asm::new();
        asm.entry("main");
        asm.op(Op::Push(10)).op(Op::Store(0));
        let top = asm.here();
        let done = asm.new_label();
        asm.op(Op::Load(0));
        asm.jump_if_zero(done);
        asm.op(Op::Load(0)).op(Op::Push(1)).op(Op::Sub).op(Op::Store(0));
        asm.jump(top);
        asm.bind(done);
        asm.op(Op::Halt);
        assert_eq!(basic_blocks(&asm.finish()), vec![0, 2, 4, 9]);
    }

    #[test]
    fn basic_blocks_split_after_storeblob() {
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Push(64), Op::StoreBlob, Op::Push(1), Op::Halt]);
        // StoreBlob's dynamic gas forces a block boundary after pc 1.
        assert_eq!(basic_blocks(&asm.finish()), vec![0, 2]);
    }

    #[test]
    fn rw_set_folds_constant_keys() {
        // read key 5, write key 2+3 = 5 computed on the stack.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[
            Op::Push(5),
            Op::SLoad,
            Op::Pop,
            Op::Push(2),
            Op::Push(3),
            Op::Add,
            Op::Push(42),
            Op::SStore,
            Op::Halt,
        ]);
        let rw = rw_set(&asm.finish(), "main").unwrap();
        assert_eq!(rw.reads, vec![5]);
        assert_eq!(rw.writes, vec![5]);
        assert!(rw.is_static());
        assert!(!rw.stores_blob);
    }

    #[test]
    fn rw_set_flags_dynamic_keys() {
        // Key comes from a transaction argument: not statically known.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[Op::Arg(0), Op::Push(1), Op::SStore, Op::Halt]);
        let rw = rw_set(&asm.finish(), "main").unwrap();
        assert!(rw.dynamic_writes);
        assert!(!rw.dynamic_reads);
        assert!(!rw.is_static());
        // A key loaded through a local register is unknown too.
        let mut asm = Asm::new();
        asm.entry("main");
        asm.ops(&[
            Op::Push(7),
            Op::Store(0),
            Op::Load(0),
            Op::SLoad,
            Op::Halt,
        ]);
        let rw = rw_set(&asm.finish(), "main").unwrap();
        assert!(rw.dynamic_reads, "locals are not tracked");
    }

    #[test]
    fn rw_set_unions_across_branches_and_flags_blobs() {
        // jz -> writes key 1; fall-through -> writes key 2 + stores blob.
        let mut asm = Asm::new();
        asm.entry("main");
        let taken = asm.new_label();
        asm.op(Op::Arg(0));
        asm.jump_if_zero(taken);
        asm.op(Op::Push(2)).op(Op::Push(0)).op(Op::SStore);
        asm.op(Op::Push(64)).op(Op::StoreBlob).op(Op::Halt);
        asm.bind(taken);
        asm.op(Op::Push(1)).op(Op::Push(0)).op(Op::SStore).op(Op::Halt);
        let program = asm.finish();
        let rw = rw_set(&program, "main").unwrap();
        assert_eq!(rw.writes, vec![1, 2]);
        assert!(rw.is_static());
        assert!(rw.stores_blob);
        assert_eq!(rw_set(&program, "nope"), None);
    }

    #[test]
    fn rw_set_conflict_rules() {
        let r = |reads: &[Word], writes: &[Word]| RwSet {
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            ..RwSet::default()
        };
        // Read/read sharing is not a conflict.
        assert!(!r(&[1, 2], &[]).conflicts_with(&r(&[2, 3], &[])));
        // Write/write and read/write overlaps are.
        assert!(r(&[], &[5]).conflicts_with(&r(&[], &[5])));
        assert!(r(&[5], &[]).conflicts_with(&r(&[], &[5])));
        assert!(r(&[], &[5]).conflicts_with(&r(&[5], &[])));
        // Disjoint footprints commute.
        assert!(!r(&[1], &[2]).conflicts_with(&r(&[3], &[4])));
        // Dynamic conflicts with everything, even the empty set.
        let dynamic = RwSet {
            dynamic_reads: true,
            ..RwSet::default()
        };
        assert!(dynamic.conflicts_with(&r(&[], &[])));
        // Two blob-storers conflict.
        let blob = RwSet {
            stores_blob: true,
            ..RwSet::default()
        };
        assert!(blob.conflicts_with(&blob));
        assert!(!blob.conflicts_with(&r(&[1], &[2])));
    }

    #[test]
    fn empty_program_is_rejected() {
        let program = Asm::new().finish();
        assert_eq!(validate(&program), Err(ValidateError::NoEntryPoints));
    }

    #[test]
    fn disassembly_mentions_entries_and_targets() {
        let mut asm = Asm::new();
        asm.entry("main");
        let top = asm.here();
        asm.op(Op::Push(5));
        asm.jump(top);
        let text = disassemble(&asm.finish());
        assert!(text.contains("main:"), "{text}");
        assert!(text.contains("push 5"), "{text}");
        assert!(text.contains("jump @0"), "{text}");
    }
}
