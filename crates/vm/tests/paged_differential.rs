//! Differential property test: [`PagedState`] is behaviourally
//! identical to [`ContractState`] through the [`StateAccess`] trait.
//!
//! Random operation sequences — stores (including explicit zeros,
//! negative and page-boundary keys), loads and blob accounting, under
//! random entry-count limits — are applied to both backends. Every
//! operation must agree on its return value, every load on its result,
//! and the final states must agree entry-for-entry via the sorted
//! iteration helpers. This is what lets `diablo-store` hold the
//! persisted storage table in pages while the executors keep producing
//! bit-identical results against the canonical map.

use diablo_testkit::gen::{u64s, vecs};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};
use diablo_vm::{ContractState, PagedState, StateAccess, StateLimits};

/// Decodes one generated word into an operation on both states.
/// Returns `false` on a disagreement (asserted by the caller).
fn apply(op: u64, map: &mut ContractState, paged: &mut PagedState, limits: &StateLimits) -> bool {
    // Keys cluster into a few pages (low byte spread, small page part)
    // with occasional far-flung and negative outliers.
    let raw = (op >> 8) as i64;
    let key = match op % 100 {
        0..=79 => raw % 1024,
        80..=89 => -(raw % 1024),
        _ => raw.wrapping_mul(0x9e37),
    };
    let value = (op as i64).wrapping_mul(31) % 1000 - 500;
    match op % 7 {
        0 | 1 | 2 | 3 => {
            let a = StateAccess::store(map, key, value, limits);
            let b = StateAccess::store(paged, key, value, limits);
            a == b
        }
        4 | 5 => StateAccess::load(map, key) == StateAccess::load(paged, key),
        _ => {
            let len = op % 200;
            let a = StateAccess::store_blob(map, len, limits);
            let b = StateAccess::store_blob(paged, len, limits);
            if a != b {
                return false;
            }
            if op % 2 == 0 {
                map.unstore_blob(len);
                paged.unstore_blob(len);
            }
            true
        }
    }
}

#[test]
fn paged_state_matches_contract_state() {
    Property::new("paged_state_matches_contract_state")
        .cases(64)
        .check(&vecs(u64s(0..=u64::MAX), 0..=400), |ops: &Vec<u64>| {
            // A tight limit in some cases exercises the rejection path.
            let max_entries = if ops.len() % 3 == 0 { 40 } else { usize::MAX / 2 };
            let limits = StateLimits {
                max_blob_bytes: 100,
                max_entries,
            };
            let mut map = ContractState::new();
            let mut paged = PagedState::new();
            for &op in ops {
                prop_assert!(
                    apply(op, &mut map, &mut paged, &limits),
                    "backends disagreed on op {op:#x}"
                );
            }
            prop_assert_eq!(map.entry_count(), paged.entry_count());
            prop_assert_eq!(map.blob_bytes(), paged.blob_bytes());
            prop_assert_eq!(map.blob_count(), paged.blob_count());
            prop_assert_eq!(map.sorted_entries(), paged.sorted_entries());
            Ok(())
        });
}
