//! Property tests of the interpreter: total on arbitrary (valid-jump)
//! programs, monotone gas accounting, journaled rollback.

use proptest::prelude::*;

use diablo_vm::{
    validate, Asm, ContractState, ExecError, Interpreter, Op, Program, StateLimits, TxContext,
    VmFlavor, Word,
};

/// Strategy: one instruction with jump targets confined to `len`.
fn arb_op(len: usize) -> impl Strategy<Value = Op> {
    let target = 0..len.max(1);
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Op::Push),
        Just(Op::Pop),
        (0u8..4).prop_map(Op::Dup),
        (0u8..4).prop_map(Op::Swap),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Mod),
        Just(Op::Neg),
        Just(Op::Lt),
        Just(Op::Gt),
        Just(Op::Eq),
        Just(Op::IsZero),
        Just(Op::And),
        Just(Op::Or),
        (0u8..32).prop_map(Op::Shl),
        (0u8..32).prop_map(Op::Shr),
        target.clone().prop_map(Op::Jump),
        target.clone().prop_map(Op::JumpIfZero),
        target.prop_map(Op::JumpIfNotZero),
        (0u8..8).prop_map(Op::Load),
        (0u8..8).prop_map(Op::Store),
        Just(Op::SLoad),
        Just(Op::SStore),
        (0u8..4).prop_map(Op::Arg),
        Just(Op::Caller),
        Just(Op::Nop),
        Just(Op::Halt),
        (0u16..8).prop_map(Op::Revert),
    ]
}

/// Builds a program from raw ops, padding with `Halt` up to the
/// strategy's jump-target bound so every generated jump is in range and
/// every path ends in a terminator.
fn program_from(ops: Vec<Op>) -> Program {
    let mut asm = Asm::new();
    asm.entry("main");
    let len = ops.len();
    for op in ops {
        asm.op(op);
    }
    for _ in len..=64 {
        asm.op(Op::Halt);
    }
    asm.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interpreter never panics and always terminates on arbitrary
    /// programs whose jumps are in range (the budget bounds loops).
    #[test]
    fn interpreter_is_total(
        ops in proptest::collection::vec(arb_op(64), 0..64),
        args in proptest::collection::vec(-1000i64..1000, 0..4),
        flavor_idx in 0usize..4,
    ) {
        let program = program_from(ops);
        let flavor = VmFlavor::ALL[flavor_idx];
        let mut state = ContractState::new();
        let ctx = TxContext { caller: 7, args, payload_bytes: 0, gas_limit: 100_000 };
        let _ = Interpreter::new(flavor).execute(&program, "main", &ctx, &mut state);
    }

    /// Gas consumed never exceeds the smaller of the transaction limit
    /// and the flavor's hard budget (plus the cost of the tripping
    /// instruction).
    #[test]
    fn gas_respects_limits(
        ops in proptest::collection::vec(arb_op(32), 0..32),
        gas_limit in 1u64..5_000,
    ) {
        let program = program_from(ops);
        let mut state = ContractState::new();
        let ctx = TxContext { caller: 1, args: vec![], payload_bytes: 0, gas_limit };
        match Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut state) {
            Ok(receipt) => prop_assert!(receipt.gas_used <= gas_limit),
            Err(ExecError::OutOfGas { used, limit }) => {
                prop_assert_eq!(limit, gas_limit);
                prop_assert!(used > gas_limit);
            }
            Err(_) => {}
        }
    }

    /// Any failed execution leaves the contract state untouched
    /// (journal rollback).
    #[test]
    fn failures_roll_back_state(
        ops in proptest::collection::vec(arb_op(32), 0..32),
        seed_key in 0i64..16,
        seed_val in -100i64..100,
    ) {
        let program = program_from(ops);
        let mut state = ContractState::new();
        state.store(seed_key, seed_val, &StateLimits::unbounded());
        let snapshot: Vec<(Word, Word)> = (0..16).map(|k| (k, state.load(k))).collect();
        let ctx = TxContext { caller: 1, args: vec![], payload_bytes: 0, gas_limit: 2_000 };
        if Interpreter::new(VmFlavor::Geth)
            .execute(&program, "main", &ctx, &mut state)
            .is_err()
        {
            for (k, v) in snapshot {
                prop_assert_eq!(state.load(k), v, "key {} changed after a failure", k);
            }
        }
    }

    /// Execution is deterministic: same program, same inputs, same
    /// receipt and same state.
    #[test]
    fn execution_is_deterministic(
        ops in proptest::collection::vec(arb_op(48), 0..48),
        args in proptest::collection::vec(-50i64..50, 0..3),
    ) {
        let program = program_from(ops);
        let ctx = TxContext { caller: 3, args, payload_bytes: 0, gas_limit: 50_000 };
        let mut s1 = ContractState::new();
        let mut s2 = ContractState::new();
        let r1 = Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut s1);
        let r2 = Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut s2);
        prop_assert_eq!(r1, r2);
        for k in -4i64..16 {
            prop_assert_eq!(s1.load(k), s2.load(k));
        }
    }

    /// Programs built by the strategy always pass static validation
    /// (jumps in range, terminator present): validate() agrees with the
    /// builder's guarantees.
    #[test]
    fn generated_programs_validate_jump_ranges(
        ops in proptest::collection::vec(arb_op(48), 0..48),
    ) {
        let program = program_from(ops);
        match validate(&program) {
            // Fall-through can never be a jump-range issue here.
            Ok(()) | Err(diablo_vm::ValidateError::FallThrough { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected validation error: {other}"),
        }
    }
}
