//! Property tests of the interpreter: total on arbitrary (valid-jump)
//! programs, monotone gas accounting, journaled rollback. Runs on the
//! in-tree `diablo-testkit` harness.

use diablo_testkit::gen::{choice, i64s, just, u16s, u64s, u8s, usizes, vecs, BoxedGen, Gen};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};

use diablo_vm::{
    validate, Asm, ContractState, ExecError, Interpreter, Op, Program, StateLimits, TxContext,
    VmFlavor, Word,
};

/// Generator: one instruction with jump targets confined to `len`.
fn arb_op(len: usize) -> BoxedGen<Op> {
    let target = usizes(0..=len.max(1) - 1);
    choice(vec![
        i64s(-1_000_000..=999_999).map(Op::Push).boxed(),
        just(Op::Pop).boxed(),
        u8s(0..=3).map(Op::Dup).boxed(),
        u8s(0..=3).map(Op::Swap).boxed(),
        just(Op::Add).boxed(),
        just(Op::Sub).boxed(),
        just(Op::Mul).boxed(),
        just(Op::Div).boxed(),
        just(Op::Mod).boxed(),
        just(Op::Neg).boxed(),
        just(Op::Lt).boxed(),
        just(Op::Gt).boxed(),
        just(Op::Eq).boxed(),
        just(Op::IsZero).boxed(),
        just(Op::And).boxed(),
        just(Op::Or).boxed(),
        u8s(0..=31).map(Op::Shl).boxed(),
        u8s(0..=31).map(Op::Shr).boxed(),
        target.clone().map(Op::Jump).boxed(),
        target.clone().map(Op::JumpIfZero).boxed(),
        target.map(Op::JumpIfNotZero).boxed(),
        u8s(0..=7).map(Op::Load).boxed(),
        u8s(0..=7).map(Op::Store).boxed(),
        just(Op::SLoad).boxed(),
        just(Op::SStore).boxed(),
        u8s(0..=3).map(Op::Arg).boxed(),
        just(Op::Caller).boxed(),
        just(Op::Nop).boxed(),
        just(Op::Halt).boxed(),
        u16s(0..=7).map(Op::Revert).boxed(),
    ])
    .boxed()
}

/// Builds a program from raw ops, padding with `Halt` up to the
/// generator's jump-target bound so every generated jump is in range and
/// every path ends in a terminator.
fn program_from(ops: &[Op]) -> Program {
    let mut asm = Asm::new();
    asm.entry("main");
    for op in ops {
        asm.op(*op);
    }
    for _ in ops.len()..=64 {
        asm.op(Op::Halt);
    }
    asm.finish()
}

/// The interpreter never panics and always terminates on arbitrary
/// programs whose jumps are in range (the budget bounds loops).
#[test]
fn interpreter_is_total() {
    Property::new("interpreter_is_total").cases(256).check(
        &(
            vecs(arb_op(64), 0..=63),
            vecs(i64s(-1000..=999), 0..=3),
            usizes(0..=3),
        ),
        |(ops, args, flavor_idx)| {
            let program = program_from(ops);
            let flavor = VmFlavor::ALL[*flavor_idx];
            let mut state = ContractState::new();
            let ctx = TxContext {
                caller: 7,
                args: args.clone(),
                payload_bytes: 0,
                gas_limit: 100_000,
            };
            let _ = Interpreter::new(flavor).execute(&program, "main", &ctx, &mut state);
            Ok(())
        },
    );
}

/// Gas consumed never exceeds the smaller of the transaction limit and
/// the flavor's hard budget (plus the cost of the tripping instruction).
#[test]
fn gas_respects_limits() {
    Property::new("gas_respects_limits").cases(256).check(
        &(vecs(arb_op(32), 0..=31), u64s(1..=4_999)),
        |(ops, gas_limit)| {
            let program = program_from(ops);
            let mut state = ContractState::new();
            let ctx = TxContext {
                caller: 1,
                args: vec![],
                payload_bytes: 0,
                gas_limit: *gas_limit,
            };
            match Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut state) {
                Ok(receipt) => prop_assert!(receipt.gas_used <= *gas_limit),
                Err(ExecError::OutOfGas { used, limit }) => {
                    prop_assert_eq!(limit, *gas_limit);
                    prop_assert!(used > *gas_limit);
                }
                Err(_) => {}
            }
            Ok(())
        },
    );
}

/// Any failed execution leaves the contract state untouched (journal
/// rollback).
#[test]
fn failures_roll_back_state() {
    Property::new("failures_roll_back_state").cases(256).check(
        &(
            vecs(arb_op(32), 0..=31),
            i64s(0..=15),
            i64s(-100..=99),
        ),
        |(ops, seed_key, seed_val)| {
            let program = program_from(ops);
            let mut state = ContractState::new();
            state.store(*seed_key, *seed_val, &StateLimits::unbounded());
            let snapshot: Vec<(Word, Word)> = (0..16).map(|k| (k, state.load(k))).collect();
            let ctx = TxContext {
                caller: 1,
                args: vec![],
                payload_bytes: 0,
                gas_limit: 2_000,
            };
            if Interpreter::new(VmFlavor::Geth)
                .execute(&program, "main", &ctx, &mut state)
                .is_err()
            {
                for (k, v) in snapshot {
                    prop_assert_eq!(state.load(k), v, "key {} changed after a failure", k);
                }
            }
            Ok(())
        },
    );
}

/// Execution is deterministic: same program, same inputs, same receipt
/// and same state.
#[test]
fn execution_is_deterministic() {
    Property::new("execution_is_deterministic").cases(256).check(
        &(vecs(arb_op(48), 0..=47), vecs(i64s(-50..=49), 0..=2)),
        |(ops, args)| {
            let program = program_from(ops);
            let ctx = TxContext {
                caller: 3,
                args: args.clone(),
                payload_bytes: 0,
                gas_limit: 50_000,
            };
            let mut s1 = ContractState::new();
            let mut s2 = ContractState::new();
            let r1 = Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut s1);
            let r2 = Interpreter::new(VmFlavor::Geth).execute(&program, "main", &ctx, &mut s2);
            prop_assert_eq!(r1, r2);
            for k in -4i64..16 {
                prop_assert_eq!(s1.load(k), s2.load(k));
            }
            Ok(())
        },
    );
}

/// Programs built by the generator always pass static validation (jumps
/// in range, terminator present): validate() agrees with the builder's
/// guarantees.
#[test]
fn generated_programs_validate_jump_ranges() {
    Property::new("generated_programs_validate_jump_ranges")
        .cases(256)
        .check(&vecs(arb_op(48), 0..=47), |ops| {
            let program = program_from(ops);
            match validate(&program) {
                // Fall-through can never be a jump-range issue here.
                Ok(()) | Err(diablo_vm::ValidateError::FallThrough { .. }) => Ok(()),
                Err(other) => Err(format!("unexpected validation error: {other}")),
            }
        });
}
