//! Differential property test: [`Interpreter::execute_prepared`] is
//! observationally identical to [`Interpreter::execute`].
//!
//! Random valid programs (arithmetic, stack traffic, jumps, locals,
//! storage, events, blob stores) are run through both the baseline
//! interpreter and the prepared fast path on all four flavors and under
//! adversarial gas limits (tiny, mid-sized, unlimited — tiny limits
//! force the metered per-instruction fallback). The two paths must
//! agree on everything observable: the full `Receipt` on success, the
//! exact `ExecError` (with fields) on failure, and the post-state —
//! including rollback of journaled writes.
//!
//! Runs on the in-tree `diablo-testkit` harness: failures shrink and
//! print a `DIABLO_PROP_SEED=<seed>` line that replays the exact case;
//! `DIABLO_PROP_CASES` scales the case count.

use diablo_testkit::gen::{choice, i64s, just, u16s, u64s, u8s, usizes, vecs, BoxedGen, Gen};
use diablo_testkit::{prop_assert_eq, Property};

use diablo_vm::{
    prepare, Asm, ContractState, Interpreter, Op, Program, StateLimits, TxContext, VmFlavor, Word,
    MAX_LOCALS,
};

/// Generator: one instruction with jump targets confined to `len`,
/// covering the whole instruction set (including events and blob
/// stores, which the basic interpreter property tests leave out).
fn arb_op(len: usize) -> BoxedGen<Op> {
    let target = usizes(0..=len.max(1) - 1);
    choice(vec![
        i64s(-1_000_000..=999_999).map(Op::Push).boxed(),
        just(Op::Pop).boxed(),
        u8s(0..=3).map(Op::Dup).boxed(),
        u8s(0..=3).map(Op::Swap).boxed(),
        just(Op::Add).boxed(),
        just(Op::Sub).boxed(),
        just(Op::Mul).boxed(),
        just(Op::Div).boxed(),
        just(Op::Mod).boxed(),
        just(Op::Neg).boxed(),
        just(Op::Lt).boxed(),
        just(Op::Gt).boxed(),
        just(Op::Eq).boxed(),
        just(Op::IsZero).boxed(),
        just(Op::And).boxed(),
        just(Op::Or).boxed(),
        u8s(0..=31).map(Op::Shl).boxed(),
        u8s(0..=31).map(Op::Shr).boxed(),
        target.clone().map(Op::Jump).boxed(),
        target.clone().map(Op::JumpIfZero).boxed(),
        target.map(Op::JumpIfNotZero).boxed(),
        u8s(0..=MAX_LOCALS as u8 - 1).map(Op::Load).boxed(),
        u8s(0..=MAX_LOCALS as u8 - 1).map(Op::Store).boxed(),
        just(Op::SLoad).boxed(),
        just(Op::SStore).boxed(),
        u8s(0..=3).map(Op::Arg).boxed(),
        just(Op::Caller).boxed(),
        (u16s(0..=9), u8s(0..=3))
            .map(|(tag, arity)| Op::Emit { tag, arity })
            .boxed(),
        just(Op::StoreBlob).boxed(),
        just(Op::Nop).boxed(),
        just(Op::Halt).boxed(),
        u16s(0..=7).map(Op::Revert).boxed(),
    ])
    .boxed()
}

/// Builds a two-entry program from raw ops, padding with `Halt` so
/// every generated jump is in range and every path terminates. The
/// second entry lands at `alt_pc`, exercising the prepared program's
/// entry interning away from pc 0.
fn program_from(ops: &[Op], alt_pc: usize) -> Program {
    let mut asm = Asm::new();
    asm.entry("main");
    for (pc, op) in ops.iter().enumerate() {
        if pc == alt_pc {
            asm.entry("alt");
        }
        asm.op(*op);
    }
    for pc in ops.len()..=64 {
        if pc == alt_pc {
            asm.entry("alt");
        }
        asm.op(Op::Halt);
    }
    asm.finish()
}

/// One pre-seeded state so storage reads/writes and rollback are
/// exercised against non-trivial contents.
fn seeded_state() -> ContractState {
    let mut state = ContractState::new();
    for k in 0..8 {
        state.store(k, 1000 + k, &StateLimits::unbounded());
    }
    state
}

fn assert_states_agree(s1: &ContractState, s2: &ContractState) -> Result<(), String> {
    for k in -4i64..24 {
        prop_assert_eq!(s1.load(k), s2.load(k), "storage key {} diverged", k);
    }
    prop_assert_eq!(s1.blob_bytes(), s2.blob_bytes());
    prop_assert_eq!(s1.blob_count(), s2.blob_count());
    prop_assert_eq!(s1.entry_count(), s2.entry_count());
    Ok(())
}

/// The core differential property, over all four flavors and a spread
/// of gas limits.
#[test]
fn prepared_execution_is_observationally_identical() {
    let gas_limit = choice(vec![
        // Tiny: trips OutOfGas mid-program, forcing the metered
        // fallback from the very first block.
        u64s(0..=300).boxed(),
        // Mid: the fast path runs until the limit approaches.
        u64s(1_000..=60_000).boxed(),
        // Effectively unlimited (hard budgets still apply per flavor).
        just(u64::MAX).boxed(),
    ]);
    Property::new("prepared_execution_is_observationally_identical")
        .cases(512)
        .check(
            &(
                (vecs(arb_op(64), 0..=63), vecs(i64s(-1000..=999), 0..=3)),
                (usizes(0..=3), usizes(0..=64)),
                gas_limit,
            ),
            |((ops, args), (flavor_idx, alt_pc), gas_limit)| {
                let program = program_from(ops, *alt_pc);
                let flavor = VmFlavor::ALL[*flavor_idx];
                let Ok(prepared) = prepare(&program, flavor) else {
                    // The generator can in principle produce programs
                    // static validation rejects; those never deploy, so
                    // there is nothing to compare.
                    return Ok(());
                };
                let vm = Interpreter::new(flavor);
                let ctx = TxContext {
                    caller: 7,
                    args: args.clone(),
                    payload_bytes: 0,
                    gas_limit: *gas_limit,
                };
                for entry in ["main", "alt"] {
                    let id = prepared
                        .entry_id(entry)
                        .ok_or_else(|| format!("entry {entry} not interned"))?;
                    let mut s1 = seeded_state();
                    let mut s2 = seeded_state();
                    let r1 = vm.execute(&program, entry, &ctx, &mut s1);
                    let r2 = vm.execute_prepared(&prepared, id, &ctx, &mut s2);
                    prop_assert_eq!(
                        r1,
                        r2,
                        "entry {} on {} with limit {} diverged",
                        entry,
                        flavor,
                        gas_limit
                    );
                    assert_states_agree(&s1, &s2)?;
                }
                Ok(())
            },
        );
}

/// Long-running loops exercise many block transitions and (on the
/// budgeted flavors) guarantee the metered fallback kicks in at the
/// end of an exhausted run — with byte-identical faults.
#[test]
fn prepared_loops_agree_under_every_budget() {
    Property::new("prepared_loops_agree_under_every_budget")
        .cases(64)
        .check(
            &(i64s(1..=3_000), usizes(0..=3)),
            |(iterations, flavor_idx)| {
                let flavor = VmFlavor::ALL[*flavor_idx];
                let mut asm = Asm::new();
                asm.entry("main");
                asm.op(Op::Push(*iterations)).op(Op::Store(0));
                let top = asm.here();
                let done = asm.new_label();
                asm.op(Op::Load(0));
                asm.jump_if_zero(done);
                asm.op(Op::Load(0)).op(Op::Push(1)).op(Op::Sub).op(Op::Store(0));
                asm.jump(top);
                asm.bind(done);
                asm.op(Op::Push(0)).op(Op::SLoad).op(Op::Halt);
                let program = asm.finish();
                let prepared = prepare(&program, flavor).expect("loop program is valid");
                let id = prepared.entry_id("main").expect("main interned");
                let vm = Interpreter::new(flavor);
                let ctx = TxContext::simple(1, vec![]);
                let mut s1 = ContractState::new();
                let mut s2 = ContractState::new();
                let r1 = vm.execute(&program, "main", &ctx, &mut s1);
                let r2 = vm.execute_prepared(&prepared, id, &ctx, &mut s2);
                prop_assert_eq!(r1, r2, "{} iterations on {}", iterations, flavor);
                Ok(())
            },
        );
}

/// Blob stores carry dynamic per-byte gas and per-flavor state limits
/// (the AVM's 128-byte cap): the prepared path must agree on both the
/// metering and the `StateLimitExceeded` faults.
#[test]
fn prepared_blob_stores_agree() {
    Property::new("prepared_blob_stores_agree").cases(128).check(
        &(
            i64s(-16..=4_096),
            usizes(0..=3),
            choice(vec![u64s(0..=30_000).boxed(), just(u64::MAX).boxed()]),
        ),
        |(blob_len, flavor_idx, gas_limit)| {
            let flavor = VmFlavor::ALL[*flavor_idx];
            let mut asm = Asm::new();
            asm.entry("main");
            asm.ops(&[
                Op::Push(*blob_len),
                Op::StoreBlob,
                Op::Push(1),
                Op::Push(2),
                Op::SStore,
                Op::Halt,
            ]);
            let program = asm.finish();
            let prepared = prepare(&program, flavor).expect("blob program is valid");
            let id = prepared.entry_id("main").expect("main interned");
            let vm = Interpreter::new(flavor);
            let ctx = TxContext {
                caller: 1,
                args: vec![],
                payload_bytes: 0,
                gas_limit: *gas_limit,
            };
            let mut s1 = ContractState::new();
            let mut s2 = ContractState::new();
            let r1 = vm.execute(&program, "main", &ctx, &mut s1);
            let r2 = vm.execute_prepared(&prepared, id, &ctx, &mut s2);
            prop_assert_eq!(r1, r2, "blob {} on {} limit {}", blob_len, flavor, gas_limit);
            assert_states_agree(&s1, &s2)
        },
    );
}

/// Type-level anchor: both paths return the very same `Word`-based
/// receipt type, so agreement above is agreement on everything.
#[allow(dead_code)]
fn _receipts_share_a_type(r: diablo_vm::Receipt) -> Option<Word> {
    r.ret
}
