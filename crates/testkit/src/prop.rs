//! The property runner: cases, greedy shrinking, replayable seeds.
//!
//! [`Property::check`] draws `cases` inputs from a generator, each from
//! its own deterministically derived seed, and applies the property
//! closure. A property fails by returning `Err` (use the
//! [`prop_assert!`](crate::prop_assert) family) or by panicking — panics
//! are caught and treated as failures, so "this function is total"
//! properties need no special handling.
//!
//! On failure the runner greedily shrinks the input: it asks the
//! generator for smaller candidates, keeps the first one that still
//! fails, and repeats until no candidate fails or the step budget runs
//! out. The final report names the property, the case seed, the original
//! and shrunk inputs, and the exact `DIABLO_PROP_SEED=…` incantation
//! that replays the failure.

use std::panic::{catch_unwind, AssertUnwindSafe};

use diablo_sim::DetRng;

use crate::gen::Gen;

/// A property either holds (`Ok`) or fails with an explanation.
pub type PropResult = Result<(), String>;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 100;

/// Upper bound on greedy shrink steps.
const MAX_SHRINK_STEPS: u32 = 2_000;

/// Fixed base seed: properties are deterministic run-to-run; vary
/// `DIABLO_PROP_SEED` to explore other streams.
const BASE_SEED: u64 = 0xD1AB_1005_EED0_0001;

/// SplitMix64 output function, used to spread case indices into
/// well-separated case seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parses `0x…` hex or decimal from an environment variable.
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// A configured property, ready to check a generator against a closure.
pub struct Property {
    name: String,
    cases: u32,
}

impl Property {
    /// Starts a property with the default case count
    /// ([`DEFAULT_CASES`], overridable via `DIABLO_PROP_CASES`).
    pub fn new(name: &str) -> Self {
        Property {
            name: name.to_string(),
            cases: DEFAULT_CASES,
        }
    }

    /// Sets the number of cases (still overridden by
    /// `DIABLO_PROP_CASES` when that is set).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// Runs the property over `cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics with a replayable report if any case fails.
    pub fn check<G, F>(self, gen: &G, prop: F)
    where
        G: Gen,
        F: Fn(&G::Value) -> PropResult,
    {
        // Replay mode: a single case from the exact seed given.
        if let Some(seed) = env_u64("DIABLO_PROP_SEED") {
            let value = gen.generate(&mut DetRng::new(seed));
            if let Err(cause) = run_one(&prop, &value) {
                self.fail(seed, 0, 1, value, gen, &prop, cause);
            }
            return;
        }
        let cases = env_u64("DIABLO_PROP_CASES")
            .map(|n| (n as u32).max(1))
            .unwrap_or(self.cases);
        for case in 0..cases {
            let seed = splitmix64(BASE_SEED.wrapping_add(case as u64));
            let value = gen.generate(&mut DetRng::new(seed));
            if let Err(cause) = run_one(&prop, &value) {
                self.fail(seed, case, cases, value, gen, &prop, cause);
            }
        }
    }

    /// Shrinks greedily and panics with the final report.
    fn fail<G, F>(
        &self,
        seed: u64,
        case: u32,
        cases: u32,
        original: G::Value,
        gen: &G,
        prop: &F,
        original_cause: String,
    ) -> !
    where
        G: Gen,
        F: Fn(&G::Value) -> PropResult,
    {
        let mut current = original.clone();
        let mut cause = original_cause.clone();
        let mut steps = 0u32;
        'outer: while steps < MAX_SHRINK_STEPS {
            for candidate in gen.shrink(&current) {
                steps += 1;
                if let Err(c) = run_one(prop, &candidate) {
                    current = candidate;
                    cause = c;
                    continue 'outer;
                }
                if steps >= MAX_SHRINK_STEPS {
                    break;
                }
            }
            break; // no candidate failed: fully shrunk
        }
        let shrunk = format!("{current:?}");
        let original = format!("{original:?}");
        let shrunk_line = if shrunk == original {
            String::new()
        } else {
            format!("  shrunk input:   {shrunk}\n")
        };
        panic!(
            "property '{name}' failed (case {case_no}/{cases})\n\
             \x20 replay with:    DIABLO_PROP_SEED={seed:#x} cargo test\n\
             \x20 original input: {original}\n\
             {shrunk_line}\
             \x20 cause:          {cause}",
            name = self.name,
            case_no = case + 1,
        );
    }
}

/// Runs one case, converting panics inside the property into `Err`.
fn run_one<T, F>(prop: &F, value: &T) -> PropResult
where
    F: Fn(&T) -> PropResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Checks a property with the default configuration — shorthand for
/// [`Property::new`]`(name).check(gen, prop)`.
pub fn check<G, F>(name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> PropResult,
{
    Property::new(name).check(gen, prop)
}

/// Fails the surrounding property unless the condition holds.
///
/// Expands to an early `return Err(…)`, so it can only be used inside a
/// closure returning [`PropResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n    left: {:?}\n   right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{i64s, u64s, vecs};

    #[test]
    fn passing_property_is_silent() {
        Property::new("tautology").cases(50).check(&u64s(0..=100), |v| {
            prop_assert!(*v <= 100);
            Ok(())
        });
    }

    #[test]
    fn failing_property_reports_replayable_shrunk_seed() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Property::new("deliberately_broken")
                .cases(200)
                .check(&i64s(0..=1_000_000), |v| {
                    prop_assert!(*v < 500, "value {v} reached the broken region");
                    Ok(())
                });
        }));
        let payload = outcome.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("failure report is a String");
        assert!(
            msg.contains("DIABLO_PROP_SEED=0x"),
            "report lacks a replayable seed: {msg}"
        );
        assert!(msg.contains("deliberately_broken"), "report names the property");
        // Greedy shrinking must land exactly on the boundary value.
        assert!(
            msg.contains("shrunk input:   500"),
            "report lacks the minimal counterexample: {msg}"
        );
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Property::new("panics_on_long_vecs")
                .cases(100)
                .check(&vecs(u64s(0..=9), 0..=40), |v| {
                    assert!(v.len() < 10, "vector too long");
                    Ok(())
                });
        }));
        let payload = outcome.expect_err("the property must fail");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panic: vector too long"), "cause missing: {msg}");
        assert!(msg.contains("DIABLO_PROP_SEED"), "seed missing: {msg}");
    }

    #[test]
    fn replayed_seed_reproduces_the_same_input() {
        let g = vecs(i64s(-1000..=1000), 0..=20);
        let seed = splitmix64(BASE_SEED.wrapping_add(17));
        let a = g.generate(&mut DetRng::new(seed));
        let b = g.generate(&mut DetRng::new(seed));
        assert_eq!(a, b);
    }
}
