//! In-tree property-testing and benchmarking harness.
//!
//! The workspace builds hermetically — `cargo build --release --offline`
//! from a cold registry — so its test and bench infrastructure cannot
//! depend on external crates. This crate supplies the two substrates the
//! suite needs, built on the deterministic primitives of `diablo-sim`:
//!
//! - [`prop`]: a small property-testing harness. Generators ([`gen`])
//!   draw from [`diablo_sim::DetRng`], the runner executes a configurable
//!   number of cases, and on failure it greedily shrinks the input and
//!   prints a **replayable seed**: re-running the test with
//!   `DIABLO_PROP_SEED=<seed>` reproduces exactly the failing case.
//! - [`mod@bench`]: a statistics-reporting micro/macro-benchmark harness:
//!   warmup, N timed samples, mean/p50/p99 computed by
//!   [`diablo_sim::stats`], human-readable output plus optional
//!   `BENCH_<suite>.json` line output (set `DIABLO_BENCH_JSON`).
//!
//! # Writing a property
//!
//! ```
//! use diablo_testkit::gen::{f64s, vecs};
//! use diablo_testkit::{prop_assert, Property};
//!
//! Property::new("sum_is_finite").cases(64).check(
//!     &vecs(f64s(0.0..1_000.0), 0..=30),
//!     |xs| {
//!         let sum: f64 = xs.iter().sum();
//!         prop_assert!(sum.is_finite(), "sum overflowed: {sum}");
//!         Ok(())
//!     },
//! );
//! ```
//!
//! # Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `DIABLO_PROP_CASES` | Overrides every property's case count. |
//! | `DIABLO_PROP_SEED` | Replays a single failing case (hex `0x…` or decimal). |
//! | `DIABLO_BENCH_SAMPLES` | Overrides the per-benchmark sample count. |
//! | `DIABLO_BENCH_FILTER` | Runs only benchmarks whose name contains the substring. |
//! | `DIABLO_BENCH_JSON` | Directory (or `1` for `.`) receiving `BENCH_<suite>.json`. |

#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod prop;

pub use bench::{black_box, Bench};
pub use gen::{BoxedGen, Gen};
pub use prop::{check, Property, PropResult};
