//! Random-input generators with greedy value shrinking.
//!
//! A [`Gen`] produces values from a [`DetRng`] and, for the built-in
//! combinators, knows how to propose *smaller* variants of a failing
//! value ([`Gen::shrink`]). Shrinking is value-based and greedy: the
//! property runner keeps the first candidate that still fails and
//! recurses, so integers shrink toward the low end of their range,
//! vectors lose elements, and tuples shrink one component at a time.
//!
//! Mapped generators ([`Gen::map`]) cannot invert the mapping and
//! therefore do not shrink; container-level shrinking (shorter vectors,
//! smaller tuples) still applies above them.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use diablo_sim::DetRng;

/// A generator of test inputs.
pub trait Gen {
    /// The generated value type.
    type Value: Debug + Clone;

    /// Draws one value from the generator.
    fn generate(&self, rng: &mut DetRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `value` to try during
    /// shrinking. Every candidate must itself be a value the generator
    /// could have produced. The default shrinks nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (no shrinking through the map).
    fn map<U, F>(self, f: F) -> Mapped<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Mapped { inner: self, f }
    }

    /// Type-erases the generator so heterogeneous generators of the same
    /// value type can be collected (see [`choice`]).
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased generator.
pub type BoxedGen<T> = Box<dyn Gen<Value = T>>;

impl<T: Debug + Clone> Gen for BoxedGen<T> {
    type Value = T;

    fn generate(&self, rng: &mut DetRng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------
// Constants and slices
// ---------------------------------------------------------------------

/// A generator that always yields `value`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

/// Always generates the given value.
pub fn just<T: Debug + Clone>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Debug + Clone> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut DetRng) -> T {
        self.0.clone()
    }
}

/// A generator picking uniformly from a fixed set of values.
#[derive(Debug, Clone)]
pub struct FromSlice<T> {
    values: Vec<T>,
}

/// Picks uniformly from `values`; shrinks toward earlier entries.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn from_slice<T: Debug + Clone>(values: &[T]) -> FromSlice<T> {
    assert!(!values.is_empty(), "from_slice requires at least one value");
    FromSlice {
        values: values.to_vec(),
    }
}

impl<T: Debug + Clone + PartialEq> Gen for FromSlice<T> {
    type Value = T;

    fn generate(&self, rng: &mut DetRng) -> T {
        self.values[rng.next_below(self.values.len() as u64) as usize].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // Earlier entries are "smaller".
        match self.values.iter().position(|v| v == value) {
            Some(0) | None => Vec::new(),
            Some(i) => vec![self.values[0].clone(), self.values[i / 2].clone()],
        }
    }
}

// ---------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------

/// A uniform integer generator over an inclusive range.
#[derive(Debug, Clone)]
pub struct IntGen<T> {
    lo: T,
    hi: T,
}

/// Shrink candidates for an integer in `[lo, hi]`: the origin (zero when
/// the range contains it, else `lo`), the midpoint toward the origin and
/// the predecessor — all distinct from `value`.
fn int_shrink_i128(lo: i128, value: i128) -> Vec<i128> {
    let origin = if lo <= 0 { lo.max(0) } else { lo };
    let mut out = Vec::new();
    if value != origin {
        out.push(origin);
        let mid = origin + (value - origin) / 2;
        if mid != origin && mid != value {
            out.push(mid);
        }
        let step = if value > origin { value - 1 } else { value + 1 };
        if step != origin && !out.contains(&step) {
            out.push(step);
        }
    }
    out
}

macro_rules! int_gen {
    ($fn_name:ident, $ty:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Values shrink toward zero when the range contains it, else
        /// toward the low bound.
        pub fn $fn_name(range: RangeInclusive<$ty>) -> IntGen<$ty> {
            assert!(
                range.start() <= range.end(),
                "empty range for {}",
                stringify!($fn_name)
            );
            IntGen {
                lo: *range.start(),
                hi: *range.end(),
            }
        }

        impl Gen for IntGen<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut DetRng) -> $ty {
                let span = (self.hi as i128 - self.lo as i128) as u128;
                if span == 0 {
                    return self.lo;
                }
                // Spans above u64::MAX are drawn from two words.
                let draw = if span >= u64::MAX as u128 {
                    let hi64 = rng.next_u64() as u128;
                    let lo64 = rng.next_u64() as u128;
                    ((hi64 << 64) | lo64) % (span + 1)
                } else {
                    rng.next_below(span as u64 + 1) as u128
                };
                (self.lo as i128 + draw as i128) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                int_shrink_i128(self.lo as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $ty)
                    .collect()
            }
        }
    };
}

int_gen!(u8s, u8, "Uniform `u8` in the inclusive range.");
int_gen!(u16s, u16, "Uniform `u16` in the inclusive range.");
int_gen!(u32s, u32, "Uniform `u32` in the inclusive range.");
int_gen!(u64s, u64, "Uniform `u64` in the inclusive range.");
int_gen!(usizes, usize, "Uniform `usize` in the inclusive range.");
int_gen!(i32s, i32, "Uniform `i32` in the inclusive range.");
int_gen!(i64s, i64, "Uniform `i64` in the inclusive range.");

// ---------------------------------------------------------------------
// Floats
// ---------------------------------------------------------------------

/// A uniform `f64` generator over a half-open range.
#[derive(Debug, Clone)]
pub struct F64Gen {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward the low bound.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
pub fn f64s(range: Range<f64>) -> F64Gen {
    assert!(
        range.start.is_finite() && range.end.is_finite() && range.start < range.end,
        "f64s requires a finite, non-empty range"
    );
    F64Gen {
        lo: range.start,
        hi: range.end,
    }
}

impl Gen for F64Gen {
    type Value = f64;

    fn generate(&self, rng: &mut DetRng) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.lo {
            out.push(self.lo);
            let mid = self.lo + (*value - self.lo) / 2.0;
            if mid != self.lo && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------

/// A generator of strings with parser-fuzzing character coverage.
#[derive(Debug, Clone)]
pub struct StringGen {
    min: usize,
    max: usize,
}

/// Strings of `len` characters drawn mostly from printable ASCII, with
/// occasional whitespace, control and multi-byte characters — the mix a
/// text-format parser must survive. Shrinks by dropping characters.
pub fn ascii_strings(len: RangeInclusive<usize>) -> StringGen {
    StringGen {
        min: *len.start(),
        max: *len.end(),
    }
}

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut DetRng) -> String {
        let len = rng.range_inclusive(self.min as u64, self.max as u64) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.next_below(20) {
                0 => '\n',
                1 => '\t',
                2 => ' ',
                3 => char::from_u32(rng.next_below(0xD7FF) as u32 + 1).unwrap_or('?'),
                _ => (0x20 + rng.next_below(0x5F) as u8) as char, // printable ASCII
            };
            s.push(c);
        }
        s
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        if chars.len() <= self.min {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Half-length prefix, then single-character removals.
        let half = (chars.len() / 2).max(self.min);
        if half < chars.len() {
            out.push(chars[..half].iter().collect());
        }
        for i in 0..chars.len().min(8) {
            let mut shorter = chars.clone();
            shorter.remove(i);
            out.push(shorter.into_iter().collect());
        }
        out
    }
}

// ---------------------------------------------------------------------
// Vectors
// ---------------------------------------------------------------------

/// A generator of vectors of generated elements.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    element: G,
    min: usize,
    max: usize,
}

/// Vectors with `len` elements, each drawn from `element`. Shrinks by
/// removing elements (never below the minimum length), then by shrinking
/// individual elements.
pub fn vecs<G: Gen>(element: G, len: RangeInclusive<usize>) -> VecGen<G> {
    VecGen {
        element,
        min: *len.start(),
        max: *len.end(),
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut DetRng) -> Vec<G::Value> {
        let len = rng.range_inclusive(self.min as u64, self.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: half-length prefix, single removals.
        if value.len() > self.min {
            let half = (value.len() / 2).max(self.min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len().min(16) {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks, a few candidates per position.
        for i in 0..value.len().min(16) {
            for candidate in self.element.shrink(&value[i]).into_iter().take(4) {
                let mut smaller = value.clone();
                smaller[i] = candidate;
                out.push(smaller);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Choice
// ---------------------------------------------------------------------

/// A generator picking uniformly among alternative generators.
pub struct Choice<T> {
    options: Vec<BoxedGen<T>>,
}

/// Draws each value from one of `options`, chosen uniformly — the
/// equivalent of a `one_of` combinator. Alternatives do not shrink
/// across branches (a failing value shrinks only via its container).
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn choice<T: Debug + Clone>(options: Vec<BoxedGen<T>>) -> Choice<T> {
    assert!(!options.is_empty(), "choice requires at least one option");
    Choice { options }
}

impl<T: Debug + Clone> Gen for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut DetRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------

/// A generator applying a function to another generator's output.
pub struct Mapped<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Mapped<G, F>
where
    G: Gen,
    U: Debug + Clone,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut DetRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_gen {
    ($($g:ident / $v:ident / $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut DetRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx).into_iter().take(6) {
                        let mut smaller = value.clone();
                        smaller.$idx = candidate;
                        out.push(smaller);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(G0 / V0 / 0);
tuple_gen!(G0 / V0 / 0, G1 / V1 / 1);
tuple_gen!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2);
tuple_gen!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2, G3 / V3 / 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(99)
    }

    #[test]
    fn ints_stay_in_range() {
        let g = i64s(-50..=75);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = g.generate(&mut r);
            assert!((-50..=75).contains(&v));
        }
    }

    #[test]
    fn huge_spans_cover_both_halves() {
        let g = i64s(0..=1_000_000_000_000);
        let mut r = rng();
        let mut high = false;
        for _ in 0..1_000 {
            if g.generate(&mut r) > 500_000_000_000 {
                high = true;
            }
        }
        assert!(high, "never drew from the upper half of a wide range");
    }

    #[test]
    fn int_shrink_moves_toward_origin() {
        let g = i64s(-100..=100);
        for candidate in g.shrink(&64) {
            assert!(candidate.abs() < 64 || candidate == 63);
        }
        assert!(g.shrink(&0).is_empty());
        // Positive-only range shrinks toward its low bound.
        let g = u64s(10..=1000);
        assert!(g.shrink(&10).is_empty());
        assert!(g.shrink(&500).contains(&10));
    }

    #[test]
    fn vec_lengths_and_shrinks_respect_min() {
        let g = vecs(u8s(0..=255), 2..=5);
        let mut r = rng();
        for _ in 0..1_000 {
            let v = g.generate(&mut r);
            assert!((2..=5).contains(&v.len()));
        }
        for candidate in g.shrink(&vec![9, 8, 7]) {
            assert!(candidate.len() >= 2);
        }
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let g = (u64s(0..=100), u64s(0..=100));
        for (a, b) in g.shrink(&(50, 60)) {
            assert!((a, b) != (50, 60));
            assert!(a == 50 || b == 60, "both components changed at once");
        }
    }

    #[test]
    fn choice_covers_all_branches() {
        let g = choice(vec![
            just(1u8).boxed(),
            just(2u8).boxed(),
            u8s(10..=20).boxed(),
        ]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            match g.generate(&mut r) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=20 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn strings_respect_length_bounds() {
        let g = ascii_strings(0..=40);
        let mut r = rng();
        for _ in 0..500 {
            assert!(g.generate(&mut r).chars().count() <= 40);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vecs(i64s(-1000..=1000), 0..=20);
        let a = g.generate(&mut DetRng::new(7));
        let b = g.generate(&mut DetRng::new(7));
        assert_eq!(a, b);
    }
}
