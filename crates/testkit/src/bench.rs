//! A statistics-reporting benchmark harness.
//!
//! Each `[[bench]]` target with `harness = false` builds a [`Bench`]
//! suite, registers closures, and calls [`Bench::finish`]. For every
//! benchmark the harness:
//!
//! 1. warms up and estimates the per-call cost,
//! 2. picks an iteration count so each timed sample is long enough to
//!    measure (~2 ms, or a single call for slow macrobenchmarks),
//! 3. records N samples and reports mean/p50/p99 through
//!    [`diablo_sim::stats::Summary`] and [`diablo_sim::stats::Cdf`].
//!
//! Output is one human-readable line per benchmark; with
//! `DIABLO_BENCH_JSON` set, [`Bench::finish`] additionally writes
//! `BENCH_<suite>.json` — one JSON object per line — so runs can be
//! compared or plotted. A substring filter is taken from the first
//! non-flag CLI argument (`cargo bench -- mempool`) or from
//! `DIABLO_BENCH_FILTER`.

use std::time::Instant;

use diablo_sim::stats::{Cdf, Summary};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 20;

/// Target duration of one timed sample, in nanoseconds.
const TARGET_SAMPLE_NS: f64 = 2_000_000.0;

/// Ceiling on iterations per sample.
const MAX_ITERS: u64 = 1_000_000;

/// One benchmark's aggregated measurements (nanoseconds per call).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `mempool/admit_10k/bounded`.
    pub name: String,
    /// Mean ns per call.
    pub mean_ns: f64,
    /// Median ns per call.
    pub p50_ns: f64,
    /// 99th-percentile ns per call.
    pub p99_ns: f64,
    /// Fastest sample, ns per call.
    pub min_ns: f64,
    /// Slowest sample, ns per call.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations averaged within each sample.
    pub iters: u64,
    /// Work items processed per call (transactions, operations; 0 =
    /// unspecified). Regression gates compare two runs of a benchmark
    /// only when their item counts match — a smoke-sized run must never
    /// be measured against a full-scale baseline.
    pub items: u64,
}

impl BenchResult {
    /// Renders the result as one `BENCH_*.json` line.
    pub fn to_json_line(&self, suite: &str) -> String {
        format!(
            "{{\"suite\":\"{}\",\"name\":\"{}\",\"mean_ns\":{:.1},\"p50_ns\":{:.1},\
             \"p99_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters\":{},\
             \"items\":{}}}",
            escape(suite),
            escape(&self.name),
            self.mean_ns,
            self.p50_ns,
            self.p99_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters,
            self.items
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A benchmark suite under construction.
pub struct Bench {
    suite: String,
    samples: usize,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Starts a suite named `suite` (names the `BENCH_<suite>.json`
    /// output file), reading filter and sample-count overrides from the
    /// environment and CLI arguments.
    pub fn suite(suite: &str) -> Self {
        let filter = std::env::var("DIABLO_BENCH_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        let samples = std::env::var("DIABLO_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLES)
            .max(2);
        Bench {
            suite: suite.to_string(),
            samples,
            filter,
            results: Vec::new(),
        }
    }

    /// Sets the sample count for subsequent benchmarks (sticky, like a
    /// bench group's sample size). `DIABLO_BENCH_SAMPLES` wins.
    pub fn samples(&mut self, samples: usize) -> &mut Self {
        if std::env::var("DIABLO_BENCH_SAMPLES").is_err() {
            self.samples = samples.max(2);
        }
        self
    }

    fn skipped(&self, name: &str) -> bool {
        matches!(&self.filter, Some(f) if !name.contains(f.as_str()))
    }

    /// Benchmarks a closure: the whole closure body is timed.
    pub fn bench<T>(&mut self, name: &str, routine: impl FnMut() -> T) {
        self.bench_items(name, 0, routine);
    }

    /// Benchmarks a closure that processes `items` work items per call
    /// (recorded in the result for shape-matched regression gating).
    pub fn bench_items<T>(&mut self, name: &str, items: u64, mut routine: impl FnMut() -> T) {
        if self.skipped(name) {
            return;
        }
        // Warmup and per-call cost estimate.
        let started = Instant::now();
        black_box(routine());
        let estimate_ns = started.elapsed().as_nanos().max(1) as f64;
        let iters = ((TARGET_SAMPLE_NS / estimate_ns) as u64).clamp(1, MAX_ITERS);

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            sample_ns.push(started.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(name, sample_ns, iters, items);
    }

    /// Benchmarks a closure against fresh input from `setup` on every
    /// call; only the `routine` portion is timed.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if self.skipped(name) {
            return;
        }
        // Warmup (setup cost excluded from the estimate and samples).
        black_box(routine(setup()));

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            sample_ns.push(started.elapsed().as_nanos() as f64);
        }
        self.record(name, sample_ns, 1, 0);
    }

    fn record(&mut self, name: &str, sample_ns: Vec<f64>, iters: u64, items: u64) {
        let mut summary = Summary::new();
        for &s in &sample_ns {
            summary.record(s);
        }
        let samples = sample_ns.len();
        let cdf = Cdf::from_samples(sample_ns);
        let result = BenchResult {
            name: name.to_string(),
            mean_ns: summary.mean(),
            p50_ns: cdf.quantile(0.5).unwrap_or(0.0),
            p99_ns: cdf.quantile(0.99).unwrap_or(0.0),
            min_ns: summary.min(),
            max_ns: summary.max(),
            samples,
            iters,
            items,
        };
        println!(
            "{:<48} mean {:>10}  p50 {:>10}  p99 {:>10}  ({} × {} iters)",
            result.name,
            fmt_ns(result.mean_ns),
            fmt_ns(result.p50_ns),
            fmt_ns(result.p99_ns),
            result.samples,
            result.iters
        );
        self.results.push(result);
    }

    /// Finishes the suite: writes `BENCH_<suite>.json` when
    /// `DIABLO_BENCH_JSON` names a directory (`1` means the current
    /// directory) and returns the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Ok(dest) = std::env::var("DIABLO_BENCH_JSON") {
            let dir = if dest == "1" { ".".to_string() } else { dest };
            let path = format!("{dir}/BENCH_{}.json", self.suite);
            let lines: String = self
                .results
                .iter()
                .map(|r| r.to_json_line(&self.suite) + "\n")
                .collect();
            if let Err(e) = std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(&path, lines))
            {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("wrote {path}");
            }
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let mut b = Bench::suite("selftest");
        b.filter = None; // the test binary's own CLI args are not a filter
        b.samples(3);
        b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        b.bench_batched("batched", || vec![1u8; 64], |v| v.len());
        let results = b.finish();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.mean_ns > 0.0);
            assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.max_ns);
            assert_eq!(r.samples, 3);
        }
    }

    #[test]
    fn json_lines_are_well_formed() {
        let r = BenchResult {
            name: "group/case".into(),
            mean_ns: 1234.5,
            p50_ns: 1200.0,
            p99_ns: 1300.0,
            min_ns: 1100.0,
            max_ns: 1400.0,
            samples: 20,
            iters: 100,
            items: 5_000,
        };
        let line = r.to_json_line("suite");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"group/case\""));
        assert!(line.contains("\"mean_ns\":1234.5"));
        assert!(line.contains("\"items\":5000"));
    }

    #[test]
    fn items_are_recorded() {
        let mut b = Bench::suite("selftest");
        b.filter = None;
        b.samples(2);
        b.bench_items("sized", 7, || 1u8);
        b.bench("unsized", || 1u8);
        let results = b.finish();
        assert_eq!(results[0].items, 7);
        assert_eq!(results[1].items, 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut b = Bench::suite("selftest");
        b.filter = Some("nomatch".into());
        b.samples(2);
        b.bench("other", || 1u8);
        assert!(b.finish().is_empty());
    }
}
