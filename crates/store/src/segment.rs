//! Append-only segmented logs, the static-file layer of the store.
//!
//! Block headers and receipts are immutable once committed, so they are
//! written to fixed-span *segments* (reth's static files, NVMf-style):
//! each segment owns a contiguous height range and packs its records
//! into one byte buffer plus an offset index. Random access is two
//! array lookups; pruning drops whole segments at the front, never
//! rewrites one — which is what makes the prune stage O(segments
//! dropped), independent of how much data each held.
//!
//! The buffers are in-memory stand-ins for files: the simulator models
//! data-layout cost (resident bytes, records, segment churn), it does
//! not do I/O.

use std::collections::VecDeque;

/// One contiguous run of records, `seg_blocks` heights wide.
#[derive(Debug, Clone)]
struct Segment {
    /// Height of the first record in this segment.
    first: u64,
    /// Concatenated record payloads.
    buf: Vec<u8>,
    /// `(offset, len)` of each record within `buf`, in height order.
    index: Vec<(u32, u32)>,
}

/// An append-only log of per-height byte records in fixed-span
/// segments.
#[derive(Debug, Clone)]
pub struct SegmentedLog {
    seg_blocks: u64,
    segments: VecDeque<Segment>,
    /// Next height expected by [`SegmentedLog::append`]; heights start
    /// at 1, matching the chains' genesis convention.
    next_height: u64,
    pruned_records: u64,
    pruned_bytes: u64,
}

impl SegmentedLog {
    /// A new empty log cutting a fresh segment every `seg_blocks`
    /// heights (min 1).
    pub fn new(seg_blocks: u64) -> SegmentedLog {
        SegmentedLog {
            seg_blocks: seg_blocks.max(1),
            segments: VecDeque::new(),
            next_height: 1,
            pruned_records: 0,
            pruned_bytes: 0,
        }
    }

    /// Which segment-first height covers `height`.
    fn segment_first(&self, height: u64) -> u64 {
        // Heights start at 1, so segment boundaries fall at
        // 1, 1+span, 1+2*span, ...
        (height - 1) / self.seg_blocks * self.seg_blocks + 1
    }

    /// Appends the record for the next height and returns that height.
    ///
    /// The log is strictly sequential by design — blocks commit in
    /// order — so there is no `append_at`.
    pub fn append(&mut self, bytes: &[u8]) -> u64 {
        let height = self.next_height;
        self.next_height += 1;
        let first = self.segment_first(height);
        let cut_new = match self.segments.back() {
            Some(seg) => seg.first != first,
            None => true,
        };
        if cut_new {
            self.segments.push_back(Segment {
                first,
                buf: Vec::new(),
                index: Vec::new(),
            });
        }
        let seg = self.segments.back_mut().expect("segment just ensured");
        let offset = seg.buf.len() as u32;
        seg.buf.extend_from_slice(bytes);
        seg.index.push((offset, bytes.len() as u32));
        height
    }

    /// The record at `height`, or `None` if never written or pruned.
    pub fn get(&self, height: u64) -> Option<&[u8]> {
        if height == 0 || height >= self.next_height {
            return None;
        }
        let first = self.segment_first(height);
        // Front segments may be pruned; binary search over the (sorted)
        // remaining firsts.
        let idx = self
            .segments
            .binary_search_by_key(&first, |s| s.first)
            .ok()?;
        let seg = &self.segments[idx];
        let (offset, len) = *seg.index.get((height - seg.first) as usize)?;
        Some(&seg.buf[offset as usize..(offset + len) as usize])
    }

    /// Drops every segment that lies entirely below `horizon` (the
    /// first height that must stay resident). Partial segments are
    /// kept whole — pruning never rewrites a segment.
    pub fn prune_below(&mut self, horizon: u64) -> u64 {
        let mut dropped = 0;
        while let Some(seg) = self.segments.front() {
            let seg_end = seg.first + seg.index.len() as u64; // exclusive
            let full = seg.index.len() as u64 == self.seg_blocks;
            if full && seg_end <= horizon {
                self.pruned_records += seg.index.len() as u64;
                self.pruned_bytes += seg.buf.len() as u64;
                self.segments.pop_front();
                dropped += 1;
            } else {
                break;
            }
        }
        dropped
    }

    /// Height the next append will receive.
    pub fn next_height(&self) -> u64 {
        self.next_height
    }

    /// Records currently resident (appended minus pruned).
    pub fn resident_records(&self) -> u64 {
        self.segments.iter().map(|s| s.index.len() as u64).sum()
    }

    /// Payload bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.buf.len() as u64).sum()
    }

    /// Segments currently resident.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Records dropped by pruning so far.
    pub fn pruned_records(&self) -> u64 {
        self.pruned_records
    }

    /// Payload bytes dropped by pruning so far.
    pub fn pruned_bytes(&self) -> u64 {
        self.pruned_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(height: u64) -> Vec<u8> {
        // Variable-length so offsets are exercised.
        let mut v = height.to_le_bytes().to_vec();
        v.extend(std::iter::repeat(height as u8).take((height % 5) as usize));
        v
    }

    #[test]
    fn append_get_round_trip() {
        let mut log = SegmentedLog::new(4);
        for h in 1..=11 {
            assert_eq!(log.append(&rec(h)), h);
        }
        for h in 1..=11 {
            assert_eq!(log.get(h), Some(rec(h).as_slice()), "height {h}");
        }
        assert_eq!(log.get(0), None);
        assert_eq!(log.get(12), None);
        // Heights 1..=11 at 4/segment: [1..4][5..8][9..11].
        assert_eq!(log.segment_count(), 3);
        assert_eq!(log.resident_records(), 11);
    }

    #[test]
    fn prune_drops_whole_cold_segments_only() {
        let mut log = SegmentedLog::new(4);
        for h in 1..=11 {
            log.append(&rec(h));
        }
        let before_bytes = log.resident_bytes();
        // Horizon 6: segment [1..4] is entirely below it, [5..8] is not.
        assert_eq!(log.prune_below(6), 1);
        assert_eq!(log.segment_count(), 2);
        assert_eq!(log.get(3), None);
        assert_eq!(log.get(5), Some(rec(5).as_slice()));
        assert_eq!(log.pruned_records(), 4);
        assert_eq!(
            log.resident_bytes() + log.pruned_bytes(),
            before_bytes,
            "bytes are moved to the pruned counter, not lost"
        );
        // The live tail segment is never pruned even when below horizon.
        assert_eq!(log.prune_below(u64::MAX), 1);
        assert_eq!(log.segment_count(), 1);
        assert_eq!(log.get(9), Some(rec(9).as_slice()));
    }

    #[test]
    fn appends_continue_after_prune() {
        let mut log = SegmentedLog::new(2);
        for h in 1..=6 {
            log.append(&rec(h));
        }
        log.prune_below(5);
        assert_eq!(log.append(&rec(7)), 7);
        assert_eq!(log.get(7), Some(rec(7).as_slice()));
        assert_eq!(log.next_height(), 8);
    }
}
