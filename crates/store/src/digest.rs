//! A deterministic 256-bit digest.
//!
//! The workspace is hermetic — no external crypto — so state roots are
//! built on a keyed 4-lane mixing function (splitmix64 finalizers with
//! cross-lane diffusion and length padding). It is **not**
//! cryptographic: the adversary model of a benchmark suite is bit-rot
//! and nondeterminism, not forgery. What matters here is that the
//! digest is stable across platforms, wide enough that collisions never
//! occur by accident, and sensitive to order, length and every input
//! bit — which the avalanche tests below check.

use std::fmt;

/// A 256-bit digest as four little-endian lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u64; 4]);

/// Per-lane multipliers (odd constants from splitmix64 / xxhash).
const LANE_KEYS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xc2b2_ae3d_27d4_eb4f,
];

/// splitmix64's finalizer: the core bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Incremental digest builder: absorb words, then finish.
#[derive(Debug, Clone)]
pub struct Absorber {
    lanes: [u64; 4],
    words: u64,
}

impl Absorber {
    /// A fresh absorber under a domain-separation `tag` (different tags
    /// produce unrelated digests for identical input).
    pub fn new(tag: u64) -> Absorber {
        Absorber {
            lanes: [
                mix(tag ^ LANE_KEYS[0]),
                mix(tag ^ LANE_KEYS[1]),
                mix(tag ^ LANE_KEYS[2]),
                mix(tag ^ LANE_KEYS[3]),
            ],
            words: 0,
        }
    }

    /// Absorbs one 64-bit word.
    pub fn absorb(&mut self, word: u64) {
        self.words = self.words.wrapping_add(1);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            // Position-dependent rotation keeps the lanes from
            // computing four copies of the same function.
            let salted = word.wrapping_mul(LANE_KEYS[i]).rotate_left(i as u32 * 17 + 1);
            *lane = mix(*lane ^ salted);
        }
    }

    /// Absorbs a byte slice as zero-padded little-endian words plus the
    /// exact byte length (so `"ab"` and `"ab\0"` differ).
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(w));
        }
        self.absorb(bytes.len() as u64 ^ 0x6279_7465_735f_6c65); // "bytes_le"
    }

    /// Finishes: length padding, then two cross-lane diffusion rounds.
    pub fn finish(mut self) -> Digest {
        let n = self.words;
        self.absorb(n ^ 0x6c65_6e67_7468_5f70); // "length_p"
        for _ in 0..2 {
            let [a, b, c, d] = self.lanes;
            self.lanes = [mix(a ^ b), mix(b ^ c), mix(c ^ d), mix(d ^ a)];
        }
        Digest(self.lanes)
    }
}

impl Digest {
    /// The all-zero digest (chain-root seed).
    pub const ZERO: Digest = Digest([0; 4]);

    /// Digest of a word sequence under `tag`.
    pub fn of_words(tag: u64, words: &[u64]) -> Digest {
        let mut a = Absorber::new(tag);
        for &w in words {
            a.absorb(w);
        }
        a.finish()
    }

    /// Digest of a byte string under `tag`.
    pub fn of_bytes(tag: u64, bytes: &[u8]) -> Digest {
        let mut a = Absorber::new(tag);
        a.absorb_bytes(bytes);
        a.finish()
    }

    /// Combines two digests into a parent (ordered: `combine(a, b)` and
    /// `combine(b, a)` differ).
    pub fn combine(a: &Digest, b: &Digest) -> Digest {
        let mut h = Absorber::new(0x6e6f_6465); // "node"
        for &w in &a.0 {
            h.absorb(w);
        }
        for &w in &b.0 {
            h.absorb(w);
        }
        h.finish()
    }

    /// 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for lane in self.0 {
            s.push_str(&format!("{lane:016x}"));
        }
        s
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        // Pinned values: a digest change is a cross-version break of
        // every checked-in root, so it must be deliberate.
        let a = Digest::of_words(1, &[1, 2, 3]);
        let b = Digest::of_words(1, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.to_hex().len(), 64);
    }

    #[test]
    fn order_length_and_tag_matter() {
        assert_ne!(Digest::of_words(1, &[1, 2]), Digest::of_words(1, &[2, 1]));
        assert_ne!(Digest::of_words(1, &[1]), Digest::of_words(1, &[1, 0]));
        assert_ne!(Digest::of_words(1, &[]), Digest::of_words(2, &[]));
        assert_ne!(
            Digest::of_bytes(1, b"ab"),
            Digest::of_bytes(1, b"ab\0"),
            "byte-length padding"
        );
    }

    #[test]
    fn combine_is_ordered_and_distinct_from_leaves() {
        let a = Digest::of_words(1, &[7]);
        let b = Digest::of_words(1, &[9]);
        let ab = Digest::combine(&a, &b);
        assert_ne!(ab, Digest::combine(&b, &a));
        assert_ne!(ab, a);
        assert_ne!(ab, b);
    }

    #[test]
    fn single_bit_flips_avalanche() {
        let base = Digest::of_words(0, &[0]);
        for bit in 0..64 {
            let flipped = Digest::of_words(0, &[1u64 << bit]);
            let differing: u32 = base
                .0
                .iter()
                .zip(flipped.0)
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
            // A good mixer flips ~128 of 256 bits; anything above 64 is
            // far beyond accidental correlation.
            assert!(differing > 64, "bit {bit}: only {differing} bits changed");
        }
    }
}
