//! Append-only storage engine for the Diablo benchmark suite.
//!
//! Before this crate, every simulated chain kept all of its state in
//! resident `ContractState` maps and per-transaction record vectors —
//! which caps the paper's million-user scenarios on memory, and leaves
//! data-model cost invisible inside consensus cost (the separation
//! BLOCKBENCH argues for). `diablo-store` is the reth-shaped answer,
//! scaled to the simulator:
//!
//! - [`SegmentedLog`]: static-file-style append-only segments for block
//!   headers and receipts, pruned a whole segment at a time;
//! - [`FlatTable`]: a dense-id accounts table in fixed pages with a
//!   bounded hot set — cold pages freeze into varint-packed byte blobs
//!   (the in-memory stand-in for being on disk) and thaw on demand;
//! - [`trie`]: per-block Merkle state roots over sorted key/value pairs,
//!   so experiments can verify state integrity across executors, queue
//!   backends and prune modes;
//! - [`PruneMode`]: full / distance(n) / before-block retention, the
//!   knob that bounds resident state so a million-account run no longer
//!   needs a million resident objects;
//! - [`StateStore`]: the staged commit driver gluing the above into the
//!   execute → merkleize → persist → prune pipeline `diablo-chains`
//!   runs per committed block.
//!
//! Everything here is deterministic and integer-only: the same run
//! produces byte-identical roots and reports at any worker count, on
//! either event-queue backend, under any prune mode.

#![warn(missing_docs)]

pub mod digest;
pub mod prune;
pub mod segment;
pub mod store;
pub mod table;
pub mod trie;

pub use digest::Digest;
pub use prune::PruneMode;
pub use segment::SegmentedLog;
pub use store::{BlockRoots, ReceiptRec, StateStore, StorageConfig, StorageReport};
pub use table::FlatTable;
