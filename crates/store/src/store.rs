//! The staged commit driver: execute → merkleize → persist → prune.
//!
//! `diablo-chains` calls [`StateStore::commit_block`] once per
//! committed block, *after* executing it. The store then runs three
//! telemetry-spanned stages:
//!
//! 1. **merkleize** — fold the post-execution contract state into a
//!    Merkle [`trie`] root, hash the receipts, digest the
//!    touched-accounts delta, and chain everything into a running
//!    `block_root`. Roots are computed before anything is pruned, so
//!    they are identical under every [`PruneMode`].
//! 2. **persist** — append the block header and packed receipts to
//!    their [`SegmentedLog`]s, mirror the state into the flat
//!    [`PagedState`] storage table, and bump the touched accounts in
//!    the [`FlatTable`].
//! 3. **prune** — drop whole segments below the prune horizon and
//!    freeze the accounts table down to its hot-page cap.
//!
//! Every stage is deterministic and integer-only; a run with the store
//! enabled reports byte-identical roots at any worker count, on either
//! event-queue backend, under any prune mode.

use diablo_telemetry::{counter, gauge, span};
use diablo_vm::{ContractState, PagedState, StateLimits};

use crate::digest::Digest;
use crate::prune::PruneMode;
use crate::segment::SegmentedLog;
use crate::table::FlatTable;
use crate::trie;

/// Bytes of one block header record: height, committed-at micros,
/// tx count, payload bytes, state root, receipts root.
pub const BLOCK_HEADER_BYTES: usize = 8 + 8 + 4 + 4 + 32 + 32;

/// Bytes of one packed receipt: id, gas, flags.
pub const RECEIPT_BYTES: usize = 4 + 8 + 1;

/// Domain tag of receipt digests.
const RECEIPT_TAG: u64 = 0x7263_7074; // "rcpt"
/// Domain tag of the blob-accounting digest folded into state roots.
const BLOB_TAG: u64 = 0x626c_6f62; // "blob"
/// Domain tag of the touched-accounts delta digest.
const TOUCH_TAG: u64 = 0x746f_7563_68; // "touch"

/// Storage engine configuration (the spec's `storage:` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// History retention policy.
    pub prune: PruneMode,
    /// Heights per static-file segment.
    pub segment_blocks: u64,
    /// Hot-page cap of the accounts table.
    pub hot_pages: usize,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            prune: PruneMode::Full,
            segment_blocks: 64,
            hot_pages: 64,
        }
    }
}

/// What execution produced for one transaction, as the store sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiptRec {
    /// Dense workload id of the transaction's sender.
    pub id: u32,
    /// Whether the call committed.
    pub ok: bool,
    /// Gas consumed.
    pub gas: u64,
}

impl ReceiptRec {
    fn digest(&self) -> Digest {
        Digest::of_words(RECEIPT_TAG, &[u64::from(self.id), self.gas, u64::from(self.ok)])
    }

    fn pack(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.gas.to_le_bytes());
        out.push(u8::from(self.ok));
    }
}

/// The roots [`StateStore::commit_block`] computes for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRoots {
    /// Merkle root of the post-block contract state.
    pub state_root: Digest,
    /// Merkle root of the block's receipts.
    pub receipts_root: Digest,
    /// Running chain root after this block.
    pub block_root: Digest,
}

/// End-of-run storage summary, embedded in the run report when the
/// store is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    /// Prune mode, in [`PruneMode::parse`] grammar.
    pub mode: String,
    /// Final chain root, 64 hex chars.
    pub root_hex: String,
    /// Blocks committed through the store.
    pub blocks: u64,
    /// Receipts persisted.
    pub txs: u64,
    /// Block records still resident after pruning.
    pub resident_blocks: u64,
    /// Resident bytes across block/receipt segments and frozen pages.
    pub resident_bytes: u64,
    /// Block records dropped by pruning.
    pub pruned_blocks: u64,
    /// Hot pages in the accounts table.
    pub hot_pages: u64,
    /// Frozen pages in the accounts table.
    pub frozen_pages: u64,
    /// Entries in the flat storage table.
    pub storage_entries: u64,
}

/// The append-only state store: segments, tables, roots and pruning
/// behind one per-block entry point.
#[derive(Debug, Clone)]
pub struct StateStore {
    config: StorageConfig,
    blocks: SegmentedLog,
    receipts: SegmentedLog,
    accounts: FlatTable,
    /// Flat mirror of the contract storage table, paged like the real
    /// thing (the executors keep running on `ContractState`
    /// bit-identically; this is the persisted copy).
    storage: PagedState,
    chain_root: Digest,
    last_state_root: Digest,
    txs: u64,
}

impl StateStore {
    /// A fresh store under `config`.
    pub fn new(config: StorageConfig) -> StateStore {
        StateStore {
            config,
            blocks: SegmentedLog::new(config.segment_blocks),
            receipts: SegmentedLog::new(config.segment_blocks),
            accounts: FlatTable::new(),
            storage: PagedState::new(),
            chain_root: Digest::ZERO,
            last_state_root: trie::empty_root(),
            txs: 0,
        }
    }

    /// Commits one executed block through the merkleize → persist →
    /// prune stages.
    ///
    /// `state` is the post-block contract state (`None` for chains
    /// without a deployed contract — the previous state root carries
    /// over). `touched` lists `(sender_id, tx_count)` pairs of the
    /// block, sorted by id. Heights are sequential from 1.
    pub fn commit_block(
        &mut self,
        height: u64,
        committed_us: u64,
        block_bytes: u32,
        recs: &[ReceiptRec],
        state: Option<&ContractState>,
        touched: &[(u32, u32)],
    ) -> BlockRoots {
        debug_assert_eq!(height, self.blocks.next_height(), "blocks commit in order");
        debug_assert!(
            touched.windows(2).all(|w| w[0].0 < w[1].0),
            "touched accounts must be sorted by id"
        );

        // Stage 1: merkleize. Roots never look at pruned data — they
        // are a pure function of this block's execution output.
        let (state_root, receipts_root) = {
            span!("store.merkleize");
            let state_root = match state {
                Some(s) => {
                    let entries_root = trie::root(&s.sorted_entries());
                    let blobs = Digest::of_words(BLOB_TAG, &[s.blob_bytes(), s.blob_count()]);
                    Digest::combine(&entries_root, &blobs)
                }
                None => self.last_state_root,
            };
            let receipts_root =
                trie::root_of_digests(recs.iter().map(ReceiptRec::digest).collect());
            let mut flat = Vec::with_capacity(touched.len() * 2);
            for &(id, n) in touched {
                flat.push(u64::from(id));
                flat.push(u64::from(n));
            }
            let touched_digest = Digest::of_words(TOUCH_TAG, &flat);
            let content = Digest::combine(
                &Digest::combine(&state_root, &receipts_root),
                &touched_digest,
            );
            self.chain_root = Digest::combine(&self.chain_root, &content);
            self.last_state_root = state_root;
            (state_root, receipts_root)
        };

        // Stage 2: persist.
        {
            span!("store.persist");
            let mut header = Vec::with_capacity(BLOCK_HEADER_BYTES);
            header.extend_from_slice(&height.to_le_bytes());
            header.extend_from_slice(&committed_us.to_le_bytes());
            header.extend_from_slice(&(recs.len() as u32).to_le_bytes());
            header.extend_from_slice(&block_bytes.to_le_bytes());
            for lane in state_root.0 {
                header.extend_from_slice(&lane.to_le_bytes());
            }
            for lane in receipts_root.0 {
                header.extend_from_slice(&lane.to_le_bytes());
            }
            debug_assert_eq!(header.len(), BLOCK_HEADER_BYTES);
            self.blocks.append(&header);

            let mut packed = Vec::with_capacity(recs.len() * RECEIPT_BYTES);
            for rec in recs {
                rec.pack(&mut packed);
            }
            self.receipts.append(&packed);
            self.txs += recs.len() as u64;

            if let Some(s) = state {
                let limits = StateLimits::unbounded();
                for (k, v) in s.sorted_entries() {
                    self.storage.store(k, v, &limits);
                }
            }
            for &(id, n) in touched {
                self.accounts.increment(id, u64::from(n), height);
            }
        }

        // Stage 3: prune.
        {
            span!("store.prune");
            let horizon = self.config.prune.horizon(height);
            let dropped =
                self.blocks.prune_below(horizon) + self.receipts.prune_below(horizon);
            self.accounts.enforce_cap(self.config.hot_pages);
            counter!("store.pruned_segments", dropped);
        }

        counter!("store.blocks");
        counter!("store.txs", recs.len() as u64);
        gauge!("store.resident_bytes", self.resident_bytes() as i64);
        gauge!("store.hot_pages", self.accounts.hot_pages() as i64);

        BlockRoots {
            state_root,
            receipts_root,
            block_root: self.chain_root,
        }
    }

    /// Resident bytes across both segment logs and frozen table pages.
    pub fn resident_bytes(&self) -> u64 {
        self.blocks.resident_bytes() + self.receipts.resident_bytes() + self.accounts.frozen_bytes()
    }

    /// The running chain root.
    pub fn chain_root(&self) -> Digest {
        self.chain_root
    }

    /// State root of the most recently committed block.
    pub fn last_state_root(&self) -> Digest {
        self.last_state_root
    }

    /// The store's configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// The block-header log.
    pub fn blocks(&self) -> &SegmentedLog {
        &self.blocks
    }

    /// The receipts log.
    pub fn receipts(&self) -> &SegmentedLog {
        &self.receipts
    }

    /// The flat accounts table.
    pub fn accounts(&self) -> &FlatTable {
        &self.accounts
    }

    /// The persisted storage-table mirror.
    pub fn storage(&self) -> &PagedState {
        &self.storage
    }

    /// The end-of-run summary for the report.
    pub fn report(&self) -> StorageReport {
        StorageReport {
            mode: self.config.prune.to_string(),
            root_hex: self.chain_root.to_hex(),
            blocks: self.blocks.next_height() - 1,
            txs: self.txs,
            resident_blocks: self.blocks.resident_records(),
            resident_bytes: self.resident_bytes(),
            pruned_blocks: self.blocks.pruned_records(),
            hot_pages: self.accounts.hot_pages() as u64,
            frozen_pages: self.accounts.frozen_pages() as u64,
            storage_entries: self.storage.entry_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::ContractState;

    fn demo_state(n: i64) -> ContractState {
        let lim = StateLimits::unbounded();
        let mut s = ContractState::new();
        for k in 0..n {
            s.store(k * 3 - 7, k + 1, &lim);
        }
        s
    }

    fn run_blocks(mode: PruneMode, blocks: u64) -> StateStore {
        let mut store = StateStore::new(StorageConfig {
            prune: mode,
            segment_blocks: 4,
            hot_pages: 2,
        });
        for h in 1..=blocks {
            let state = demo_state(h as i64 % 7 + 1);
            let recs: Vec<ReceiptRec> = (0..3)
                .map(|i| ReceiptRec {
                    id: (h as u32 * 3 + i) % 11,
                    ok: i != 2,
                    gas: 21_000 + h * 10 + u64::from(i),
                })
                .collect();
            let touched: Vec<(u32, u32)> = {
                let mut t: Vec<u32> = recs.iter().map(|r| r.id).collect();
                t.sort_unstable();
                t.dedup();
                t.into_iter().map(|id| (id, 1)).collect()
            };
            store.commit_block(h, h * 1_000, 96, &recs, Some(&state), &touched);
        }
        store
    }

    #[test]
    fn roots_are_identical_across_prune_modes() {
        let full = run_blocks(PruneMode::Full, 40);
        let distance = run_blocks(PruneMode::Distance(5), 40);
        let before = run_blocks(PruneMode::Before(30), 40);
        assert_eq!(full.chain_root(), distance.chain_root());
        assert_eq!(full.chain_root(), before.chain_root());
        assert_eq!(full.last_state_root(), distance.last_state_root());
        // But the pruned stores hold less.
        assert!(distance.report().resident_blocks < full.report().resident_blocks);
        assert!(distance.report().pruned_blocks > 0);
        assert_eq!(full.report().pruned_blocks, 0);
    }

    #[test]
    fn empty_blocks_carry_the_state_root_forward() {
        let mut store = StateStore::new(StorageConfig::default());
        let state = demo_state(5);
        let r1 = store.commit_block(1, 10, 32, &[], Some(&state), &[]);
        // An empty block with no contract snapshot reuses the root.
        let r2 = store.commit_block(2, 20, 0, &[], None, &[]);
        assert_eq!(r1.state_root, r2.state_root);
        assert_ne!(r1.block_root, r2.block_root, "chain root still advances");
    }

    #[test]
    fn headers_and_receipts_round_trip() {
        let store = run_blocks(PruneMode::Full, 6);
        let header = store.blocks().get(3).expect("height 3 resident");
        assert_eq!(header.len(), BLOCK_HEADER_BYTES);
        assert_eq!(u64::from_le_bytes(header[0..8].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(header[8..16].try_into().unwrap()), 3_000);
        assert_eq!(u32::from_le_bytes(header[16..20].try_into().unwrap()), 3);
        let receipts = store.receipts().get(3).expect("receipts resident");
        assert_eq!(receipts.len(), 3 * RECEIPT_BYTES);
        assert_eq!(
            u64::from_le_bytes(receipts[4..12].try_into().unwrap()),
            21_030
        );
    }

    #[test]
    fn report_counts_line_up() {
        let store = run_blocks(PruneMode::Distance(8), 20);
        let rep = store.report();
        assert_eq!(rep.mode, "distance=8");
        assert_eq!(rep.blocks, 20);
        assert_eq!(rep.txs, 60);
        assert_eq!(rep.root_hex.len(), 64);
        assert_eq!(rep.resident_blocks + rep.pruned_blocks, 20);
        assert!(rep.hot_pages <= 2);
        assert!(rep.storage_entries > 0);
    }

    #[test]
    fn storage_mirror_matches_contract_state() {
        let store = run_blocks(PruneMode::Full, 9);
        // Last block wrote demo_state(9 % 7 + 1 = 3); the mirror holds
        // the union of all blocks' entries, so spot-check the final
        // values.
        let final_state = demo_state(3);
        for (k, v) in final_state.sorted_entries() {
            assert_eq!(store.storage().load(k), v);
        }
    }
}
