//! Pruning policy: how much history the store retains.
//!
//! Pruning only drops *persisted artifacts* (whole segments of block
//! headers and receipts, and it lets the accounts table freeze colder
//! pages); it never feeds back into root computation. That is the
//! determinism contract: a pruned run reports the same state, receipts
//! and chain roots as the unpruned run, because the roots are computed
//! before the prune stage looks at anything.

use std::fmt;

/// How much block history the store keeps resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// Archive node: keep every block and receipt.
    Full,
    /// Keep the most recent `n` blocks behind the tip.
    Distance(u64),
    /// Keep blocks at heights `>= b`; everything before is prunable.
    Before(u64),
}

impl PruneMode {
    /// The first height that must remain resident when the tip is at
    /// `tip`. Everything strictly below the horizon may be pruned.
    pub fn horizon(&self, tip: u64) -> u64 {
        match *self {
            PruneMode::Full => 0,
            PruneMode::Distance(n) => tip.saturating_sub(n),
            PruneMode::Before(b) => b.min(tip),
        }
    }

    /// Parses the CLI / spec grammar: `full`, `distance=N`, `before=N`.
    pub fn parse(s: &str) -> Result<PruneMode, String> {
        if s == "full" {
            return Ok(PruneMode::Full);
        }
        let parse_n = |v: &str, what: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("invalid prune {what} '{v}': expected an integer"))
        };
        if let Some(v) = s.strip_prefix("distance=") {
            return Ok(PruneMode::Distance(parse_n(v, "distance")?));
        }
        if let Some(v) = s.strip_prefix("before=") {
            return Ok(PruneMode::Before(parse_n(v, "height")?));
        }
        Err(format!(
            "unknown prune mode '{s}': expected full, distance=N or before=N"
        ))
    }

    /// The canonical spelling, matching what [`PruneMode::parse`]
    /// accepts (used in reports, so round-trips).
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for PruneMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PruneMode::Full => f.write_str("full"),
            PruneMode::Distance(n) => write!(f, "distance={n}"),
            PruneMode::Before(b) => write!(f, "before={b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons() {
        assert_eq!(PruneMode::Full.horizon(1000), 0);
        assert_eq!(PruneMode::Distance(64).horizon(1000), 936);
        assert_eq!(PruneMode::Distance(64).horizon(10), 0);
        assert_eq!(PruneMode::Before(500).horizon(1000), 500);
        // `before` past the tip clamps: the tip itself is never pruned.
        assert_eq!(PruneMode::Before(5000).horizon(1000), 1000);
    }

    #[test]
    fn parse_round_trips() {
        for s in ["full", "distance=64", "before=100"] {
            let m = PruneMode::parse(s).unwrap();
            assert_eq!(m.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "archive", "distance=", "distance=x", "before=-1"] {
            assert!(PruneMode::parse(s).is_err(), "{s:?} should not parse");
        }
    }
}
