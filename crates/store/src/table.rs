//! The flat accounts table: dense ids, fixed pages, bounded hot set.
//!
//! Workload plans already name accounts with dense `u32` ids, so the
//! accounts table needs no hashing at all — an id indexes directly into
//! page `id / 4096`, slot `id % 4096` (the interning satellite of this
//! PR makes the chains side feed those ids straight through). Each page
//! is in one of three states:
//!
//! - **Empty** — never touched; costs one enum tag.
//! - **Hot** — a resident `Box<[u64; 4096]>` taking writes directly.
//! - **Frozen** — varint-packed bytes, the in-memory stand-in for a
//!   page flushed to disk. Reads decode in place; writes thaw the page
//!   back to hot first.
//!
//! [`FlatTable::enforce_cap`] bounds the hot set: when more than
//! `hot_cap` pages are hot it freezes the coldest (smallest last-touch
//! block, ties broken by smallest page index — fully deterministic), so
//! a million-account run keeps O(hot_cap × 4096) resident counters no
//! matter how many accounts exist.

/// Ids per page (4096 = 12 bits, so a u32 id splits into page ≤ 2^20).
pub const PAGE: usize = 4096;

#[derive(Debug, Clone)]
enum Slot {
    Empty,
    Hot {
        values: Box<[u64; PAGE]>,
        /// Block height of the last write into this page.
        last_touch: u64,
    },
    Frozen(Vec<u8>),
}

/// A dense `u32`-keyed table of `u64` counters with a bounded hot set.
#[derive(Debug, Clone)]
pub struct FlatTable {
    pages: Vec<Slot>,
    entries: u64,
    freezes: u64,
    thaws: u64,
}

/// Appends `v` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it.
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Packs a hot page: `last_touch`, then 4096 values as varints. Counts
/// are overwhelmingly small (most accounts send a handful of txs), so
/// this is ~1 byte per slot instead of 8.
fn freeze_page(values: &[u64; PAGE], last_touch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAGE + 10);
    put_varint(&mut out, last_touch);
    for &v in values.iter() {
        put_varint(&mut out, v);
    }
    out
}

/// Unpacks a frozen page back to `(values, last_touch)`.
fn thaw_page(buf: &[u8]) -> (Box<[u64; PAGE]>, u64) {
    let mut pos = 0;
    let last_touch = get_varint(buf, &mut pos);
    let mut values = Box::new([0u64; PAGE]);
    for v in values.iter_mut() {
        *v = get_varint(buf, &mut pos);
    }
    debug_assert_eq!(pos, buf.len());
    (values, last_touch)
}

impl FlatTable {
    /// A new empty table.
    pub fn new() -> FlatTable {
        FlatTable {
            pages: Vec::new(),
            entries: 0,
            freezes: 0,
            thaws: 0,
        }
    }

    /// Adds `delta` to the counter of `id`, thawing its page if frozen.
    /// `now_block` stamps the page for eviction ordering.
    pub fn increment(&mut self, id: u32, delta: u64, now_block: u64) {
        let page = id as usize / PAGE;
        let slot = id as usize % PAGE;
        if page >= self.pages.len() {
            self.pages.resize(page + 1, Slot::Empty);
        }
        let entry = &mut self.pages[page];
        match entry {
            Slot::Hot { values, last_touch } => {
                if values[slot] == 0 && delta > 0 {
                    self.entries += 1;
                }
                values[slot] += delta;
                *last_touch = now_block;
            }
            Slot::Frozen(buf) => {
                let (mut values, _) = thaw_page(buf);
                self.thaws += 1;
                if values[slot] == 0 && delta > 0 {
                    self.entries += 1;
                }
                values[slot] += delta;
                *entry = Slot::Hot {
                    values,
                    last_touch: now_block,
                };
            }
            Slot::Empty => {
                let mut values = Box::new([0u64; PAGE]);
                if delta > 0 {
                    self.entries += 1;
                }
                values[slot] = delta;
                *entry = Slot::Hot {
                    values,
                    last_touch: now_block,
                };
            }
        }
    }

    /// The counter of `id` (0 when never set). Frozen pages are decoded
    /// in place without thawing, so reads never grow the hot set.
    pub fn get(&self, id: u32) -> u64 {
        let page = id as usize / PAGE;
        let slot = id as usize % PAGE;
        match self.pages.get(page) {
            Some(Slot::Hot { values, .. }) => values[slot],
            Some(Slot::Frozen(buf)) => {
                let mut pos = 0;
                let _last_touch = get_varint(buf, &mut pos);
                let mut v = 0;
                for _ in 0..=slot {
                    v = get_varint(buf, &mut pos);
                }
                v
            }
            _ => 0,
        }
    }

    /// Freezes the coldest hot pages until at most `hot_cap` remain.
    /// Eviction order is deterministic: smallest `last_touch` first,
    /// ties broken by smallest page index.
    pub fn enforce_cap(&mut self, hot_cap: usize) {
        let mut hot: Vec<(u64, usize)> = self
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Hot { last_touch, .. } => Some((*last_touch, i)),
                _ => None,
            })
            .collect();
        if hot.len() <= hot_cap {
            return;
        }
        hot.sort_unstable();
        for &(_, i) in hot.iter().take(hot.len() - hot_cap) {
            let entry = &mut self.pages[i];
            if let Slot::Hot { values, last_touch } = entry {
                *entry = Slot::Frozen(freeze_page(values, *last_touch));
                self.freezes += 1;
            }
        }
    }

    /// Non-zero counters ever set.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Currently hot (resident array) pages.
    pub fn hot_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|s| matches!(s, Slot::Hot { .. }))
            .count()
    }

    /// Currently frozen (packed) pages.
    pub fn frozen_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|s| matches!(s, Slot::Frozen(_)))
            .count()
    }

    /// Bytes held by frozen pages.
    pub fn frozen_bytes(&self) -> u64 {
        self.pages
            .iter()
            .map(|s| match s {
                Slot::Frozen(buf) => buf.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Pages frozen so far (monotonic).
    pub fn freezes(&self) -> u64 {
        self.freezes
    }

    /// Pages thawed so far (monotonic).
    pub fn thaws(&self) -> u64 {
        self.thaws
    }

    /// Digest over every `(id, count)` pair in id order, independent of
    /// which pages happen to be hot or frozen. Differential tests use
    /// this to prove freezing is lossless.
    pub fn digest(&self) -> crate::digest::Digest {
        let mut a = crate::digest::Absorber::new(0x6163_6374); // "acct"
        for (pi, slot) in self.pages.iter().enumerate() {
            let absorb_values = |a: &mut crate::digest::Absorber, values: &[u64; PAGE]| {
                for (si, &v) in values.iter().enumerate() {
                    if v != 0 {
                        a.absorb((pi * PAGE + si) as u64);
                        a.absorb(v);
                    }
                }
            };
            match slot {
                Slot::Hot { values, .. } => absorb_values(&mut a, values),
                Slot::Frozen(buf) => {
                    let (values, _) = thaw_page(buf);
                    absorb_values(&mut a, &values);
                }
                Slot::Empty => {}
            }
        }
        a.finish()
    }
}

impl Default for FlatTable {
    fn default() -> FlatTable {
        FlatTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn increments_accumulate_across_pages() {
        let mut t = FlatTable::new();
        t.increment(0, 1, 1);
        t.increment(0, 2, 2);
        t.increment(PAGE as u32, 5, 2); // second page
        t.increment(1_000_000, 7, 3); // far page
        assert_eq!(t.get(0), 3);
        assert_eq!(t.get(PAGE as u32), 5);
        assert_eq!(t.get(1_000_000), 7);
        assert_eq!(t.get(42), 0);
        assert_eq!(t.entries(), 3);
        assert_eq!(t.hot_pages(), 3);
    }

    #[test]
    fn freeze_is_lossless_and_reads_do_not_thaw() {
        let mut t = FlatTable::new();
        for id in 0..(3 * PAGE as u32) {
            if id % 7 == 0 {
                t.increment(id, u64::from(id) + 1, 1);
            }
        }
        let before = t.digest();
        t.enforce_cap(1);
        assert_eq!(t.hot_pages(), 1);
        assert_eq!(t.frozen_pages(), 2);
        assert_eq!(t.digest(), before, "freezing must be lossless");
        // Reads on frozen pages decode in place.
        assert_eq!(t.get(7), 8);
        assert_eq!(t.hot_pages(), 1, "get() must not thaw");
        // A write thaws.
        t.increment(7, 1, 2);
        assert_eq!(t.get(7), 9);
        assert_eq!(t.hot_pages(), 2);
        assert_eq!(t.thaws(), 1);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let mut t = FlatTable::new();
        // Pages 0..4 touched at blocks 5, 3, 3, 9.
        t.increment(0, 1, 5);
        t.increment(PAGE as u32, 1, 3);
        t.increment(2 * PAGE as u32, 1, 3);
        t.increment(3 * PAGE as u32, 1, 9);
        t.enforce_cap(2);
        // Coldest are pages 1 and 2 (touch 3); tie broken by index, both
        // evicted. Pages 0 (touch 5) and 3 (touch 9) stay hot.
        assert_eq!(t.get(0), 1);
        assert_eq!(t.hot_pages(), 2);
        let frozen: Vec<bool> = (0..4)
            .map(|p| {
                let mut probe = t.clone();
                probe.increment(p * PAGE as u32, 0, 100);
                probe.thaws() > t.thaws()
            })
            .collect();
        assert_eq!(frozen, vec![false, true, true, false]);
    }

    #[test]
    fn cap_zero_freezes_everything() {
        let mut t = FlatTable::new();
        for p in 0..5u32 {
            t.increment(p * PAGE as u32, 1, u64::from(p));
        }
        t.enforce_cap(0);
        assert_eq!(t.hot_pages(), 0);
        assert_eq!(t.frozen_pages(), 5);
        assert!(t.frozen_bytes() > 0);
        for p in 0..5u32 {
            assert_eq!(t.get(p * PAGE as u32), 1);
        }
    }
}
