//! Per-block Merkle state roots: a balanced binary trie over sorted
//! key/value pairs.
//!
//! The root commits to the exact entry set *and* its order, so two runs
//! agree on a root exactly when they agree on the state — the property
//! the differential suites lean on. Input pairs must be sorted by key
//! (use `ContractState::sorted_entries` / `PagedState::sorted_entries`);
//! sortedness is what makes the root independent of `HashMap` iteration
//! order by construction.
//!
//! Shape: leaves are hashed `(key, value)` pairs; each level pairs
//! adjacent nodes left-to-right and promotes an odd trailing node, like
//! a classic block-transaction Merkle tree. No proofs are generated —
//! the simulator needs integrity checking, not light clients — so the
//! tree is never materialized, only folded level by level in place.

use crate::digest::Digest;

/// Domain tag of leaf digests.
const LEAF_TAG: u64 = 0x6c65_6166; // "leaf"
/// The root of an empty entry set.
const EMPTY_TAG: u64 = 0x656d_7074_79; // "empty"

/// Digest of one `(key, value)` leaf.
pub fn leaf(key: i64, value: i64) -> Digest {
    Digest::of_words(LEAF_TAG, &[key as u64, value as u64])
}

/// The root of an empty tree (distinct from any leaf or node).
pub fn empty_root() -> Digest {
    Digest::of_words(EMPTY_TAG, &[])
}

/// Folds a leaf level into its Merkle root.
pub fn root_of_digests(mut level: Vec<Digest>) -> Digest {
    if level.is_empty() {
        return empty_root();
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            next.push(Digest::combine(&pair[0], &pair[1]));
        }
        if let [odd] = it.remainder() {
            next.push(*odd);
        }
        level = next;
    }
    level[0]
}

/// The Merkle root of sorted `(key, value)` pairs.
///
/// # Panics
///
/// Debug-panics when `pairs` is not strictly sorted by key: an unsorted
/// input would tie the root to iteration order, the exact bug this
/// module exists to rule out.
pub fn root(pairs: &[(i64, i64)]) -> Digest {
    debug_assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "merkle input must be strictly key-sorted"
    );
    root_of_digests(pairs.iter().map(|&(k, v)| leaf(k, v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_singleton_and_pair_roots_are_distinct() {
        let e = root(&[]);
        let one = root(&[(1, 10)]);
        let two = root(&[(1, 10), (2, 20)]);
        assert_eq!(e, empty_root());
        assert_ne!(e, one);
        assert_ne!(one, two);
        // A single leaf's root is the leaf itself.
        assert_eq!(one, leaf(1, 10));
    }

    #[test]
    fn root_commits_to_values_and_keys() {
        let base = root(&[(1, 10), (2, 20), (3, 30)]);
        assert_ne!(base, root(&[(1, 10), (2, 21), (3, 30)]));
        assert_ne!(base, root(&[(1, 10), (2, 20), (4, 30)]));
        assert_ne!(base, root(&[(1, 10), (2, 20)]));
    }

    #[test]
    fn odd_levels_fold_correctly() {
        // 5 leaves: level sizes 5 → 3 → 2 → 1; check against the
        // hand-folded tree.
        let pairs: Vec<(i64, i64)> = (0..5).map(|i| (i, i * 7)).collect();
        let l: Vec<Digest> = pairs.iter().map(|&(k, v)| leaf(k, v)).collect();
        let n01 = Digest::combine(&l[0], &l[1]);
        let n23 = Digest::combine(&l[2], &l[3]);
        let n0123 = Digest::combine(&n01, &n23);
        let expect = Digest::combine(&n0123, &l[4]);
        assert_eq!(root(&pairs), expect);
    }

    #[test]
    fn same_pairs_same_root_regardless_of_source() {
        // The sorted contract representation and the paged one must
        // produce identical roots (the store compares them in tests).
        use diablo_vm::{ContractState, PagedState, StateLimits};
        let lim = StateLimits::unbounded();
        let mut a = ContractState::new();
        let mut b = PagedState::new();
        for key in [900i64, -3, 0, 512, 77, -258] {
            a.store(key, key * 11, &lim);
            b.store(key, key * 11, &lim);
        }
        assert_eq!(root(&a.sorted_entries()), root(&b.sorted_entries()));
    }

    #[test]
    #[should_panic(expected = "key-sorted")]
    #[cfg(debug_assertions)]
    fn unsorted_input_panics_in_debug() {
        let _ = root(&[(2, 1), (1, 1)]);
    }
}
