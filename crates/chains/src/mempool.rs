//! Memory pools and their admission policies.
//!
//! The paper attributes several headline behaviours to mempool policy:
//! Diem accepts at most 100 transactions per sender and drops on
//! overflow (§5.2), Algorand and Solana drop transactions under bursts
//! (§6.5), while Quorum's IBFT "was historically designed to never drop
//! a client request" (§6.5) — an unbounded queue that is precisely why
//! it collapses under sustained 10,000 TPS (§6.3).

use std::collections::VecDeque;

use diablo_sim::{Arena, ArenaId};

use crate::tx::{TxId, TxMeta};

/// Admission policy of a node's memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MempoolPolicy {
    /// Maximum pool occupancy; `None` = unbounded (Quorum).
    pub capacity: Option<usize>,
    /// Maximum in-flight transactions per sender; `None` = unlimited.
    /// Diem uses `Some(100)`.
    pub per_sender: Option<u32>,
}

impl MempoolPolicy {
    /// Quorum's never-drop policy.
    pub const UNBOUNDED: MempoolPolicy = MempoolPolicy {
        capacity: None,
        per_sender: None,
    };

    /// A bounded pool without per-sender limits.
    pub const fn bounded(capacity: usize) -> MempoolPolicy {
        MempoolPolicy {
            capacity: Some(capacity),
            per_sender: None,
        }
    }
}

/// Why a transaction was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Pool at capacity — the transaction is dropped.
    PoolFull,
    /// The sender already has the maximum in-flight transactions.
    PerSenderLimit,
}

/// A FIFO memory pool with the policies above.
///
/// Records live in a generational [`Arena`]; the FIFO queue holds 8-byte
/// [`ArenaId`]s. Hot loops can drain a block by id
/// ([`take_batch_ids`](Mempool::take_batch_ids)), read the records in
/// place ([`meta`](Mempool::meta)) and return the slots afterwards
/// ([`release`](Mempool::release)) — a steady-state pool recycles slots
/// instead of allocating, and a million-entry backlog stays one dense
/// slab rather than a deque of owned copies.
pub struct Mempool {
    policy: MempoolPolicy,
    arena: Arena<TxMeta>,
    queue: VecDeque<ArenaId>,
    /// In-flight count per sender, indexed directly by the workload's
    /// dense `u32` account id (grown on demand). Plans pre-size it via
    /// [`with_accounts`](Mempool::with_accounts), so the admission hot
    /// path is an array index, not a hash lookup.
    per_sender: Vec<u32>,
    admitted_total: u64,
    dropped_full: u64,
    dropped_sender: u64,
}

impl Mempool {
    /// An empty pool under `policy`.
    pub fn new(policy: MempoolPolicy) -> Self {
        Mempool::with_accounts(policy, 0)
    }

    /// An empty pool with the per-sender table pre-sized for `accounts`
    /// dense sender ids (avoids regrowth during the run).
    pub fn with_accounts(policy: MempoolPolicy, accounts: usize) -> Self {
        Mempool {
            policy,
            arena: Arena::new(),
            queue: VecDeque::new(),
            per_sender: vec![0; accounts],
            admitted_total: 0,
            dropped_full: 0,
            dropped_sender: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Occupancy as a fraction of capacity (0 for unbounded pools).
    pub fn fill_ratio(&self) -> f64 {
        match self.policy.capacity {
            Some(cap) if cap > 0 => (self.queue.len() as f64 / cap as f64).min(1.0),
            _ => 0.0,
        }
    }

    /// Lifetime admission count.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Lifetime drops due to a full pool.
    pub fn dropped_full(&self) -> u64 {
        self.dropped_full
    }

    /// Lifetime drops due to the per-sender cap.
    pub fn dropped_sender(&self) -> u64 {
        self.dropped_sender
    }

    /// Tries to admit a transaction.
    pub fn admit(&mut self, tx: TxMeta) -> Result<(), AdmitError> {
        let sender = tx.sender as usize;
        if let Some(limit) = self.policy.per_sender {
            if self.per_sender.get(sender).copied().unwrap_or(0) >= limit {
                self.dropped_sender += 1;
                diablo_telemetry::counter!("mempool.dropped.per_sender");
                return Err(AdmitError::PerSenderLimit);
            }
        }
        if let Some(cap) = self.policy.capacity {
            if self.queue.len() >= cap {
                self.dropped_full += 1;
                diablo_telemetry::counter!("mempool.dropped.pool_full");
                return Err(AdmitError::PoolFull);
            }
        }
        if sender >= self.per_sender.len() {
            self.per_sender.resize(sender + 1, 0);
        }
        self.per_sender[sender] += 1;
        let id = self.arena.insert(tx);
        self.queue.push_back(id);
        self.admitted_total += 1;
        diablo_telemetry::counter!("mempool.admitted");
        Ok(())
    }

    /// Pops up to `max` transactions in FIFO order, subject to a
    /// per-batch byte budget and a predicate (e.g. fee eligibility,
    /// gossip availability). Transactions failing the predicate are
    /// *skipped but retained* (they stay pending, preserving FIFO order
    /// among themselves).
    ///
    /// The returned ids stay readable through [`meta`](Mempool::meta)
    /// until [`release`](Mempool::release)d — the zero-copy drain the
    /// block-commit hot loop uses. [`take_batch`](Mempool::take_batch)
    /// wraps this for callers that want owned records.
    pub fn take_batch_ids(
        &mut self,
        max: usize,
        max_bytes: u64,
        mut eligible: impl FnMut(&TxMeta) -> bool,
    ) -> Vec<ArenaId> {
        // Work from the front in place: a block drains a few hundred
        // transactions, so the cost must scale with the batch, not with
        // the (possibly unbounded — Quorum) pool occupancy.
        let mut taken = Vec::new();
        let mut skipped: Vec<ArenaId> = Vec::new();
        let mut bytes = 0u64;
        while let Some(id) = self.queue.pop_front() {
            let tx = self.arena.get(id).expect("queued id must be live");
            if taken.len() >= max || bytes + tx.wire_bytes as u64 > max_bytes {
                self.queue.push_front(id);
                break;
            }
            if eligible(tx) {
                bytes += tx.wire_bytes as u64;
                self.per_sender[tx.sender as usize] -= 1;
                taken.push(id);
            } else {
                skipped.push(id);
            }
        }
        // Splice the skipped (still-pending) transactions back in front
        // of the untouched tail, preserving FIFO order among them.
        diablo_telemetry::counter!("mempool.take_batch.calls");
        diablo_telemetry::counter!("mempool.take_batch.skipped", skipped.len() as u64);
        diablo_telemetry::record!("mempool.take_batch.txs", taken.len() as u64);
        diablo_telemetry::record!("mempool.take_batch.bytes", bytes);
        for id in skipped.into_iter().rev() {
            self.queue.push_front(id);
        }
        diablo_telemetry::gauge!("mempool.depth_peak", self.queue.len() as i64);
        taken
    }

    /// Pops up to `max` transactions in FIFO order as owned records (see
    /// [`take_batch_ids`](Mempool::take_batch_ids) for the semantics).
    pub fn take_batch(
        &mut self,
        max: usize,
        max_bytes: u64,
        eligible: impl FnMut(&TxMeta) -> bool,
    ) -> Vec<TxMeta> {
        let ids = self.take_batch_ids(max, max_bytes, eligible);
        ids.into_iter().map(|id| self.release(id)).collect()
    }

    /// The record behind a batch id handed out by
    /// [`take_batch_ids`](Mempool::take_batch_ids) (or still queued).
    ///
    /// # Panics
    ///
    /// Panics on a stale id (already released): batch ids are owned by
    /// exactly one block-commit and must not outlive it.
    pub fn meta(&self, id: ArenaId) -> &TxMeta {
        self.arena.get(id).expect("stale mempool ArenaId")
    }

    /// Returns a drained transaction's slot to the pool's arena,
    /// yielding the owned record.
    ///
    /// # Panics
    ///
    /// Panics on a stale id (double release).
    pub fn release(&mut self, id: ArenaId) -> TxMeta {
        self.arena.remove(id).expect("stale mempool ArenaId")
    }

    /// Removes transactions matching `expired`, returning their ids
    /// (Solana's 120 s recent-blockhash expiry).
    pub fn evict_where(&mut self, mut expired: impl FnMut(&TxMeta) -> bool) -> Vec<TxId> {
        let mut evicted = Vec::new();
        let per_sender = &mut self.per_sender;
        let arena = &mut self.arena;
        let mut dead: Vec<ArenaId> = Vec::new();
        self.queue.retain(|&id| {
            let tx = arena.get(id).expect("queued id must be live");
            if expired(tx) {
                per_sender[tx.sender as usize] -= 1;
                evicted.push(tx.id);
                dead.push(id);
                false
            } else {
                true
            }
        });
        for id in dead {
            arena.remove(id);
        }
        diablo_telemetry::counter!("mempool.evicted", evicted.len() as u64);
        evicted
    }

    /// Iterates the queued transactions (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TxMeta> {
        self.queue
            .iter()
            .map(|&id| self.arena.get(id).expect("queued id must be live"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Payload;
    use diablo_sim::SimTime;

    fn tx(id: TxId, sender: u32) -> TxMeta {
        TxMeta {
            id,
            sender,
            payload: Payload::Transfer,
            submitted: SimTime::from_micros(id as u64),
            available: SimTime::from_micros(id as u64),
            wire_bytes: 100,
            fee_cap_millis: 2000,
        }
    }

    #[test]
    fn fifo_order() {
        let mut pool = Mempool::new(MempoolPolicy::UNBOUNDED);
        for i in 0..10 {
            pool.admit(tx(i, 0)).unwrap();
        }
        let batch = pool.take_batch(5, u64::MAX, |_| true);
        assert_eq!(
            batch.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn capacity_drops() {
        let mut pool = Mempool::new(MempoolPolicy::bounded(3));
        for i in 0..3 {
            pool.admit(tx(i, i)).unwrap();
        }
        assert_eq!(pool.admit(tx(3, 3)), Err(AdmitError::PoolFull));
        assert_eq!(pool.dropped_full(), 1);
        assert_eq!(pool.fill_ratio(), 1.0);
    }

    #[test]
    fn per_sender_cap_like_diem() {
        let policy = MempoolPolicy {
            capacity: None,
            per_sender: Some(100),
        };
        let mut pool = Mempool::new(policy);
        for i in 0..100 {
            pool.admit(tx(i, 7)).unwrap();
        }
        assert_eq!(pool.admit(tx(100, 7)), Err(AdmitError::PerSenderLimit));
        // A different sender is fine.
        pool.admit(tx(101, 8)).unwrap();
        assert_eq!(pool.dropped_sender(), 1);
        // Popping frees the sender's slots.
        let _ = pool.take_batch(1, u64::MAX, |_| true);
        pool.admit(tx(102, 7)).unwrap();
    }

    #[test]
    fn take_batch_respects_byte_budget() {
        let mut pool = Mempool::new(MempoolPolicy::UNBOUNDED);
        for i in 0..10 {
            pool.admit(tx(i, 0)).unwrap();
        }
        let batch = pool.take_batch(100, 250, |_| true);
        assert_eq!(batch.len(), 2); // 100 bytes each, budget 250
        assert_eq!(pool.len(), 8);
    }

    #[test]
    fn ineligible_txs_are_retained_in_order() {
        let mut pool = Mempool::new(MempoolPolicy::UNBOUNDED);
        for i in 0..6 {
            pool.admit(tx(i, 0)).unwrap();
        }
        // Only even ids are eligible.
        let batch = pool.take_batch(100, u64::MAX, |t| t.id % 2 == 0);
        assert_eq!(
            batch.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        let rest: Vec<TxId> = pool.iter().map(|t| t.id).collect();
        assert_eq!(rest, vec![1, 3, 5]);
    }

    #[test]
    fn evict_where_removes_and_reports() {
        let mut pool = Mempool::new(MempoolPolicy {
            capacity: None,
            per_sender: Some(2),
        });
        for i in 0..4 {
            pool.admit(tx(i, i % 2)).unwrap();
        }
        let evicted = pool.evict_where(|t| t.id < 2);
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(pool.len(), 2);
        // Eviction released one slot per sender (tx 2 and tx 3 remain).
        pool.admit(tx(10, 0)).unwrap();
        assert_eq!(pool.admit(tx(11, 0)), Err(AdmitError::PerSenderLimit));
    }

    #[test]
    fn large_pool_batches_preserve_order_and_counters() {
        // A Quorum-style backlog: 100k pending transactions drained a
        // few hundred per block. take_batch must not touch the tail, and
        // the per-sender accounting must stay exact across many batches
        // with skipped (ineligible) transactions interleaved.
        let n: u32 = 100_000;
        let mut pool = Mempool::new(MempoolPolicy::UNBOUNDED);
        for i in 0..n {
            pool.admit(tx(i, i % 97)).unwrap();
        }
        let mut drained: Vec<TxId> = Vec::new();
        // Ids divisible by 7 only become eligible on a later pass.
        let mut deferred_pass = false;
        while !pool.is_empty() {
            let pass = deferred_pass;
            let batch = pool.take_batch(500, u64::MAX, |t| pass || t.id % 7 != 0);
            if batch.is_empty() {
                deferred_pass = true;
                continue;
            }
            drained.extend(batch.iter().map(|t| t.id));
        }
        assert_eq!(drained.len() as u32, n);
        // Within each eligibility class, FIFO order is preserved.
        let not_sevens: Vec<TxId> = drained.iter().copied().filter(|id| id % 7 != 0).collect();
        assert!(not_sevens.windows(2).all(|w| w[0] < w[1]));
        let sevens: Vec<TxId> = drained.iter().copied().filter(|id| id % 7 == 0).collect();
        assert!(sevens.windows(2).all(|w| w[0] < w[1]));
        // Every sender slot was released.
        for sender in 0..97 {
            pool.admit(tx(n + sender, sender)).unwrap();
        }
    }

    #[test]
    fn presized_pool_matches_grow_on_demand() {
        // `with_accounts` is purely a pre-sizing hint: admission,
        // batching and eviction behave identically with and without it.
        let policy = MempoolPolicy {
            capacity: None,
            per_sender: Some(2),
        };
        let mut sized = Mempool::with_accounts(policy, 50);
        let mut grown = Mempool::new(policy);
        for i in 0..80 {
            assert_eq!(sized.admit(tx(i, i % 40)), grown.admit(tx(i, i % 40)));
        }
        assert_eq!(sized.admit(tx(80, 0)), Err(AdmitError::PerSenderLimit));
        assert_eq!(grown.admit(tx(80, 0)), Err(AdmitError::PerSenderLimit));
        let a = sized.take_batch(30, u64::MAX, |_| true);
        let b = grown.take_batch(30, u64::MAX, |_| true);
        assert_eq!(
            a.iter().map(|t| t.id).collect::<Vec<_>>(),
            b.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        // Drained slots free the sender cap in both.
        sized.admit(tx(81, 0)).unwrap();
        grown.admit(tx(81, 0)).unwrap();
    }

    #[test]
    fn unbounded_never_fills() {
        let mut pool = Mempool::new(MempoolPolicy::UNBOUNDED);
        for i in 0..10_000 {
            pool.admit(tx(i, i)).unwrap();
        }
        assert_eq!(pool.fill_ratio(), 0.0);
        assert_eq!(pool.dropped_full(), 0);
    }
}
