//! The harness boundary between the Diablo framework and a simulated
//! chain.
//!
//! `diablo-core`'s Secondaries plan transactions (presigning, §4); the
//! harness injects those planned transactions into the chain simulation
//! and returns one [`crate::TxRecord`] per transaction, in input order. The
//! higher-level [`crate::Experiment`] driver is a thin wrapper that
//! plans transactions straight from a workload curve.

use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind, NetworkModel, QuorumModel};
use diablo_sim::{SimDuration, SimTime, Simulation};

use crate::exec::ExecutionEngine;
use crate::params::ChainParams;
use crate::records::RunResult;
use crate::sim::{ChainSim, Ev, TickPlan, TICK_MS};
use crate::tx::Payload;
use crate::Chain;

/// One transaction planned by a Diablo Secondary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedTx {
    /// Scheduled submission instant.
    pub at: SimTime,
    /// Signing account.
    pub sender: u32,
    /// What the transaction does.
    pub payload: Payload,
}

/// Harness construction options.
///
/// Since the `RunConfig` unification this is the resolved
/// [`crate::RunConfig`] itself; the alias keeps older call sites
/// compiling.
pub type HarnessOptions = crate::config::RunConfig;

/// A chain ready to receive planned transactions.
#[derive(Debug)]
pub struct ChainHarness {
    chain: Chain,
    params: ChainParams,
    config: DeploymentConfig,
    engine: ExecutionEngine,
    options: HarnessOptions,
}

impl ChainHarness {
    /// Builds the harness, deploying `dapp` if given.
    ///
    /// Fails with the chain's reason when the DApp cannot run at all —
    /// unsupported state model or a hard "budget exceeded" (§6.4).
    pub fn new(
        chain: Chain,
        deployment: DeploymentKind,
        dapp: Option<DApp>,
        options: HarnessOptions,
    ) -> Result<Self, String> {
        Self::with_config(chain, DeploymentConfig::standard(deployment), dapp, options)
    }

    /// Builds the harness on an explicit deployment (custom setup files).
    pub fn with_config(
        chain: Chain,
        config: DeploymentConfig,
        dapp: Option<DApp>,
        options: HarnessOptions,
    ) -> Result<Self, String> {
        let params = options.resolved_params(chain, &config);
        let flavor = chain.vm_flavor();
        let engine = match dapp {
            None => ExecutionEngine::native(flavor, options.exec_mode),
            Some(dapp) => {
                ExecutionEngine::with_dapp(flavor, options.exec_mode, dapp).map_err(|u| u.reason)?
            }
        }
        .with_concurrency(options.concurrency);
        if let Some(Err(err)) = engine.probe() {
            if err.is_hard_budget() {
                return Err(format!("{err}"));
            }
        }
        Ok(ChainHarness {
            chain,
            params,
            config,
            engine,
            options,
        })
    }

    /// The chain under test.
    pub fn chain(&self) -> Chain {
        self.chain
    }

    /// Number of signing accounts the chain's setup provides (§5.2:
    /// 2,000 normally, 130 for Diem at scale).
    pub fn accounts(&self) -> u32 {
        self.params.accounts
    }

    /// Runs the submission plan to completion.
    ///
    /// `txs` must be sorted by submission time; `workload_secs` is the
    /// length of the submission window used for throughput reporting.
    /// Returns one record per planned transaction, in input order.
    ///
    /// # Panics
    ///
    /// Panics if `txs` is not sorted by `at`.
    pub fn run(self, txs: Vec<PlannedTx>, workload_name: &str, workload_secs: f64) -> RunResult {
        assert!(
            txs.windows(2).all(|w| w[0].at <= w[1].at),
            "plan must be sorted by time"
        );
        let net = NetworkModel::default();
        let qmodel = QuorumModel::new(&self.config, &net);

        // Bucket the plan into submission ticks: the input is sorted, so
        // ticks are contiguous ranges over the flat vector.
        let plan = TickPlan::from_sorted(txs, TICK_MS * 1000);

        let live = self.options.live;
        let world = ChainSim::from_plan(
            self.chain,
            self.params,
            &self.config,
            qmodel,
            self.engine,
            plan,
            self.options.seed,
            SimTime::from_secs_f64_ceil(workload_secs)
                + SimDuration::from_secs(self.options.grace_secs),
        )
        .with_faults(self.options.faults.clone())
        .with_store(self.options.storage)
        .with_live_pool(live.map(|cfg| crate::live::LivePool::new(cfg.workers, cfg.time_scale)));
        let mut sim = Simulation::with_backend(world, self.options.queue);
        let ticks = sim.world().tick_count();
        for k in 0..ticks {
            sim.schedule(SimTime::from_millis(k as u64 * TICK_MS), Ev::Tick(k as u32));
        }
        sim.schedule(SimTime::ZERO, Ev::Propose);
        let deadline = sim.world().deadline();
        let workload_end = sim.world().workload_end().min(deadline);
        match live {
            // The telemetry clock: live runs measure real elapsed time;
            // simulated runs rewind the virtual clock so span timings
            // start from zero even if a previous run in this process
            // left it advanced.
            Some(_) => diablo_telemetry::clock::use_wall_clock(),
            None => diablo_telemetry::clock::set_sim_now(SimTime::ZERO),
        }
        // Arm the per-transaction tracer before the first event fires;
        // membership is keyed on the run seed so re-runs sample the
        // same transactions.
        match self.options.trace {
            Some(sample) => diablo_telemetry::trace::configure(sample, self.options.seed),
            None => diablo_telemetry::trace::disable(),
        }
        {
            let _run = diablo_telemetry::span("harness.run");
            {
                let _sub = diablo_telemetry::span("harness.submission");
                match live {
                    Some(cfg) => pace_until(&mut sim, workload_end, cfg.time_scale),
                    None => sim.run_until(workload_end),
                };
            }
            {
                let _drain = diablo_telemetry::span("harness.drain");
                match live {
                    Some(cfg) => pace_until(&mut sim, deadline, cfg.time_scale),
                    None => sim.run_until(deadline),
                };
            }
        }
        if live.is_some() {
            // Hand the deterministic clock back so a follow-up
            // simulation (the live-diff's prediction) stays virtual.
            diablo_telemetry::clock::use_sim_clock();
        }
        let world = sim.into_world();
        let (records, blocks, storage) = world.into_records();
        RunResult {
            chain: self.chain,
            workload: workload_name.to_string(),
            workload_secs,
            records,
            unable_reason: None,
            blocks,
            storage,
            trace: diablo_telemetry::trace::take(),
        }
    }
}

/// Live mode's event driver: delivers the same events in the same order
/// as [`Simulation::run_until`], but *when wall-clock time catches up*
/// with each event's instant (divided by `scale`). Sleeping keeps the
/// schedule honest; an event the machine cannot keep up with records
/// its lag instead of silently rewriting history.
fn pace_until(
    sim: &mut Simulation<ChainSim>,
    until: SimTime,
    scale: f64,
) -> u64 {
    use std::time::{Duration, Instant};
    let scale = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0
    };
    let anchor_sim = sim.now().as_micros();
    let anchor_wall = Instant::now();
    let mut delivered = 0u64;
    while let Some(at) = sim.peek_time() {
        if at > until {
            break;
        }
        let offset_us = (at.as_micros().saturating_sub(anchor_sim)) as f64 / scale;
        let target = anchor_wall + Duration::from_micros(offset_us as u64);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        } else {
            diablo_telemetry::record_duration!(
                "live.pacing.lag_us",
                SimDuration::from_micros((now - target).as_micros() as u64)
            );
        }
        sim.step();
        delivered += 1;
    }
    diablo_telemetry::counter!("live.events", delivered);
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TxStatus;

    fn plan_constant(tps: u64, secs: u64) -> Vec<PlannedTx> {
        let mut txs = Vec::new();
        for s in 0..secs {
            for i in 0..tps {
                txs.push(PlannedTx {
                    at: SimTime::from_micros(s * 1_000_000 + i * 1_000_000 / tps),
                    sender: (i % 100) as u32,
                    payload: Payload::Transfer,
                });
            }
        }
        txs
    }

    #[test]
    fn harness_runs_a_plan() {
        let h = ChainHarness::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = plan_constant(100, 20);
        let n = plan.len() as u64;
        let r = h.run(plan, "plan-test", 20.0);
        assert_eq!(r.submitted(), n);
        assert!(r.commit_ratio() > 0.9, "{}", r.summary());
    }

    #[test]
    fn records_follow_input_order() {
        let h = ChainHarness::new(
            Chain::Diem,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = plan_constant(50, 10);
        let times: Vec<SimTime> = plan.iter().map(|t| t.at).collect();
        let r = h.run(plan, "order-test", 10.0);
        for (rec, t) in r.records.iter().zip(times) {
            assert_eq!(rec.submitted, t);
        }
    }

    #[test]
    fn unable_dapps_fail_construction() {
        let err = ChainHarness::new(
            Chain::Solana,
            DeploymentKind::Testnet,
            Some(DApp::Mobility),
            HarnessOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("budget exceeded"));
    }

    #[test]
    fn empty_plan_is_fine() {
        let h = ChainHarness::new(
            Chain::Ethereum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let r = h.run(Vec::new(), "empty", 1.0);
        assert_eq!(r.submitted(), 0);
        assert_eq!(r.count_status(TxStatus::Committed), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_plan_panics() {
        let h = ChainHarness::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = vec![
            PlannedTx {
                at: SimTime::from_secs(2),
                sender: 0,
                payload: Payload::Transfer,
            },
            PlannedTx {
                at: SimTime::from_secs(1),
                sender: 0,
                payload: Payload::Transfer,
            },
        ];
        let _ = h.run(plan, "bad", 2.0);
    }
}
