//! The harness boundary between the Diablo framework and a simulated
//! chain.
//!
//! `diablo-core`'s Secondaries plan transactions (presigning, §4); the
//! harness injects those planned transactions into the chain simulation
//! and returns one [`crate::TxRecord`] per transaction, in input order. The
//! higher-level [`crate::Experiment`] driver is a thin wrapper that
//! plans transactions straight from a workload curve.

use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind, NetworkModel, QuorumModel};
use diablo_sim::{QueueBackend, SimDuration, SimTime, Simulation};
use diablo_store::StorageConfig;

use crate::exec::{Concurrency, ExecMode, ExecutionEngine};
use crate::faults::FaultPlan;
use crate::params::{ChainParams, SigVerify};
use crate::records::RunResult;
use crate::sim::{ChainSim, Ev, TickPlan, TICK_MS};
use crate::tx::Payload;
use crate::Chain;

/// One transaction planned by a Diablo Secondary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedTx {
    /// Scheduled submission instant.
    pub at: SimTime,
    /// Signing account.
    pub sender: u32,
    /// What the transaction does.
    pub payload: Payload,
}

/// Harness construction options.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// RNG seed.
    pub seed: u64,
    /// Execution fidelity.
    pub exec_mode: ExecMode,
    /// Block-commit concurrency (worker threads for parallel execution).
    pub concurrency: Concurrency,
    /// Drain window after the last submission, in seconds.
    pub grace_secs: u64,
    /// Parameter overrides; `None` = standard parameters.
    pub params: Option<ChainParams>,
    /// Injected faults (crashes, slowdowns).
    pub faults: FaultPlan,
    /// Signature-verification cost-curve override applied on top of the
    /// resolved parameters (the spec's `sigverify:` section); `None` =
    /// the chain's standard curve.
    pub sig_verify: Option<SigVerify>,
    /// Event-queue backend of the simulation kernel (the timer wheel by
    /// default; the reference heap for differential runs and benches).
    pub queue: QueueBackend,
    /// Append-only state store configuration (the spec's `storage:`
    /// section); `None` = the staged commit pipeline is off.
    pub storage: Option<StorageConfig>,
    /// Per-transaction lifecycle tracing budget (`--trace-sample`);
    /// `None` = the tracer stays off and the run is byte-identical to
    /// an untraced one.
    pub trace: Option<diablo_telemetry::trace::TraceSample>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            seed: 42,
            exec_mode: ExecMode::Profiled,
            concurrency: Concurrency::Serial,
            grace_secs: 60,
            params: None,
            faults: FaultPlan::none(),
            sig_verify: None,
            queue: QueueBackend::Wheel,
            storage: None,
            trace: None,
        }
    }
}

/// A chain ready to receive planned transactions.
#[derive(Debug)]
pub struct ChainHarness {
    chain: Chain,
    params: ChainParams,
    config: DeploymentConfig,
    engine: ExecutionEngine,
    options: HarnessOptions,
}

impl ChainHarness {
    /// Builds the harness, deploying `dapp` if given.
    ///
    /// Fails with the chain's reason when the DApp cannot run at all —
    /// unsupported state model or a hard "budget exceeded" (§6.4).
    pub fn new(
        chain: Chain,
        deployment: DeploymentKind,
        dapp: Option<DApp>,
        options: HarnessOptions,
    ) -> Result<Self, String> {
        Self::with_config(chain, DeploymentConfig::standard(deployment), dapp, options)
    }

    /// Builds the harness on an explicit deployment (custom setup files).
    pub fn with_config(
        chain: Chain,
        config: DeploymentConfig,
        dapp: Option<DApp>,
        options: HarnessOptions,
    ) -> Result<Self, String> {
        let mut params = options
            .params
            .clone()
            .unwrap_or_else(|| ChainParams::standard(chain, &config));
        if let Some(sig_verify) = options.sig_verify {
            params.sig_verify = sig_verify;
        }
        let flavor = chain.vm_flavor();
        let engine = match dapp {
            None => ExecutionEngine::native(flavor, options.exec_mode),
            Some(dapp) => {
                ExecutionEngine::with_dapp(flavor, options.exec_mode, dapp).map_err(|u| u.reason)?
            }
        }
        .with_concurrency(options.concurrency);
        if let Some(Err(err)) = engine.probe() {
            if err.is_hard_budget() {
                return Err(format!("{err}"));
            }
        }
        Ok(ChainHarness {
            chain,
            params,
            config,
            engine,
            options,
        })
    }

    /// The chain under test.
    pub fn chain(&self) -> Chain {
        self.chain
    }

    /// Number of signing accounts the chain's setup provides (§5.2:
    /// 2,000 normally, 130 for Diem at scale).
    pub fn accounts(&self) -> u32 {
        self.params.accounts
    }

    /// Runs the submission plan to completion.
    ///
    /// `txs` must be sorted by submission time; `workload_secs` is the
    /// length of the submission window used for throughput reporting.
    /// Returns one record per planned transaction, in input order.
    ///
    /// # Panics
    ///
    /// Panics if `txs` is not sorted by `at`.
    pub fn run(self, txs: Vec<PlannedTx>, workload_name: &str, workload_secs: f64) -> RunResult {
        assert!(
            txs.windows(2).all(|w| w[0].at <= w[1].at),
            "plan must be sorted by time"
        );
        let net = NetworkModel::default();
        let qmodel = QuorumModel::new(&self.config, &net);

        // Bucket the plan into submission ticks: the input is sorted, so
        // ticks are contiguous ranges over the flat vector.
        let plan = TickPlan::from_sorted(txs, TICK_MS * 1000);

        let world = ChainSim::from_plan(
            self.chain,
            self.params,
            &self.config,
            qmodel,
            self.engine,
            plan,
            self.options.seed,
            SimTime::from_secs_f64_ceil(workload_secs)
                + SimDuration::from_secs(self.options.grace_secs),
        )
        .with_faults(self.options.faults.clone())
        .with_store(self.options.storage);
        let mut sim = Simulation::with_backend(world, self.options.queue);
        let ticks = sim.world().tick_count();
        for k in 0..ticks {
            sim.schedule(SimTime::from_millis(k as u64 * TICK_MS), Ev::Tick(k as u32));
        }
        sim.schedule(SimTime::ZERO, Ev::Propose);
        let deadline = sim.world().deadline();
        let workload_end = sim.world().workload_end().min(deadline);
        // Rewind the telemetry clock so span timings start from virtual
        // zero even if a previous run in this process left it advanced.
        diablo_telemetry::clock::set_sim_now(SimTime::ZERO);
        // Arm the per-transaction tracer before the first event fires;
        // membership is keyed on the run seed so re-runs sample the
        // same transactions.
        match self.options.trace {
            Some(sample) => diablo_telemetry::trace::configure(sample, self.options.seed),
            None => diablo_telemetry::trace::disable(),
        }
        {
            let _run = diablo_telemetry::span("harness.run");
            {
                let _sub = diablo_telemetry::span("harness.submission");
                sim.run_until(workload_end);
            }
            {
                let _drain = diablo_telemetry::span("harness.drain");
                sim.run_until(deadline);
            }
        }
        let world = sim.into_world();
        let (records, blocks, storage) = world.into_records();
        RunResult {
            chain: self.chain,
            workload: workload_name.to_string(),
            workload_secs,
            records,
            unable_reason: None,
            blocks,
            storage,
            trace: diablo_telemetry::trace::take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TxStatus;

    fn plan_constant(tps: u64, secs: u64) -> Vec<PlannedTx> {
        let mut txs = Vec::new();
        for s in 0..secs {
            for i in 0..tps {
                txs.push(PlannedTx {
                    at: SimTime::from_micros(s * 1_000_000 + i * 1_000_000 / tps),
                    sender: (i % 100) as u32,
                    payload: Payload::Transfer,
                });
            }
        }
        txs
    }

    #[test]
    fn harness_runs_a_plan() {
        let h = ChainHarness::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = plan_constant(100, 20);
        let n = plan.len() as u64;
        let r = h.run(plan, "plan-test", 20.0);
        assert_eq!(r.submitted(), n);
        assert!(r.commit_ratio() > 0.9, "{}", r.summary());
    }

    #[test]
    fn records_follow_input_order() {
        let h = ChainHarness::new(
            Chain::Diem,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = plan_constant(50, 10);
        let times: Vec<SimTime> = plan.iter().map(|t| t.at).collect();
        let r = h.run(plan, "order-test", 10.0);
        for (rec, t) in r.records.iter().zip(times) {
            assert_eq!(rec.submitted, t);
        }
    }

    #[test]
    fn unable_dapps_fail_construction() {
        let err = ChainHarness::new(
            Chain::Solana,
            DeploymentKind::Testnet,
            Some(DApp::Mobility),
            HarnessOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("budget exceeded"));
    }

    #[test]
    fn empty_plan_is_fine() {
        let h = ChainHarness::new(
            Chain::Ethereum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let r = h.run(Vec::new(), "empty", 1.0);
        assert_eq!(r.submitted(), 0);
        assert_eq!(r.count_status(TxStatus::Committed), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_plan_panics() {
        let h = ChainHarness::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            None,
            HarnessOptions::default(),
        )
        .unwrap();
        let plan = vec![
            PlannedTx {
                at: SimTime::from_secs(2),
                sender: 0,
                payload: Payload::Transfer,
            },
            PlannedTx {
                at: SimTime::from_secs(1),
                sender: 0,
                payload: Payload::Transfer,
            },
        ];
        let _ = h.run(plan, "bad", 2.0);
    }
}
