//! The six blockchains of the paper's Table 4.

use core::fmt;

use diablo_vm::VmFlavor;

/// Consistency property offered by a chain (Table 4's "Prop." column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// Probabilistic safety (Algorand, Avalanche).
    Probabilistic,
    /// Deterministic safety with immediate finality (Diem, Quorum).
    Deterministic,
    /// Eventual consistency (Ethereum, Solana) — the "◇" of Table 4.
    Eventual,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Property::Probabilistic => "prob.",
            Property::Deterministic => "det.",
            Property::Eventual => "eventual",
        })
    }
}

/// One of the six evaluated blockchains, plus the leaderless contrast
/// system the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Chain {
    /// Algorand: proof-of-stake with BA★ committee agreement.
    Algorand,
    /// Avalanche (C-Chain): metastable sampling over a DAG, EVM contracts.
    Avalanche,
    /// Diem (née Libra): HotStuff-based, MoveVM contracts.
    Diem,
    /// Ethereum with the Clique proof-of-authority engine.
    Ethereum,
    /// Quorum (ConsenSys/J.P. Morgan) running IBFT.
    Quorum,
    /// Solana: proof-of-history slots with TowerBFT.
    Solana,
    /// Smart Red Belly Blockchain: *leaderless* deterministic BFT
    /// (DBFT) with superblocks. Not part of the paper's six — it is the
    /// contrast system of §6.1/§6.3 ("recent experiments already
    /// demonstrated that some blockchain could commit all of them in
    /// the same setting" and "is immune to this problem"), included
    /// here as an extension.
    RedBelly,
}

impl Chain {
    /// The six chains the paper evaluates, in its presentation order.
    pub const ALL: [Chain; 6] = [
        Chain::Algorand,
        Chain::Avalanche,
        Chain::Diem,
        Chain::Ethereum,
        Chain::Quorum,
        Chain::Solana,
    ];

    /// The paper's six plus the leaderless contrast system.
    pub const EXTENDED: [Chain; 7] = [
        Chain::Algorand,
        Chain::Avalanche,
        Chain::Diem,
        Chain::Ethereum,
        Chain::Quorum,
        Chain::Solana,
        Chain::RedBelly,
    ];

    /// The chain's name.
    pub const fn name(self) -> &'static str {
        match self {
            Chain::Algorand => "Algorand",
            Chain::Avalanche => "Avalanche",
            Chain::Diem => "Diem",
            Chain::Ethereum => "Ethereum",
            Chain::Quorum => "Quorum",
            Chain::Solana => "Solana",
            Chain::RedBelly => "RedBelly",
        }
    }

    /// The consensus protocol name (Table 4).
    pub const fn consensus_name(self) -> &'static str {
        match self {
            Chain::Algorand => "BA*",
            Chain::Avalanche => "Avalanche",
            Chain::Diem => "HotStuff",
            Chain::Ethereum => "Clique",
            Chain::Quorum => "IBFT",
            Chain::Solana => "TowerBFT",
            Chain::RedBelly => "DBFT",
        }
    }

    /// The execution engine (Table 4's "VM" column).
    pub const fn vm_flavor(self) -> VmFlavor {
        match self {
            Chain::Algorand => VmFlavor::Avm,
            Chain::Avalanche | Chain::Ethereum | Chain::Quorum | Chain::RedBelly => VmFlavor::Geth,
            Chain::Diem => VmFlavor::MoveVm,
            Chain::Solana => VmFlavor::Ebpf,
        }
    }

    /// The consistency property (Table 4's "Prop." column).
    pub const fn property(self) -> Property {
        match self {
            Chain::Algorand | Chain::Avalanche => Property::Probabilistic,
            Chain::Diem | Chain::Quorum | Chain::RedBelly => Property::Deterministic,
            Chain::Ethereum | Chain::Solana => Property::Eventual,
        }
    }

    /// Whether the chain runs a deterministic *leader-based* BFT
    /// consensus — the class §6.3 finds most affected by constantly high
    /// workloads.
    pub const fn is_leader_based_bft(self) -> bool {
        matches!(self, Chain::Diem | Chain::Quorum)
    }

    /// Parses a chain name (case-insensitive), including the extension.
    pub fn parse(s: &str) -> Option<Chain> {
        Chain::EXTENDED
            .iter()
            .copied()
            .find(|c| c.name().eq_ignore_ascii_case(s.trim()))
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_vm_column() {
        assert_eq!(Chain::Algorand.vm_flavor(), VmFlavor::Avm);
        assert_eq!(Chain::Avalanche.vm_flavor(), VmFlavor::Geth);
        assert_eq!(Chain::Diem.vm_flavor(), VmFlavor::MoveVm);
        assert_eq!(Chain::Ethereum.vm_flavor(), VmFlavor::Geth);
        assert_eq!(Chain::Quorum.vm_flavor(), VmFlavor::Geth);
        assert_eq!(Chain::Solana.vm_flavor(), VmFlavor::Ebpf);
    }

    #[test]
    fn table4_property_column() {
        assert_eq!(Chain::Algorand.property(), Property::Probabilistic);
        assert_eq!(Chain::Diem.property(), Property::Deterministic);
        assert_eq!(Chain::Ethereum.property(), Property::Eventual);
        assert_eq!(Chain::Solana.property(), Property::Eventual);
    }

    #[test]
    fn leader_based_bft_classification() {
        // §6.3: "Diem and Quorum are the only blockchains we evaluated
        // that use a deterministic leader-based BFT consensus".
        let leader_based: Vec<Chain> = Chain::ALL
            .iter()
            .copied()
            .filter(|c| c.is_leader_based_bft())
            .collect();
        assert_eq!(leader_based, vec![Chain::Diem, Chain::Quorum]);
    }

    #[test]
    fn redbelly_is_an_extension_not_a_paper_chain() {
        assert!(!Chain::ALL.contains(&Chain::RedBelly));
        assert!(Chain::EXTENDED.contains(&Chain::RedBelly));
        // Leaderless: not in the leader-based BFT class of §6.3.
        assert!(!Chain::RedBelly.is_leader_based_bft());
        assert_eq!(Chain::RedBelly.consensus_name(), "DBFT");
    }

    #[test]
    fn parse_roundtrip() {
        for c in Chain::EXTENDED {
            assert_eq!(Chain::parse(c.name()), Some(c));
            assert_eq!(Chain::parse(&c.name().to_lowercase()), Some(c));
        }
        assert_eq!(Chain::parse("bitcoin"), None);
    }
}
