//! Textual fault directives.
//!
//! The `fault:` section of a benchmark spec and the `--crash`/
//! `--partition`/… CLI flags share one grammar, parsed here into
//! [`FaultPlanBuilder`] calls:
//!
//! | key              | value                                  | example              |
//! |------------------|----------------------------------------|----------------------|
//! | `crash`          | `NODES@AT[..RECOVER]`                  | `4@30..60`           |
//! | `partition`      | `GROUP/GROUP[/..]@FROM..UNTIL`         | `0-6/7-9@30..60`     |
//! | `loss`           | `RATE@FROM..UNTIL[,link=A-B]`          | `5%@10..40,link=0-3` |
//! | `corrupt`        | `RATE@FROM..UNTIL`                     | `0.1@10..40`         |
//! | `slowdown`       | `FACTOR@AT`                            | `4@60`               |
//! | `kill-secondary` | `INDEX@AT`                             | `1@45`               |
//! | `retry`          | `ATTEMPTSxBACKOFF_MS/TIMEOUT_MS`       | `3x500/10000`        |
//!
//! Times are seconds from benchmark start; `NODES` is either a count
//! (`4` crashes nodes `0..4`) or an explicit list (`1,3,8`); node
//! groups are comma-separated indices and `A-B` ranges; rates accept
//! `0.1` or `10%`.

use crate::faults::{FaultPlanBuilder, RetryPolicy};
use diablo_sim::{SimDuration, SimTime};

/// Applies one `key: value` fault directive to a builder. Returns a
/// message describing the malformed directive on failure.
pub fn apply_directive(
    builder: FaultPlanBuilder,
    key: &str,
    value: &str,
) -> Result<FaultPlanBuilder, String> {
    let bad = |why: &str| format!("fault directive `{key}: {value}`: {why}");
    match key {
        "crash" => {
            let (nodes, when) = split_once(value, '@').ok_or_else(|| bad("expected NODES@AT"))?;
            let nodes = parse_node_list(nodes).map_err(|e| bad(&e))?;
            let (at, recover) = match split_once(when, '.') {
                Some((from, until)) => {
                    let until = until.strip_prefix('.').ok_or_else(|| bad("expected AT..RECOVER"))?;
                    (parse_secs(from).map_err(|e| bad(&e))?, Some(parse_secs(until).map_err(|e| bad(&e))?))
                }
                None => (parse_secs(when).map_err(|e| bad(&e))?, None),
            };
            let mut b = builder;
            for node in nodes {
                b = b.crash(node, at);
                if let Some(rec) = recover {
                    b = b.recover(node, rec);
                }
            }
            Ok(b)
        }
        "partition" => {
            let (groups, window) =
                split_once(value, '@').ok_or_else(|| bad("expected GROUPS@FROM..UNTIL"))?;
            let (from, until) = parse_window(window).map_err(|e| bad(&e))?;
            let groups: Vec<Vec<usize>> = groups
                .split('/')
                .map(parse_group)
                .collect::<Result<_, _>>()
                .map_err(|e| bad(&e))?;
            if groups.len() < 2 {
                return Err(bad("need at least two `/`-separated groups"));
            }
            let refs: Vec<&[usize]> = groups.iter().map(|g| g.as_slice()).collect();
            Ok(builder.partition_groups(&refs, from, until))
        }
        "loss" => {
            let mut link = None;
            let mut spec = value;
            if let Some((head, opt)) = split_once(value, ',') {
                let pair = opt
                    .trim()
                    .strip_prefix("link=")
                    .ok_or_else(|| bad("expected `,link=A-B`"))?;
                let (a, b) = split_once(pair, '-').ok_or_else(|| bad("expected `link=A-B`"))?;
                link = Some((
                    parse_index(a).map_err(|e| bad(&e))?,
                    parse_index(b).map_err(|e| bad(&e))?,
                ));
                spec = head;
            }
            let (rate, window) =
                split_once(spec, '@').ok_or_else(|| bad("expected RATE@FROM..UNTIL"))?;
            let rate = parse_rate(rate).map_err(|e| bad(&e))?;
            let (from, until) = parse_window(window).map_err(|e| bad(&e))?;
            Ok(match link {
                Some((a, b)) => builder.link_loss(a, b, rate, from, until),
                None => builder.loss(rate, from, until),
            })
        }
        "corrupt" => {
            let (rate, window) =
                split_once(value, '@').ok_or_else(|| bad("expected RATE@FROM..UNTIL"))?;
            let rate = parse_rate(rate).map_err(|e| bad(&e))?;
            let (from, until) = parse_window(window).map_err(|e| bad(&e))?;
            Ok(builder.corrupt(rate, from, until))
        }
        "slowdown" => {
            let (factor, at) = split_once(value, '@').ok_or_else(|| bad("expected FACTOR@AT"))?;
            let factor: f64 = factor
                .trim()
                .parse()
                .map_err(|_| bad("factor must be a number"))?;
            Ok(builder.slowdown(parse_secs(at).map_err(|e| bad(&e))?, factor))
        }
        "kill-secondary" => {
            let (idx, at) = split_once(value, '@').ok_or_else(|| bad("expected INDEX@AT"))?;
            Ok(builder.kill_secondary(
                parse_index(idx).map_err(|e| bad(&e))?,
                parse_secs(at).map_err(|e| bad(&e))?,
            ))
        }
        "retry" => {
            let (attempts, rest) =
                split_once(value, 'x').ok_or_else(|| bad("expected ATTEMPTSxBACKOFF_MS/TIMEOUT_MS"))?;
            let (backoff, timeout) =
                split_once(rest, '/').ok_or_else(|| bad("expected BACKOFF_MS/TIMEOUT_MS"))?;
            let attempts: u32 = attempts
                .trim()
                .parse()
                .map_err(|_| bad("attempts must be an integer"))?;
            if attempts == 0 {
                return Err(bad("attempts must be at least 1"));
            }
            let backoff: u64 = backoff
                .trim()
                .parse()
                .map_err(|_| bad("backoff must be milliseconds"))?;
            let timeout: u64 = timeout
                .trim()
                .parse()
                .map_err(|_| bad("timeout must be milliseconds"))?;
            Ok(builder.retry(RetryPolicy {
                attempts,
                backoff: SimDuration::from_millis(backoff),
                timeout: SimDuration::from_millis(timeout),
            }))
        }
        _ => Err(format!(
            "unknown fault directive `{key}` (expected crash, partition, loss, corrupt, slowdown, kill-secondary or retry)"
        )),
    }
}

fn split_once(s: &str, sep: char) -> Option<(&str, &str)> {
    s.split_once(sep)
}

fn parse_index(s: &str) -> Result<usize, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("`{}` is not a node index", s.trim()))
}

/// `4` → `[0, 1, 2, 3]`; `1,3,8` / `0-4,7` → the listed indices.
fn parse_node_list(s: &str) -> Result<Vec<usize>, String> {
    let s = s.trim();
    if !s.contains(',') && !s.contains('-') {
        let count = parse_index(s)?;
        return Ok((0..count).collect());
    }
    parse_group(s)
}

/// A partition group: explicit indices and `A-B` ranges only (a bare
/// `4` is node 4, never a count).
fn parse_group(s: &str) -> Result<Vec<usize>, String> {
    let mut nodes = Vec::new();
    for part in s.split(',') {
        match split_once(part, '-') {
            Some((a, b)) => {
                let (a, b) = (parse_index(a)?, parse_index(b)?);
                if b < a {
                    return Err(format!("range `{}` runs backwards", part.trim()));
                }
                nodes.extend(a..=b);
            }
            None => nodes.push(parse_index(part)?),
        }
    }
    Ok(nodes)
}

fn parse_secs(s: &str) -> Result<SimTime, String> {
    let secs: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("`{}` is not a time in seconds", s.trim()))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("`{}` is not a time in seconds", s.trim()));
    }
    Ok(SimTime::from_secs_f64_ceil(secs))
}

fn parse_window(s: &str) -> Result<(SimTime, SimTime), String> {
    let (from, until) = s
        .trim()
        .split_once("..")
        .ok_or_else(|| format!("`{}` is not a FROM..UNTIL window", s.trim()))?;
    let (from, until) = (parse_secs(from)?, parse_secs(until)?);
    if until <= from {
        return Err(format!("window `{}` is empty", s.trim()));
    }
    Ok((from, until))
}

/// `0.1` or `10%` → `0.1`.
fn parse_rate(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (num, scale) = match s.strip_suffix('%') {
        Some(pct) => (pct, 100.0),
        None => (s, 1.0),
    };
    let rate: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("`{s}` is not a rate (use 0.1 or 10%)"))?;
    let rate = rate / scale;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate `{s}` is outside 0..1"));
    }
    Ok(rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn parse(key: &str, value: &str) -> FaultPlan {
        apply_directive(FaultPlan::builder(), key, value)
            .expect("directive parses")
            .build()
    }

    #[test]
    fn crash_count_and_recovery() {
        assert_eq!(
            parse("crash", "4@30"),
            FaultPlan::builder().crash_many(4, t(30)).build()
        );
        assert_eq!(
            parse("crash", "4@30..60"),
            FaultPlan::builder()
                .crash_many(4, t(30))
                .recover_many(4, t(60))
                .build()
        );
        assert_eq!(
            parse("crash", "1,3@10"),
            FaultPlan::builder().crash(1, t(10)).crash(3, t(10)).build()
        );
    }

    #[test]
    fn partition_groups_and_ranges() {
        assert_eq!(
            parse("partition", "0-6/7-9@30..60"),
            FaultPlan::builder()
                .partition(&[0, 1, 2, 3, 4, 5, 6], &[7, 8, 9], t(30), t(60))
                .build()
        );
        assert_eq!(
            parse("partition", "0,2/1,3/4@5..6"),
            FaultPlan::builder()
                .partition_groups(&[&[0, 2], &[1, 3], &[4]], t(5), t(6))
                .build()
        );
    }

    #[test]
    fn loss_rates_and_links() {
        assert_eq!(
            parse("loss", "5%@10..40"),
            FaultPlan::builder().loss(0.05, t(10), t(40)).build()
        );
        assert_eq!(
            parse("loss", "0.25@10..40,link=0-3"),
            FaultPlan::builder().link_loss(0, 3, 0.25, t(10), t(40)).build()
        );
    }

    #[test]
    fn corrupt_slowdown_kill_retry() {
        assert_eq!(
            parse("corrupt", "10%@10..40"),
            FaultPlan::builder().corrupt(0.1, t(10), t(40)).build()
        );
        assert_eq!(
            parse("slowdown", "4@60"),
            FaultPlan::builder().slowdown(t(60), 4.0).build()
        );
        assert_eq!(
            parse("kill-secondary", "1@45"),
            FaultPlan::builder().kill_secondary(1, t(45)).build()
        );
        assert_eq!(
            parse("retry", "5x100/2000"),
            FaultPlan::builder()
                .retry(RetryPolicy {
                    attempts: 5,
                    backoff: SimDuration::from_millis(100),
                    timeout: SimDuration::from_millis(2000),
                })
                .build()
        );
    }

    #[test]
    fn malformed_directives_are_rejected() {
        for (key, value) in [
            ("crash", "4"),
            ("crash", "x@30"),
            ("partition", "0-4@30..60"),
            ("partition", "0-4/5-9@60..30"),
            ("loss", "150%@10..40"),
            ("loss", "0.1@10..40,port=3"),
            ("corrupt", "-0.5@10..40"),
            ("slowdown", "4"),
            ("retry", "0x100/2000"),
            ("warp", "1@2"),
        ] {
            let err = apply_directive(FaultPlan::builder(), key, value)
                .map(|_| ())
                .expect_err(&format!("{key}: {value} should fail"));
            assert!(!err.is_empty());
        }
    }
}
