//! Simulated blockchains for the Diablo benchmark suite.
//!
//! Protocol-faithful models of the six blockchains the paper evaluates
//! (Table 4):
//!
//! | Chain     | Consensus            | VM     | Property      |
//! |-----------|----------------------|--------|---------------|
//! | Algorand  | BA★ (sortition)      | AVM    | probabilistic |
//! | Avalanche | metastable sampling  | geth   | probabilistic |
//! | Diem      | HotStuff             | MoveVM | deterministic |
//! | Ethereum  | Clique (PoA)         | geth   | eventual      |
//! | Quorum    | IBFT                 | geth   | deterministic |
//! | Solana    | PoH + TowerBFT       | eBPF   | eventual      |
//!
//! Each model reproduces the mechanisms the paper identifies as decisive
//! (§5.2, §6): mempool admission policy (Diem's 100-transaction
//! per-sender cap, bounded pools that drop, Quorum's never-drop queue),
//! block production cadence (Avalanche's throttled block period, Solana's
//! 400 ms PoH slots, Clique's minimum period), the London fee market that
//! leaves transactions underpriced under load (Ethereum, Avalanche),
//! confirmation depth (Solana's 30 confirmations), blockhash expiry
//! (Solana's 120 s recent-blockhash rule) and hard per-transaction
//! compute budgets (AVM, MoveVM, eBPF).
//!
//! Consensus vote traffic is folded into an analytic quorum-latency model
//! (`diablo_net::QuorumModel`); everything else — submission, admission,
//! block formation, execution, commit, confirmation — runs as discrete
//! events over `diablo-sim`.

#![warn(missing_docs)]

pub mod chain;
pub mod chaos;
pub mod config;
pub mod exec;
pub mod faults;
pub mod fees;
pub mod harness;
pub mod live;
pub mod mempool;
pub mod optimistic;
pub mod parallel;
pub mod params;
pub mod records;
pub mod sim;
pub mod tx;

pub use chain::Chain;
pub use config::{LiveConfig, RunConfig, RunOverlay};
pub use exec::{Concurrency, ExecMode, ExecutionEngine};
pub use optimistic::{OptimisticExecutor, OptimisticStats};
pub use parallel::{plan_stats, ParallelExecutor, PlanStats};
pub use faults::{FaultPlan, FaultPlanBuilder, FaultTimeline, RetryPolicy};
pub use fees::FeeMarket;
pub use harness::{ChainHarness, HarnessOptions, PlannedTx};
pub use live::LivePool;
pub use mempool::{AdmitError, Mempool, MempoolPolicy};
pub use diablo_sim::QueueBackend;
pub use diablo_store::{PruneMode, StorageConfig, StorageReport};
pub use params::{ChainParams, ConsensusKind, SigVerify};
pub use records::{rate_per_sec, RunResult, TxRecord, TxStatus};
pub use sim::{ChainSim, Experiment};
pub use tx::{Payload, TxId, TxMeta};
