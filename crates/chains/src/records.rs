//! Per-transaction records and per-run results.
//!
//! The Diablo Secondaries record a submission time and a decision time
//! for every transaction (§4); everything the paper reports — average
//! throughput, average latency, commit ratio, latency CDFs — is computed
//! from these records post-mortem.

use diablo_sim::{Cdf, SimTime, TimeSeries};
use diablo_store::StorageReport;

use crate::chain::Chain;

/// The fate of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Submitted, not yet decided when the experiment ended.
    Pending,
    /// Committed in a final block.
    Committed,
    /// Dropped at admission: memory pool at capacity.
    DroppedPoolFull,
    /// Dropped at admission: per-sender in-flight limit (Diem).
    DroppedPerSender,
    /// Evicted from the pool: recent-blockhash expiry (Solana).
    DroppedExpired,
    /// Included in a block but the execution failed (revert, budget).
    Failed,
    /// Rejected at submission (e.g. corrupted on the wire) and
    /// abandoned after the client's retry policy ran out.
    Rejected,
}

/// One transaction's lifecycle timestamps.
#[derive(Debug, Clone, Copy)]
pub struct TxRecord {
    /// Submission instant (client-side clock, §4).
    pub submitted: SimTime,
    /// Decision instant — when the polling Secondary saw the
    /// transaction in a final block.
    pub decided: Option<SimTime>,
    /// Final status.
    pub status: TxStatus,
}

impl TxRecord {
    /// A freshly submitted record.
    pub fn submitted_at(t: SimTime) -> Self {
        TxRecord {
            submitted: t,
            decided: None,
            status: TxStatus::Pending,
        }
    }

    /// Commit latency, if committed.
    pub fn latency_secs(&self) -> Option<f64> {
        match (self.status, self.decided) {
            (TxStatus::Committed, Some(d)) => Some(d.since(self.submitted).as_secs_f64()),
            _ => None,
        }
    }
}

/// One produced block (including empty slots/periods).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    /// Chain height (1-based).
    pub height: u64,
    /// Commit instant.
    pub committed: SimTime,
    /// Transactions included.
    pub txs: u32,
    /// Payload bytes.
    pub bytes: u32,
}

/// The outcome of one chain × workload experiment.
#[derive(Debug)]
pub struct RunResult {
    /// Which chain ran.
    pub chain: Chain,
    /// Workload name.
    pub workload: String,
    /// Duration of the submission phase, in seconds.
    pub workload_secs: f64,
    /// Per-transaction records, in submission order.
    pub records: Vec<TxRecord>,
    /// If the chain could not run the DApp at all, the error string
    /// ("budget exceeded", unsupported state model): the X marks of
    /// Figure 5 and the missing bars of Figure 2.
    pub unable_reason: Option<String>,
    /// Every block the chain produced (empty ones included), in height
    /// order — the block-explorer view (the paper reads Avalanche's
    /// block period off snowtrace; this is the equivalent here).
    pub blocks: Vec<BlockRecord>,
    /// End-of-run summary of the append-only state store; `None` when
    /// the run did not enable storage (the default), keeping reports
    /// byte-identical to the pre-store execution path.
    pub storage: Option<StorageReport>,
    /// Per-transaction lifecycle traces; `None` when tracing was off
    /// (the default), keeping reports byte-identical to untraced runs.
    pub trace: Option<diablo_telemetry::trace::TraceSet>,
}

/// Events-per-second over a window, `0.0` for an empty or degenerate
/// window. Every rate the report prints goes through this one guard so
/// `average load` and `average throughput` agree on what a
/// zero-duration workload means (no rate, not a near-infinite one from
/// a clamped denominator).
pub fn rate_per_sec(count: u64, window_secs: f64) -> f64 {
    if window_secs <= 0.0 {
        0.0
    } else {
        count as f64 / window_secs
    }
}

impl RunResult {
    /// A result marking the chain unable to run the workload's DApp.
    pub fn unable(chain: Chain, workload: impl Into<String>, secs: f64, reason: String) -> Self {
        RunResult {
            chain,
            workload: workload.into(),
            workload_secs: secs,
            records: Vec::new(),
            unable_reason: Some(reason),
            blocks: Vec::new(),
            storage: None,
            trace: None,
        }
    }

    /// Whether the chain could run the workload at all.
    pub fn able(&self) -> bool {
        self.unable_reason.is_none()
    }

    /// Number of submitted transactions.
    pub fn submitted(&self) -> u64 {
        self.records.len() as u64
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.status == TxStatus::Committed)
            .count() as u64
    }

    /// Number of transactions with the given status.
    pub fn count_status(&self, status: TxStatus) -> u64 {
        self.records.iter().filter(|r| r.status == status).count() as u64
    }

    /// Proportion of committed transactions (0 when nothing was
    /// submitted).
    pub fn commit_ratio(&self) -> f64 {
        let n = self.submitted();
        if n == 0 {
            0.0
        } else {
            self.committed() as f64 / n as f64
        }
    }

    /// Average throughput: transactions committed *within* the
    /// submission window, divided by the window (the paper's
    /// figure-of-merit; commits during the drain period still count
    /// toward the commit ratio and the latency CDF, not throughput).
    pub fn avg_throughput(&self) -> f64 {
        if self.workload_secs <= 0.0 {
            return 0.0;
        }
        let window = diablo_sim::SimTime::from_secs_f64_ceil(self.workload_secs);
        let in_window = self
            .records
            .iter()
            .filter(|r| r.status == TxStatus::Committed && r.decided.is_some_and(|d| d <= window))
            .count();
        rate_per_sec(in_window as u64, self.workload_secs)
    }

    /// Average submitted load over the submission window, in tx/s —
    /// same zero-duration convention as [`RunResult::avg_throughput`].
    pub fn avg_load(&self) -> f64 {
        rate_per_sec(self.submitted(), self.workload_secs)
    }

    /// Average commit latency over committed transactions, in seconds.
    pub fn avg_latency_secs(&self) -> f64 {
        let lats: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.latency_secs())
            .collect();
        if lats.is_empty() {
            0.0
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        }
    }

    /// Median commit latency, in seconds (0 when nothing committed).
    pub fn median_latency_secs(&self) -> f64 {
        self.latency_cdf().quantile(0.5).unwrap_or(0.0)
    }

    /// Maximum commit latency, in seconds.
    pub fn max_latency_secs(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.latency_secs())
            .fold(0.0, f64::max)
    }

    /// The latency CDF of committed transactions (Figure 6).
    pub fn latency_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.records
                .iter()
                .filter_map(|r| r.latency_secs())
                .collect(),
        )
    }

    /// Committed transactions per second of decision time (throughput
    /// time series).
    pub fn commit_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for r in &self.records {
            if r.status == TxStatus::Committed {
                if let Some(d) = r.decided {
                    ts.record_at(d, 1);
                }
            }
        }
        ts
    }

    /// Submitted transactions per second (the Table 2 curves as
    /// actually generated).
    pub fn submit_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for r in &self.records {
            ts.record_at(r.submitted, 1);
        }
        ts
    }

    /// Peak one-second committed throughput.
    pub fn peak_throughput(&self) -> u64 {
        self.commit_series().peak()
    }

    /// Mean interval between consecutive non-genesis blocks, seconds
    /// (0 with fewer than two blocks) — the observed block period.
    pub fn mean_block_interval_secs(&self) -> f64 {
        if self.blocks.len() < 2 {
            return 0.0;
        }
        let first = self.blocks.first().expect("len >= 2").committed;
        let last = self.blocks.last().expect("len >= 2").committed;
        last.since(first).as_secs_f64() / (self.blocks.len() - 1) as f64
    }

    /// Mean transactions per non-empty block (0 when no block carried
    /// transactions).
    pub fn mean_block_fill(&self) -> f64 {
        let full: Vec<&BlockRecord> = self.blocks.iter().filter(|b| b.txs > 0).collect();
        if full.is_empty() {
            return 0.0;
        }
        full.iter().map(|b| b.txs as f64).sum::<f64>() / full.len() as f64
    }

    /// One-line summary in the style of the Diablo primary's output log.
    pub fn summary(&self) -> String {
        if let Some(reason) = &self.unable_reason {
            return format!(
                "{} / {}: unable to run ({reason})",
                self.chain, self.workload
            );
        }
        format!(
            "{} / {}: {} sent, {} committed ({:.1}%), avg throughput {:.1} TPS, \
             avg latency {:.1}s, median latency {:.1}s",
            self.chain,
            self.workload,
            self.submitted(),
            self.committed(),
            self.commit_ratio() * 100.0,
            self.avg_throughput(),
            self.avg_latency_secs(),
            self.median_latency_secs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_sim::SimDuration;

    fn committed(at_secs: u64, latency_secs: u64) -> TxRecord {
        let submitted = SimTime::from_secs(at_secs);
        TxRecord {
            submitted,
            decided: Some(submitted + SimDuration::from_secs(latency_secs)),
            status: TxStatus::Committed,
        }
    }

    fn run(records: Vec<TxRecord>) -> RunResult {
        RunResult {
            chain: Chain::Quorum,
            workload: "test".into(),
            workload_secs: 10.0,
            records,
            unable_reason: None,
            blocks: Vec::new(),
            storage: None,
            trace: None,
        }
    }

    #[test]
    fn metrics_from_records() {
        let r = run(vec![
            committed(0, 2),
            committed(1, 4),
            TxRecord::submitted_at(SimTime::from_secs(2)),
            TxRecord {
                submitted: SimTime::from_secs(3),
                decided: None,
                status: TxStatus::DroppedPoolFull,
            },
        ]);
        assert_eq!(r.submitted(), 4);
        assert_eq!(r.committed(), 2);
        assert_eq!(r.commit_ratio(), 0.5);
        assert_eq!(r.avg_throughput(), 0.2);
        assert_eq!(r.avg_latency_secs(), 3.0);
        assert_eq!(r.max_latency_secs(), 4.0);
        assert_eq!(r.count_status(TxStatus::DroppedPoolFull), 1);
    }

    #[test]
    fn cdf_only_counts_commits() {
        let r = run(vec![
            committed(0, 1),
            committed(0, 3),
            TxRecord::submitted_at(SimTime::ZERO),
        ]);
        let cdf = r.latency_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.quantile(1.0), Some(3.0));
    }

    #[test]
    fn zero_duration_runs_have_no_rates() {
        // Regression: `avg_load` used to clamp the denominator to 1e-9
        // while `avg_throughput` returned 0, so a degenerate run
        // reported astronomical load next to zero throughput. Both now
        // go through the same guarded rate.
        let mut r = run(vec![committed(0, 1), committed(0, 2)]);
        r.workload_secs = 0.0;
        assert_eq!(r.avg_load(), 0.0);
        assert_eq!(r.avg_throughput(), 0.0);
        assert_eq!(rate_per_sec(100, 0.0), 0.0);
        assert_eq!(rate_per_sec(100, -1.0), 0.0);
        assert_eq!(rate_per_sec(100, 10.0), 10.0);
    }

    #[test]
    fn unable_runs_report_reason() {
        let r = RunResult::unable(Chain::Solana, "uber", 120.0, "budget exceeded".into());
        assert!(!r.able());
        assert_eq!(r.avg_throughput(), 0.0);
        assert!(r.summary().contains("budget exceeded"));
    }

    #[test]
    fn series_bucket_by_second() {
        let r = run(vec![committed(0, 2), committed(0, 2), committed(5, 1)]);
        let commits = r.commit_series();
        assert_eq!(commits.get(2), 2);
        assert_eq!(commits.get(6), 1);
        let submits = r.submit_series();
        assert_eq!(submits.get(0), 2);
        assert_eq!(submits.get(5), 1);
    }

    #[test]
    fn block_statistics() {
        let mut r = run(vec![committed(0, 2)]);
        r.blocks = vec![
            BlockRecord {
                height: 1,
                committed: SimTime::from_secs(1),
                txs: 10,
                bytes: 1500,
            },
            BlockRecord {
                height: 2,
                committed: SimTime::from_secs(3),
                txs: 0,
                bytes: 0,
            },
            BlockRecord {
                height: 3,
                committed: SimTime::from_secs(5),
                txs: 30,
                bytes: 4500,
            },
        ];
        assert!((r.mean_block_interval_secs() - 2.0).abs() < 1e-9);
        assert!((r.mean_block_fill() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = run(vec![committed(0, 2)]).summary();
        assert!(s.contains("1 committed"));
        assert!(s.contains("Quorum"));
    }
}
