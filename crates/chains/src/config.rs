//! The unified run configuration.
//!
//! Every entry point into the harness — [`crate::ChainHarness`], the
//! [`crate::Experiment`] driver and `diablo-core`'s benchmark runner —
//! used to carry its own copy of the same ten knobs (seed, execution
//! fidelity, concurrency, grace window, parameter overrides, faults,
//! signature-verification curve, queue backend, storage, tracing), each
//! with its own hand-rolled "CLI wins over spec" merge. [`RunConfig`] is
//! the single resolved form of those knobs, and [`RunOverlay`] is a
//! partial layer over them; the one resolution rule lives in
//! [`RunConfig::layered`]:
//!
//! ```text
//! defaults  ←  spec overlay  ←  CLI overlay
//! ```
//!
//! Later layers win field-by-field; the fault plan is the one additive
//! exception — layers *extend* the schedule (the CLI's chaos flags pile
//! onto the spec's `fault:` section) instead of replacing it.

use diablo_net::DeploymentConfig;
use diablo_sim::QueueBackend;
use diablo_store::StorageConfig;
use diablo_telemetry::trace::TraceSample;

use crate::exec::{Concurrency, ExecMode};
use crate::faults::FaultPlan;
use crate::params::{ChainParams, SigVerify};
use crate::Chain;

/// Wall-clock (live) execution settings.
///
/// When present on a [`RunConfig`], the harness paces the event loop
/// against real time and replaces the modeled signature-verification
/// delay with actual work on a worker pool (see `crate::live`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Simulated seconds per wall-clock second (`--time-scale`).
    /// `1.0` runs in real time; `10.0` compresses a 10 s workload into
    /// roughly one wall second while keeping event *order* intact.
    pub time_scale: f64,
    /// Worker threads performing the real signature-verification-shaped
    /// work (`--live-workers`).
    pub workers: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            time_scale: 1.0,
            workers: 4,
        }
    }
}

/// The fully resolved configuration of one benchmark run.
///
/// This is what the harness executes. Build it either directly (it is a
/// plain struct with [`Default`]), or from layers of partial settings
/// with [`RunConfig::layered`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// RNG seed.
    pub seed: u64,
    /// Execution fidelity.
    pub exec_mode: ExecMode,
    /// Block-commit concurrency (worker threads for parallel execution).
    pub concurrency: Concurrency,
    /// Drain window after the last submission, in seconds.
    pub grace_secs: u64,
    /// Parameter overrides; `None` = standard parameters.
    pub params: Option<ChainParams>,
    /// Injected faults (crashes, slowdowns).
    pub faults: FaultPlan,
    /// Signature-verification cost-curve override applied on top of the
    /// resolved parameters (the spec's `sigverify:` section); `None` =
    /// the chain's standard curve.
    pub sig_verify: Option<SigVerify>,
    /// Event-queue backend of the simulation kernel (the timer wheel by
    /// default; the reference heap for differential runs and benches).
    pub queue: QueueBackend,
    /// Append-only state store configuration (the spec's `storage:`
    /// section); `None` = the staged commit pipeline is off.
    pub storage: Option<StorageConfig>,
    /// Per-transaction lifecycle tracing budget (`--trace-sample`);
    /// `None` = the tracer stays off and the run is byte-identical to
    /// an untraced one.
    pub trace: Option<TraceSample>,
    /// Wall-clock execution (`--live`); `None` = the deterministic
    /// simulation, which is byte-identical to pre-live builds.
    pub live: Option<LiveConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 42,
            exec_mode: ExecMode::Profiled,
            concurrency: Concurrency::Serial,
            grace_secs: 60,
            params: None,
            faults: FaultPlan::none(),
            sig_verify: None,
            queue: QueueBackend::Wheel,
            storage: None,
            trace: None,
            live: None,
        }
    }
}

impl RunConfig {
    /// Resolves `defaults ← layers[0] ← layers[1] ← …`; the canonical
    /// call is `RunConfig::layered(&[&spec_overlay, &cli_overlay])`.
    pub fn layered(layers: &[&RunOverlay]) -> RunConfig {
        let mut cfg = RunConfig::default();
        for layer in layers {
            cfg.apply(layer);
        }
        cfg
    }

    /// Applies one partial layer on top of this configuration: set
    /// fields win, unset fields keep the current value, and the fault
    /// plan is extended rather than replaced.
    pub fn apply(&mut self, layer: &RunOverlay) {
        if let Some(v) = layer.seed {
            self.seed = v;
        }
        if let Some(v) = layer.exec_mode {
            self.exec_mode = v;
        }
        if let Some(v) = layer.concurrency {
            self.concurrency = v;
        }
        if let Some(v) = layer.grace_secs {
            self.grace_secs = v;
        }
        if let Some(v) = &layer.params {
            self.params = Some(v.clone());
        }
        self.faults = std::mem::take(&mut self.faults).merged(layer.faults.clone());
        if let Some(v) = layer.sig_verify {
            self.sig_verify = Some(v);
        }
        if let Some(v) = layer.queue {
            self.queue = v;
        }
        if let Some(v) = layer.storage {
            self.storage = Some(v);
        }
        if let Some(v) = layer.trace {
            self.trace = Some(v);
        }
        if let Some(v) = layer.live {
            self.live = Some(v);
        }
    }

    /// The chain parameters this configuration resolves to on `chain`
    /// under `config`: the explicit override or the chain's standard
    /// parameters, with the `sig_verify` curve (if any) applied on top.
    pub fn resolved_params(&self, chain: Chain, config: &DeploymentConfig) -> ChainParams {
        let mut params = self
            .params
            .clone()
            .unwrap_or_else(|| ChainParams::standard(chain, config));
        if let Some(sig_verify) = self.sig_verify {
            params.sig_verify = sig_verify;
        }
        params
    }

    /// This configuration with live mode stripped: the deterministic
    /// simulation the live run is diffed against.
    pub fn simulation_twin(&self) -> RunConfig {
        let mut twin = self.clone();
        twin.live = None;
        twin
    }
}

/// One partial layer of run settings: every knob of [`RunConfig`],
/// optional.
///
/// A spec contributes one overlay ([`fault:`, `execution:`,
/// `sigverify:`, `storage:` sections), the CLI contributes another (its
/// flags); unset fields defer to the layer below. The default overlay
/// is empty and changes nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOverlay {
    /// RNG seed.
    pub seed: Option<u64>,
    /// Execution fidelity.
    pub exec_mode: Option<ExecMode>,
    /// Block-commit concurrency.
    pub concurrency: Option<Concurrency>,
    /// Drain window, seconds.
    pub grace_secs: Option<u64>,
    /// Parameter overrides.
    pub params: Option<ChainParams>,
    /// Faults added by this layer (merged into, not replacing, the
    /// layers below).
    pub faults: FaultPlan,
    /// Signature-verification cost curve.
    pub sig_verify: Option<SigVerify>,
    /// Event-queue backend.
    pub queue: Option<QueueBackend>,
    /// Append-only state store.
    pub storage: Option<StorageConfig>,
    /// Lifecycle-tracing budget.
    pub trace: Option<TraceSample>,
    /// Wall-clock execution.
    pub live: Option<LiveConfig>,
}

impl RunOverlay {
    /// The empty overlay (changes nothing).
    pub fn none() -> RunOverlay {
        RunOverlay::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_layers_resolve_to_defaults() {
        let cfg = RunConfig::layered(&[&RunOverlay::none(), &RunOverlay::none()]);
        assert_eq!(cfg, RunConfig::default());
    }

    #[test]
    fn later_layer_wins() {
        let spec = RunOverlay {
            seed: Some(7),
            grace_secs: Some(5),
            ..RunOverlay::none()
        };
        let cli = RunOverlay {
            seed: Some(11),
            ..RunOverlay::none()
        };
        let cfg = RunConfig::layered(&[&spec, &cli]);
        assert_eq!(cfg.seed, 11, "CLI wins over spec");
        assert_eq!(cfg.grace_secs, 5, "spec wins over default");
        assert_eq!(cfg.exec_mode, ExecMode::Profiled, "default survives");
    }

    #[test]
    fn fault_layers_extend_instead_of_replacing() {
        use diablo_sim::SimTime;
        let spec = RunOverlay {
            faults: FaultPlan::builder()
                .kill_secondary(0, SimTime::from_secs(1))
                .build(),
            ..RunOverlay::none()
        };
        let cli = RunOverlay {
            faults: FaultPlan::builder()
                .kill_secondary(1, SimTime::from_secs(2))
                .build(),
            ..RunOverlay::none()
        };
        let cfg = RunConfig::layered(&[&spec, &cli]);
        assert!(cfg.faults.kill_of_secondary(0).is_some());
        assert!(cfg.faults.kill_of_secondary(1).is_some());
    }

    #[test]
    fn simulation_twin_only_strips_live() {
        let mut cfg = RunConfig::default();
        cfg.live = Some(LiveConfig::default());
        cfg.seed = 9;
        let twin = cfg.simulation_twin();
        assert_eq!(twin.live, None);
        assert_eq!(twin.seed, 9);
    }
}
