//! Transactions as the chain simulator sees them.

use diablo_contracts::DApp;
use diablo_sim::SimTime;

/// Index of a transaction in the run's record arena.
pub type TxId = u32;

/// Explicit function selection of an invocation, compact enough to
/// copy by the million: an entry index plus up to two literal integer
/// arguments (every DApp function of the paper takes at most two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSel {
    /// Entry index into `diablo_contracts::calls::entries(dapp)`.
    pub entry: u8,
    /// Literal arguments.
    pub args: [i32; 2],
    /// How many of `args` are used.
    pub argc: u8,
}

/// What a transaction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A native coin transfer (the paper's `transfer_X` interaction).
    Transfer,
    /// A DApp invocation (the paper's `invoke_D_Xs` interaction).
    ///
    /// With `call: None` the sequence number selects the concrete call
    /// via `diablo_contracts::calls::call_for` (the default workload
    /// rotation); with `call: Some(sel)` the benchmark specification
    /// chose the function and arguments explicitly.
    Invoke {
        /// The invoked DApp.
        dapp: DApp,
        /// Per-workload sequence number.
        seq: u64,
        /// Explicit function selection, if the spec made one.
        call: Option<CallSel>,
    },
}

/// Everything the ledger needs to know about a pending transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxMeta {
    /// Record-arena index.
    pub id: TxId,
    /// Sending account (drives per-sender mempool caps).
    pub sender: u32,
    /// What the transaction does.
    pub payload: Payload,
    /// Submission instant at the collocated node.
    pub submitted: SimTime,
    /// Instant the transaction is visible to block proposers (submission
    /// plus gossip propagation).
    pub available: SimTime,
    /// Wire size in bytes (affects block size and propagation).
    pub wire_bytes: u32,
    /// The fee cap the client signed, expressed as a multiple (×1000) of
    /// the base fee at signing time. Only meaningful on chains with a
    /// London-style fee market.
    pub fee_cap_millis: u64,
}

impl TxMeta {
    /// Gas/compute charged at admission (intrinsic + calldata), before
    /// execution.
    pub fn is_transfer(&self) -> bool {
        matches!(self.payload, Payload::Transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_classification() {
        let t = TxMeta {
            id: 0,
            sender: 1,
            payload: Payload::Transfer,
            submitted: SimTime::ZERO,
            available: SimTime::ZERO,
            wire_bytes: 150,
            fee_cap_millis: 2000,
        };
        assert!(t.is_transfer());
        let i = TxMeta {
            payload: Payload::Invoke {
                dapp: DApp::Gaming,
                seq: 0,
                call: None,
            },
            ..t
        };
        assert!(!i.is_transfer());
    }
}
