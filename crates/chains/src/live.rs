//! Real signature-verification-shaped work for live mode.
//!
//! The deterministic simulation *models* signature verification with the
//! [`crate::SigVerify`] cost curve; live mode (`--live`) replaces that
//! modeled delay with actual CPU work of the same shape, spread over a
//! pool of worker threads, and feeds the *measured* wall time back into
//! the event schedule. The work itself is a calibrated integer-mixing
//! loop (a stand-in with the arithmetic density of scalar-multiply-heavy
//! signature checks); what matters for the fidelity diff is that the
//! cost is paid in real time on real threads, contended like a real
//! verifier pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use diablo_sim::SimDuration;

use crate::params::SigVerify;

/// One unit of verification work: spin the mixer for `iters` rounds.
struct Job {
    iters: u64,
    done: mpsc::Sender<u64>,
}

/// A pool of worker threads performing verification-shaped work.
///
/// Created once per live run; [`LivePool::verify_batch`] blocks until
/// the batch's work has actually been executed and returns the measured
/// wall time, mapped back to simulated time through the pool's time
/// scale.
pub struct LivePool {
    workers: usize,
    /// Simulated seconds per wall second: work shrinks by this factor,
    /// and measured durations are scaled back up, so a compressed run
    /// still reports sim-comparable costs.
    time_scale: f64,
    /// Calibrated mixer throughput, iterations per microsecond.
    iters_per_us: f64,
    jobs: mpsc::Sender<Job>,
    /// Keeps worker handles so the pool joins cleanly on drop.
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Total batches and wall microseconds spent, for telemetry.
    batches: AtomicU64,
    busy_us: AtomicU64,
}

impl std::fmt::Debug for LivePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePool")
            .field("workers", &self.workers)
            .field("time_scale", &self.time_scale)
            .field("iters_per_us", &self.iters_per_us)
            .finish()
    }
}

/// The integer mixer the workers spin on (splitmix64's finalizer). The
/// result is returned so the optimizer cannot elide the loop.
#[inline]
fn mix_rounds(mut x: u64, iters: u64) -> u64 {
    for _ in 0..iters {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= z ^ (z >> 31);
    }
    x
}

/// Measures the mixer's throughput on this machine, in iterations per
/// microsecond.
fn calibrate() -> f64 {
    // Warm up, then time a fixed round count long enough to dwarf timer
    // granularity (~a few hundred microseconds on any modern core).
    let _ = std::hint::black_box(mix_rounds(1, 10_000));
    let rounds = 2_000_000u64;
    let started = Instant::now();
    let _ = std::hint::black_box(mix_rounds(7, rounds));
    let us = started.elapsed().as_secs_f64() * 1e6;
    (rounds as f64 / us.max(1.0)).max(1.0)
}

impl LivePool {
    /// Spawns `workers` verification threads (at least one) and
    /// calibrates the work loop.
    pub fn new(workers: usize, time_scale: f64) -> LivePool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("live-verify-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        };
                        let out = std::hint::black_box(mix_rounds(i as u64 + 1, job.iters));
                        let _ = job.done.send(out);
                    })
                    .expect("spawn live verifier")
            })
            .collect();
        LivePool {
            workers,
            time_scale: if time_scale.is_finite() && time_scale > 0.0 {
                time_scale
            } else {
                1.0
            },
            iters_per_us: calibrate(),
            jobs: tx,
            handles,
            batches: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
        }
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Performs the real work standing in for verifying a batch of `n`
    /// signatures under `sig`'s cost curve, split across the pool, and
    /// returns the *measured* cost in simulated time.
    ///
    /// The modeled [`SigVerify::batch_cost`] sets the work target; the
    /// wall time actually spent (divided by the worker count the model
    /// already accounts for, multiplied back by the time scale) is what
    /// the live event schedule pays.
    pub fn verify_batch(&self, n: usize, sig: &SigVerify) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let modeled_us = sig.batch_cost(n).as_micros();
        // Work shrinks by the time scale so a compressed run keeps its
        // real-time budget; measurements scale back up symmetrically.
        let target_us = (modeled_us as f64 / self.time_scale).max(1.0);
        let per_worker_us = target_us / self.workers as f64;
        let iters = (per_worker_us * self.iters_per_us).max(1.0) as u64;

        let started = Instant::now();
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..self.workers {
            self.jobs
                .send(Job {
                    iters,
                    done: done_tx.clone(),
                })
                .expect("live pool workers alive");
        }
        drop(done_tx);
        while done_rx.recv().is_ok() {}
        let wall = started.elapsed();

        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_us
            .fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
        diablo_telemetry::record_duration!(
            "live.verify.wall_us",
            SimDuration::from_micros(wall.as_micros() as u64)
        );
        SimDuration::from_micros((wall.as_secs_f64() * 1e6 * self.time_scale) as u64)
    }

    /// `(batches executed, wall microseconds spent)` so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.busy_us.load(Ordering::Relaxed),
        )
    }
}

impl Drop for LivePool {
    fn drop(&mut self) {
        // Replacing the sender closes the job channel, which stops the
        // workers; join so no thread outlives the run owning the pool.
        let (dead_tx, _dead_rx) = mpsc::channel();
        self.jobs = dead_tx;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_batches_cost_nothing() {
        let pool = LivePool::new(2, 1.0);
        assert_eq!(pool.verify_batch(0, &SigVerify::ed25519(4)), SimDuration::ZERO);
    }

    #[test]
    fn work_is_actually_performed_and_measured() {
        let pool = LivePool::new(2, 1.0);
        let cost = pool.verify_batch(64, &SigVerify::ed25519(4));
        assert!(cost > SimDuration::ZERO, "measured work takes real time");
        let (batches, busy) = pool.totals();
        assert_eq!(batches, 1);
        assert!(busy > 0);
    }

    #[test]
    fn time_scale_shrinks_the_wall_cost() {
        let slow = LivePool::new(1, 1.0);
        let fast = LivePool::new(1, 50.0);
        let sig = SigVerify::ed25519(4);
        let wall = |pool: &LivePool| {
            let t = Instant::now();
            let _ = pool.verify_batch(256, &sig);
            t.elapsed()
        };
        let a = wall(&slow);
        let b = wall(&fast);
        // Generous bound: the scaled pool must be well under the
        // unscaled wall time even on noisy CI machines.
        assert!(b < a + Duration::from_millis(1), "scaled run is not slower: {a:?} vs {b:?}");
    }
}
